"""Array-backed LAORAM client: the vectorized twin of :class:`LAORAMClient`.

Combines :class:`~repro.core.laoram.LookaheadClientMixin` (plan management,
trace windowing, batched entry points) with the vectorized
:class:`~repro.oram.array_path_oram.ArrayPathORAM` storage engine.  The
superblock hot path avoids every per-block Python object: bins are consumed
as numpy slices straight from the plan (:meth:`LookaheadPlan.iter_bin_arrays`),
initial placement is one vectorized position-map scatter plus a per-level
bulk placement, and write-backs reuse the array engine's vectorized greedy
planner.

The engine is decision-for-decision identical to the per-object client — it
draws from the RNG in the same order and picks the same write-back victims —
so a fixed seed yields bit-identical traffic counters on both backends while
running an order of magnitude faster (see
``benchmarks/bench_engine_throughput.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.position_map import PositionMap
from repro.core.laoram import LookaheadClientMixin
from repro.core.superblock import LookaheadPlan, SuperblockBin


class FastLAORAMClient(LookaheadClientMixin, ArrayPathORAM):
    """Look-ahead ORAM client over the array-backed execution engine."""

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def _execute_plan(self, plan: LookaheadPlan) -> None:
        """Execute every bin of ``plan`` from its arrays (no bin objects).

        Block ids are range-checked once per window instead of once per bin
        (the preprocessor already rejected negative ids), and the whole
        window's remap leaves are precomputed in one vectorized pass instead
        of per-access plan lookups.
        """
        if plan.max_block_id >= self.config.num_blocks:
            self._check_block_id(plan.max_block_id)
        precomputed = plan.plan_bin_remaps()
        if precomputed is None:
            for start_index, block_ids, _ in plan.iter_bin_arrays():
                self._access_superblock_ids(
                    start_index, block_ids.tolist(), check_ids=False,
                    collect=False,
                )
            return
        remaps, final_consumed = precomputed
        for bin_id, (start_index, block_ids, _) in enumerate(plan.iter_bin_arrays()):
            self._access_superblock_ids(
                start_index,
                block_ids.tolist(),
                check_ids=False,
                remap_leaves=remaps[bin_id],
                collect=False,
            )
        plan.apply_consumption(final_consumed)

    def apply_initial_placement(self, plan: LookaheadPlan) -> None:
        """Lay the table out so each block starts on its first planned path.

        Trusted-setup operation (not charged to traffic): the position map is
        re-scattered to each block's first planned bin leaf in one vectorized
        assignment, the consumed first occurrences are marked so the first
        in-trace reassignment cannot repeat the placement leaf, and the tree
        is rebuilt with the per-level bulk placement (canonical block-id
        order — the same layout the per-object client produces).
        """
        if self.counter.logical_accesses:
            raise ConfigurationError(
                "initial placement can only be applied before any access"
            )
        initial = plan.initial_leaves(self.config.num_blocks)
        planned = np.nonzero(initial >= 0)[0]
        self.position_map.load_many(planned, initial[planned])
        plan.consume_first_occurrences(self.config.num_blocks)
        self.tree = self._make_tree()
        self.stash.clear()
        self._bulk_load()

    def access_superblock(
        self,
        superblock: SuperblockBin,
        new_payloads: Optional[dict[int, object]] = None,
    ) -> list[Optional[object]]:
        """Serve every access of one superblock bin (object-level API)."""
        return self._access_superblock_ids(
            superblock.start_index, list(superblock.block_ids), new_payloads
        )

    def _access_superblock_ids(
        self,
        start_index: int,
        block_ids: list[int],
        new_payloads: Optional[dict[int, object]] = None,
        check_ids: bool = True,
        remap_leaves: Optional[list[int]] = None,
        collect: bool = True,
    ) -> list[Optional[object]]:
        """Serve one bin given its start index and id list.

        Mirrors ``LAORAMClient.access_superblock`` decision for decision:
        stash hits are free, missing blocks are grouped by current path in
        first-encounter order and each distinct path is fetched once, then
        every distinct block is remapped to its next planned occurrence.
        ``check_ids=False`` skips the per-id range check when the caller has
        already validated the whole window; ``remap_leaves`` supplies the
        bin's precomputed remap leaves (``-1`` = uniform fallback draw) in
        distinct-block first-occurrence order; ``collect=False`` skips
        building the per-access payload list when the caller (``run_trace``)
        discards it.
        """
        self.counter.record_logical_access(len(block_ids))
        self.timing.charge_client_overhead(len(block_ids))

        needed = list(dict.fromkeys(block_ids))
        if check_ids:
            for block_id in needed:
                self._check_block_id(block_id)

        # Leaf reads/writes go straight to the position-map array when the
        # map is the trusted dense one: every id was range-checked above and
        # every new leaf comes from the plan or the engine RNG, both already
        # bounded by num_leaves.  A recursive map has no free array view, so
        # leaf lookups and remaps route through its charged get/set walks.
        dense = type(self.position_map) is PositionMap
        pm_leaves = self.position_map.leaves if dense else None
        stash = self.stash
        row_of = stash.row_of
        read_leaves: list[int] = []
        missing = [b for b in needed if row_of[b] < 0]
        self._stash_hits += len(needed) - len(missing)
        if missing:
            leaves: dict[int, None] = {}
            if dense:
                for block_id in missing:
                    leaves.setdefault(int(pm_leaves[block_id]), None)
            else:
                for block_id in missing:
                    leaves.setdefault(self.position_map.get(block_id), None)
            read_leaves = list(leaves)
            self._read_paths_into_stash(read_leaves, dummy=False)
            for block_id in missing:
                if row_of[block_id] < 0:
                    raise BlockNotFoundError(
                        f"block {block_id} missing from both stash and its path"
                    )

        payloads: list[Optional[object]] = []
        if collect or new_payloads is not None:
            store = self._payloads
            for block_id in block_ids:
                if new_payloads is not None and block_id in new_payloads:
                    store[block_id] = new_payloads[block_id]
                payloads.append(store.get(block_id))

        # Remap every distinct block to its next planned occurrence.  The
        # stash mirrors each resident block's leaf, so both the position map
        # and the block's stash row are updated together.  Plan-supplied
        # leaves are range-checked (the direct array writes bypass
        # PositionMap.set) so a plan built for a different tree fails here,
        # exactly where the per-object client would.
        end_index = start_index + len(block_ids) - 1
        stash_leaves = stash.leaf_rows
        num_leaves = self.config.num_leaves
        if remap_leaves is None:
            for block_id in needed:
                leaf = self._planned_leaf(block_id, after_index=end_index)
                if not 0 <= leaf < num_leaves:
                    raise ConfigurationError(
                        f"planned leaf {leaf} outside [0, {num_leaves})"
                    )
                if dense:
                    pm_leaves[block_id] = leaf
                else:
                    self.position_map.set(block_id, leaf)
                stash_leaves[row_of[block_id]] = leaf
        else:
            rng = self.rng
            for block_id, leaf in zip(needed, remap_leaves):
                if leaf < 0:
                    leaf = int(rng.integers(0, num_leaves))
                elif leaf >= num_leaves:
                    raise ConfigurationError(
                        f"planned leaf {leaf} outside [0, {num_leaves})"
                    )
                if dense:
                    pm_leaves[block_id] = leaf
                else:
                    self.position_map.set(block_id, leaf)
                stash_leaves[row_of[block_id]] = leaf

        self._write_back_many(read_leaves)

        self._trace_cursor = end_index + 1
        self._maybe_background_evict()
        self.counter.observe_stash(len(stash))
        return payloads
