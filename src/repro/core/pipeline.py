"""Two-stage LAORAM pipeline model: preprocessing overlapped with training.

Section VIII-A of the paper argues that preprocessing is not on the critical
path because it is orders of magnitude faster than GPU training and runs
ahead of it.  This module provides a small analytic model of that two-stage
pipeline so the claim can be checked for arbitrary parameter choices and the
crossover point (where preprocessing *would* become the bottleneck) can be
located.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PipelineEstimate:
    """Result of evaluating the two-stage pipeline for one workload."""

    total_time_s: float
    preprocessing_time_s: float
    training_time_s: float
    preprocessing_on_critical_path: bool

    @property
    def overhead_fraction(self) -> float:
        """Fraction of total time attributable to exposed preprocessing."""
        if self.total_time_s == 0:
            return 0.0
        exposed = self.total_time_s - self.training_time_s
        return max(0.0, exposed / self.total_time_s)


@dataclass(frozen=True)
class TrainingPipeline:
    """Analytic model of the preprocess-then-train pipeline.

    Attributes:
        preprocess_time_per_sample_s: Time the preprocessor spends per
            training sample (index extraction + bin assignment).
        train_time_per_sample_s: Time the trainer GPU spends per sample
            (embedding fetch through the ORAM plus the model update).
        batch_size: Samples per training batch; the pipeline operates at
            batch granularity (preprocessing of batch ``i+1`` overlaps with
            training of batch ``i``).
    """

    preprocess_time_per_sample_s: float = 5e-7
    train_time_per_sample_s: float = 5e-4
    batch_size: int = 128

    def __post_init__(self) -> None:
        if self.preprocess_time_per_sample_s < 0 or self.train_time_per_sample_s < 0:
            raise ConfigurationError("per-sample times must be non-negative")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")

    def estimate(self, num_samples: int) -> PipelineEstimate:
        """Pipeline completion time for ``num_samples`` training samples."""
        if num_samples < 0:
            raise ConfigurationError("num_samples must be non-negative")
        num_batches = -(-num_samples // self.batch_size) if num_samples else 0
        pre_batch = self.batch_size * self.preprocess_time_per_sample_s
        train_batch = self.batch_size * self.train_time_per_sample_s
        preprocessing_time = num_batches * pre_batch
        training_time = num_batches * train_batch
        if num_batches == 0:
            return PipelineEstimate(0.0, 0.0, 0.0, False)
        # Classic two-stage pipeline: first batch's preprocessing is exposed,
        # afterwards the slower stage dominates.
        stage = max(pre_batch, train_batch)
        total = pre_batch + stage * (num_batches - 1) + train_batch
        return PipelineEstimate(
            total_time_s=total,
            preprocessing_time_s=preprocessing_time,
            training_time_s=training_time,
            preprocessing_on_critical_path=pre_batch > train_batch,
        )

    def crossover_preprocess_time_s(self) -> float:
        """Per-sample preprocessing time at which it would become the bottleneck."""
        return self.train_time_per_sample_s
