"""Configuration of the LAORAM client."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig


@dataclass(frozen=True)
class LAORAMConfig:
    """Parameters of a LAORAM instance.

    Attributes:
        oram: Geometry and eviction parameters of the underlying tree (this
            is where the normal vs fat tree choice lives).
        superblock_size: Number of consecutive future accesses the
            preprocessor places into one superblock bin (paper: 2, 4 or 8;
            size 1 degenerates to PathORAM).
        lookahead_accesses: How many future accesses the preprocessor may
            scan at a time.  ``None`` means the whole remaining trace (the
            paper notes an epoch's worth fits comfortably in preprocessor
            memory).
    """

    oram: ORAMConfig
    superblock_size: int = 4
    lookahead_accesses: Optional[int] = None

    def __post_init__(self) -> None:
        if self.superblock_size < 1:
            raise ConfigurationError("superblock_size must be >= 1")
        if self.lookahead_accesses is not None and self.lookahead_accesses < self.superblock_size:
            raise ConfigurationError(
                "lookahead_accesses must be >= superblock_size when set"
            )

    @property
    def is_degenerate_pathoram(self) -> bool:
        """True when the configuration behaves exactly like PathORAM."""
        return self.superblock_size == 1

    def describe(self) -> str:
        """Short configuration label in the paper's notation, e.g. ``"Fat/S4"``."""
        tree = "Fat" if self.oram.fat_tree else "Normal"
        return f"{tree}/S{self.superblock_size}"
