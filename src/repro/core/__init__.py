"""LAORAM core: look-ahead superblock formation, preprocessor and client."""

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.core.preprocessor import Preprocessor
from repro.core.superblock import LookaheadPlan, SuperblockBin
from repro.core.pipeline import PipelineEstimate, TrainingPipeline

__all__ = [
    "LAORAMConfig",
    "LAORAMClient",
    "Preprocessor",
    "LookaheadPlan",
    "SuperblockBin",
    "PipelineEstimate",
    "TrainingPipeline",
]
