"""LAORAM core: look-ahead superblock formation, preprocessor and clients.

Two interchangeable clients execute the protocol: the per-object reference
:class:`LAORAMClient` and the array-backed :class:`FastLAORAMClient`, which
makes identical protocol decisions (and therefore identical traffic
counters for a fixed seed) over vectorized storage.
"""

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient, LookaheadClientMixin
from repro.core.preprocessor import Preprocessor
from repro.core.superblock import LookaheadPlan, SuperblockBin
from repro.core.pipeline import PipelineEstimate, TrainingPipeline

__all__ = [
    "LAORAMConfig",
    "LAORAMClient",
    "FastLAORAMClient",
    "LookaheadClientMixin",
    "Preprocessor",
    "LookaheadPlan",
    "SuperblockBin",
    "PipelineEstimate",
    "TrainingPipeline",
]
