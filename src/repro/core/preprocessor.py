"""The LAORAM preprocessor: dataset scan and superblock path generation.

The preprocessor is the trusted component (Section IV-B) that looks at
upcoming training samples before they are trained on.  Its job has two steps:

1. **Dataset scan** — walk the upcoming access stream and place every run of
   ``superblock_size`` consecutive accesses into a superblock bin;
2. **Superblock path generation** — draw one uniformly random path per bin
   and emit the (superblock, future path) metadata for the trainer GPU.

The preprocessor only ever touches training samples (which are encrypted at
rest and processed inside the trusted client), so its own memory accesses are
not part of the threat surface — see Section VI-C of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.core.superblock import LookaheadPlan
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ScanStatistics:
    """Summary of one preprocessing pass (useful for pipeline modelling)."""

    num_accesses: int
    num_bins: int
    num_unique_blocks: int
    duplicate_fraction: float


class Preprocessor:
    """Builds lookahead plans from future access streams."""

    def __init__(
        self,
        superblock_size: int,
        num_leaves: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        if superblock_size < 1:
            raise ConfigurationError("superblock_size must be >= 1")
        if num_leaves < 2:
            raise ConfigurationError("num_leaves must be >= 2")
        self.superblock_size = superblock_size
        self.num_leaves = num_leaves
        self.rng = rng if rng is not None else make_rng(seed)

    # ------------------------------------------------------------------
    def build_plan(
        self,
        addresses: Sequence[int] | np.ndarray,
        start_index: int = 0,
    ) -> LookaheadPlan:
        """Scan ``addresses`` and return the lookahead plan for that window.

        ``start_index`` is the trace position of ``addresses[0]``; it lets a
        caller preprocess the trace in windows while keeping globally
        consistent occurrence indices.
        """
        addr = self._validate(addresses)
        leaves = self.rng.integers(
            0,
            self.num_leaves,
            size=self._num_bins(addr.size),
            dtype=np.int64,
        )
        # Vectorized construction: the plan groups occurrences by block id
        # with array operations; SuperblockBin objects are only materialised
        # if a caller asks for plan.bins.
        return LookaheadPlan.from_arrays(
            addr,
            leaves,
            superblock_size=self.superblock_size,
            num_leaves=self.num_leaves,
            start_index=start_index,
        )

    def scan_statistics(self, addresses: Sequence[int] | np.ndarray) -> ScanStatistics:
        """Cheap summary of the window (unique blocks, duplicate rate, bins)."""
        addr = self._validate(addresses)
        unique = int(np.unique(addr).size)
        duplicates = addr.size - unique
        return ScanStatistics(
            num_accesses=int(addr.size),
            num_bins=self._num_bins(addr.size),
            num_unique_blocks=unique,
            duplicate_fraction=duplicates / addr.size if addr.size else 0.0,
        )

    def preprocessing_cost_s(
        self, num_accesses: int, per_access_ns: float = 50.0
    ) -> float:
        """Estimated preprocessing time for ``num_accesses`` accesses.

        The paper reports preprocessing is orders of magnitude faster than
        GPU training and stays off the critical path; this helper feeds the
        pipeline model that verifies that claim quantitatively.
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        return num_accesses * per_access_ns * 1e-9

    # ------------------------------------------------------------------
    def _num_bins(self, num_accesses: int) -> int:
        return -(-num_accesses // self.superblock_size) if num_accesses else 0

    @staticmethod
    def _validate(addresses: Sequence[int] | np.ndarray) -> np.ndarray:
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.ndim != 1:
            raise TraceError("address stream must be one-dimensional")
        if addr.size == 0:
            raise TraceError("address stream must be non-empty")
        if addr.min() < 0:
            raise TraceError("address stream contains negative block ids")
        return addr
