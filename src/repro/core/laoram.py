"""The LAORAM client: PathORAM machinery driven by lookahead superblocks.

LAORAM keeps PathORAM's tree, stash, position map and eviction logic (and
therefore its obliviousness argument), but changes two things:

* **Superblock-granularity access.**  The trace is processed in the bins the
  preprocessor formed.  All blocks of a bin that already sit in the stash are
  served for free; the remaining blocks are grouped by their current path and
  each distinct path is fetched exactly once.  After a warm-up epoch most of
  a bin's blocks share one path, so a bin of ``S`` accesses costs roughly one
  path read instead of ``S``.
* **Plan-driven remapping.**  When a block is written back, its new path is
  the path of the superblock bin in which it is next accessed (falling back
  to a uniformly random path when the plan has no future occurrence).  Since
  every bin's path was drawn uniformly and independently of the block's
  identity, the observable access pattern stays identical to PathORAM's
  (Section VI of the paper).

The fat-tree option lives entirely in :class:`~repro.oram.config.ORAMConfig`,
so the same client runs both the "Normal" and "Fat" configurations of the
evaluation.

Plan management, trace windowing and the batched entry points live in
:class:`LookaheadClientMixin` so that the per-object client here and the
array-backed :class:`~repro.core.fast_laoram.FastLAORAMClient` share one
scheduling implementation and differ only in how a superblock is executed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.memory.accounting import TrafficCounter
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp
from repro.oram.eviction import EvictionPolicy
from repro.oram.path_oram import PathORAM
from repro.core.config import LAORAMConfig
from repro.core.preprocessor import Preprocessor
from repro.core.superblock import LookaheadPlan, SuperblockBin


class LookaheadClientMixin:
    """Plan-driven scheduling shared by every LAORAM engine backend.

    The mixin owns the constructor, the preprocessor, the installed plan,
    the trace cursor and every trace-level entry point (``run_trace``,
    ``access_many``, ``write_many``).  Concrete engines provide the storage
    backend plus :meth:`access_superblock` and
    :meth:`apply_initial_placement`.
    """

    laoram_config: LAORAMConfig

    #: LAORAM's batching is the superblock bin itself (``access_many`` and
    #: ``write_many`` below chunk on bin boundaries); the generic batched
    #: access protocol does not apply.  Bins still flow through the engine's
    #: batched read/write-back hooks (``_read_paths_into_stash`` /
    #: ``_write_back_many``).
    SUPPORTS_BATCHED_ACCESS = False

    #: Scalar leaf draws: the preprocessor and the bin-path draws pull from
    #: the same generator as ``_draw_leaf``, so prefetching leaf draws in
    #: blocks would reorder the stream relative to the reference client.
    LEAF_DRAW_BLOCK = 0

    def __init__(
        self,
        config: LAORAMConfig,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        eviction: Optional[EvictionPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
        allocator=None,
    ):
        if not isinstance(config, LAORAMConfig):
            raise ConfigurationError(
                f"{type(self).__name__} requires an LAORAMConfig"
            )
        super().__init__(
            config.oram,
            timing=timing,
            counter=counter,
            eviction=eviction,
            rng=rng,
            observer=observer,
            allocator=allocator,
        )
        self._init_lookahead(config)

    def _init_lookahead(self, config: LAORAMConfig) -> None:
        if not isinstance(config, LAORAMConfig):
            raise ConfigurationError("LAORAM clients require an LAORAMConfig")
        self.laoram_config = config
        self.preprocessor = Preprocessor(
            superblock_size=config.superblock_size,
            num_leaves=config.oram.num_leaves,
            rng=self.rng,
        )
        self._plan: Optional[LookaheadPlan] = None
        self._trace_cursor = 0

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    @property
    def plan(self) -> Optional[LookaheadPlan]:
        """The lookahead plan currently guiding path reassignment."""
        return self._plan

    def set_plan(self, plan: LookaheadPlan) -> None:
        """Install a preprocessor-produced plan for subsequent accesses."""
        self._plan = plan

    def preprocess(self, addresses: Sequence[int] | np.ndarray, start_index: int = 0) -> LookaheadPlan:
        """Run the preprocessor over ``addresses`` and install the plan."""
        plan = self.preprocessor.build_plan(addresses, start_index=start_index)
        self.set_plan(plan)
        return plan

    # ------------------------------------------------------------------
    # Trace-level entry points
    # ------------------------------------------------------------------
    def run_trace(
        self,
        addresses: Sequence[int] | np.ndarray,
        reinitialize_placement: bool = True,
    ) -> None:
        """Preprocess and execute a full access trace at superblock granularity.

        When ``lookahead_accesses`` is set the trace is preprocessed in
        windows of that many accesses, modelling a preprocessor with bounded
        memory; otherwise the whole trace is planned at once.

        ``reinitialize_placement`` applies the first window's plan to the
        initial data layout: the embedding table is loaded into the ORAM tree
        during trusted setup (before the adversary observes anything), so the
        client is free to choose each block's initial path, and choosing the
        path of the block's first planned superblock means even first-time
        accesses are coalesced.  Every bin path is still drawn uniformly and
        independently, so the observable access pattern is unchanged.  The
        reinitialisation is only permitted before any adversary-visible
        access has been issued.
        """
        addr = np.asarray(addresses, dtype=np.int64)
        window = self.laoram_config.lookahead_accesses or addr.size
        offset = 0
        first_window = True
        while offset < addr.size:
            chunk = addr[offset : offset + window]
            plan = self.preprocess(chunk, start_index=offset)
            if first_window and reinitialize_placement:
                self.apply_initial_placement(plan)
            # The first window is over regardless of whether placement ran;
            # leaving the flag set would mis-apply placement mid-trace.
            first_window = False
            self._execute_plan(plan)
            offset += window

    def _execute_plan(self, plan: LookaheadPlan) -> None:
        """Execute every bin of ``plan``; backends may override for speed."""
        for superblock in plan.bins:
            self.access_superblock(superblock)

    def access_many(self, block_ids: Sequence[int]) -> list[Optional[object]]:
        """Batched read access: ids are grouped into superblock-sized bins.

        This is the entry point the embedding trainer uses: each consecutive
        group of ``superblock_size`` requested rows is served as one
        superblock, so blocks sharing a path cost a single fetch.  Bin
        boundaries are aligned to the global access index so they coincide
        with the boundaries the preprocessor used when planning the trace.
        """
        ids = [int(b) for b in block_ids]
        payloads: list[Optional[object]] = []
        offset = 0
        while offset < len(ids):
            chunk = tuple(ids[offset : offset + self._next_bin_length()])
            superblock = SuperblockBin(
                bin_id=-1,
                start_index=self._trace_cursor,
                block_ids=chunk,
                leaf=0,
            )
            payloads.extend(self.access_superblock(superblock))
            offset += len(chunk)
        return payloads

    def write_many(
        self, block_ids: Sequence[int], payloads: Sequence[object]
    ) -> None:
        """Batched write access: like :meth:`access_many` but storing payloads.

        Gradient write-backs of a training minibatch go through here so that
        updated rows sharing a path cost a single fetch, mirroring the read
        side.  Duplicate ids within the batch keep the last payload.
        """
        ids = [int(b) for b in block_ids]
        if len(ids) != len(payloads):
            raise ConfigurationError("block_ids and payloads must have equal length")
        offset = 0
        while offset < len(ids):
            take = self._next_bin_length()
            chunk = ids[offset : offset + take]
            updates = dict(zip(chunk, payloads[offset : offset + take]))
            superblock = SuperblockBin(
                bin_id=-1,
                start_index=self._trace_cursor,
                block_ids=tuple(chunk),
                leaf=0,
            )
            self.access_superblock(superblock, new_payloads=updates)
            offset += len(chunk)

    def _next_bin_length(self) -> int:
        """Length of the next ad-hoc bin so it ends on a superblock boundary."""
        size = self.laoram_config.superblock_size
        return size - (self._trace_cursor % size)

    @property
    def trace_cursor(self) -> int:
        """Number of planned accesses consumed so far (plan lookup position)."""
        return self._trace_cursor

    # ------------------------------------------------------------------
    # Single-access compatibility path
    # ------------------------------------------------------------------
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Single-block access (PathORAM semantics, plan-driven remapping)."""
        payload = super().access(block_id, op, new_payload)
        self._trace_cursor += 1
        return payload

    def _choose_new_leaf(self, block_id: int) -> int:
        return self._planned_leaf(block_id, after_index=self._trace_cursor)

    def _planned_leaf(self, block_id: int, after_index: int) -> int:
        if self._plan is not None:
            leaf = self._plan.consume_next_leaf(block_id, after_index)
            if leaf is not None:
                return leaf
        return int(self.rng.integers(0, self.config.num_leaves))

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def superblock_size(self) -> int:
        """Configured superblock size ``S``."""
        return self.laoram_config.superblock_size

    def describe(self) -> str:
        """Configuration label in the paper's notation (e.g. ``"Fat/S4"``)."""
        return self.laoram_config.describe()

    # Backend-specific operations -------------------------------------
    def apply_initial_placement(self, plan: LookaheadPlan) -> None:
        raise NotImplementedError

    def access_superblock(
        self,
        superblock: SuperblockBin,
        new_payloads: Optional[dict[int, object]] = None,
    ) -> list[Optional[object]]:
        raise NotImplementedError


class LAORAMClient(LookaheadClientMixin, PathORAM):
    """Look-ahead ORAM client (the paper's contribution), per-object backend."""

    def apply_initial_placement(self, plan: LookaheadPlan) -> None:
        """Lay the table out so each block starts on its first planned path.

        This is a trusted-setup operation (the same trust assumption PathORAM
        makes for its initial bulk load): it may only run before the first
        adversary-visible access, and it is not charged to the traffic
        counters.  The first planned occurrence of every placed block is
        marked consumed so the first in-trace reassignment cannot be handed
        the same leaf again (which an adversary could link).
        """
        if self.counter.logical_accesses:
            raise ConfigurationError(
                "initial placement can only be applied before any access"
            )
        # Reassign initial paths: first planned occurrence when available.
        initial = plan.initial_leaves(self.config.num_blocks)
        for block_id in np.nonzero(initial >= 0)[0].tolist():
            self.position_map.load(block_id, int(initial[block_id]))
        plan.consume_first_occurrences(self.config.num_blocks)
        # Rebuild the tree layout under the new position map, preserving any
        # payloads installed by load_payloads().  The stash id list is
        # snapshotted before popping so removal cannot perturb the iteration,
        # and blocks are re-placed in canonical block-id order (the same
        # order the initial bulk load uses).
        blocks = {block.block_id: block for block in self.tree.iter_blocks()}
        for block_id in list(self.stash.block_ids):
            block = self.stash.pop(block_id)
            if block is not None:
                blocks[block.block_id] = block
        self.tree = self._make_tree()
        self.stash.clear()
        for block_id in sorted(blocks):
            block = blocks[block_id]
            block.leaf = self.position_map.peek(block.block_id)
            if not self.tree.try_place_on_path(block):
                self.stash.add(block)

    def access_superblock(
        self,
        superblock: SuperblockBin,
        new_payloads: Optional[dict[int, object]] = None,
    ) -> list[Optional[object]]:
        """Serve every access of one superblock bin.

        Returns the payloads in the bin's access order.  Path reads are
        deduplicated: blocks already in the stash cost nothing, and blocks
        sharing a path are fetched together.  ``new_payloads`` turns the
        corresponding accesses into writes (the payload is replaced before
        the block is written back).
        """
        block_ids = superblock.block_ids
        self.counter.record_logical_access(len(block_ids))
        self.timing.charge_client_overhead(len(block_ids))

        needed = list(superblock.unique_block_ids)
        for block_id in needed:
            self._check_block_id(block_id)

        # Group the blocks that are not cached in the stash by their current
        # path, then fetch each distinct path exactly once.
        read_leaves: list[int] = []
        missing = [b for b in needed if b not in self.stash]
        self._stash_hits += len(needed) - len(missing)
        if missing:
            leaves = {}
            for block_id in missing:
                leaves.setdefault(self.position_map.get(block_id), []).append(block_id)
            read_leaves = list(leaves)
            self._read_paths_into_stash(read_leaves, dummy=False)

        payloads: list[Optional[object]] = []
        for block_id in block_ids:
            block = self.stash.get(block_id)
            if block is None:
                raise BlockNotFoundError(
                    f"block {block_id} missing from both stash and its path"
                )
            if new_payloads is not None and block_id in new_payloads:
                block.payload = new_payloads[block_id]
            payloads.append(block.payload)

        # Remap every distinct block of the bin to the path of its *next*
        # planned occurrence (uniform random when the plan runs out).
        for block_id in needed:
            block = self.stash.get(block_id)
            new_leaf = self._planned_leaf(block_id, after_index=superblock.end_index)
            block.leaf = new_leaf
            self.position_map.set(block_id, new_leaf)

        self._write_back_many(read_leaves)

        self._trace_cursor = superblock.end_index + 1
        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payloads
