"""Superblock bins and the lookahead plan produced by the preprocessor.

A *superblock bin* is a group of ``S`` consecutive future embedding-table
accesses that the preprocessor assigns to one uniformly random path.  The
*lookahead plan* is the metadata the preprocessor ships to the trainer GPU:
for every block it records, in trace order, which bin (and therefore which
path) each future occurrence belongs to.  When the client writes a block back
it asks the plan for the block's next occurrence and uses that bin's path as
the block's new position, so that by the time the bin is processed all of its
blocks sit on a single path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class SuperblockBin:
    """One group of consecutive future accesses sharing a path.

    Attributes:
        bin_id: Sequential id of the bin within the plan.
        start_index: Trace index of the first access in the bin.
        block_ids: The accessed block ids, in trace order (duplicates kept).
        leaf: The uniformly random path assigned to the bin.
    """

    bin_id: int
    start_index: int
    block_ids: tuple[int, ...]
    leaf: int

    @property
    def end_index(self) -> int:
        """Trace index of the last access in the bin."""
        return self.start_index + len(self.block_ids) - 1

    @property
    def unique_block_ids(self) -> tuple[int, ...]:
        """Distinct block ids in the bin, preserving first-occurrence order."""
        seen: dict[int, None] = {}
        for block_id in self.block_ids:
            seen.setdefault(block_id, None)
        return tuple(seen.keys())

    def __len__(self) -> int:
        return len(self.block_ids)


class LookaheadPlan:
    """Future-path metadata for a window of the access trace."""

    def __init__(self, bins: Sequence[SuperblockBin], num_leaves: int):
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        self._bins = tuple(bins)
        self._num_leaves = num_leaves
        # Per block: parallel lists of occurrence indices and the leaf of the
        # bin containing that occurrence, both in increasing trace order.
        self._occurrence_index: dict[int, list[int]] = {}
        self._occurrence_leaf: dict[int, list[int]] = {}
        # Highest occurrence index already handed out by consume_next_leaf;
        # ensures every planned path is used as a reassignment at most once.
        self._consumed_up_to: dict[int, int] = {}
        for sb in self._bins:
            for offset, block_id in enumerate(sb.block_ids):
                self._occurrence_index.setdefault(block_id, []).append(
                    sb.start_index + offset
                )
                self._occurrence_leaf.setdefault(block_id, []).append(sb.leaf)

    # ------------------------------------------------------------------
    @property
    def bins(self) -> tuple[SuperblockBin, ...]:
        """Every superblock bin in trace order."""
        return self._bins

    @property
    def num_leaves(self) -> int:
        """Number of paths the plan draws from."""
        return self._num_leaves

    @property
    def num_accesses(self) -> int:
        """Total number of accesses covered by the plan."""
        return sum(len(sb) for sb in self._bins)

    def __len__(self) -> int:
        return len(self._bins)

    def __iter__(self) -> Iterable[SuperblockBin]:
        return iter(self._bins)

    # ------------------------------------------------------------------
    def next_leaf(self, block_id: int, after_index: int) -> Optional[int]:
        """Path of the bin holding ``block_id``'s next occurrence after ``after_index``.

        Returns ``None`` when the block does not appear again within the
        planned window, in which case the client falls back to a uniformly
        random path (the plan then carries no information about the block).
        """
        indices = self._occurrence_index.get(block_id)
        if not indices:
            return None
        pos = bisect_right(indices, after_index)
        if pos >= len(indices):
            return None
        return self._occurrence_leaf[block_id][pos]

    def consume_next_leaf(self, block_id: int, after_index: int) -> Optional[int]:
        """Like :meth:`next_leaf`, but each planned occurrence is used once.

        Consecutive reassignments of the same block (for example a fetch
        immediately followed by a gradient write-back) must receive paths of
        *different* future occurrences, otherwise an adversary would observe
        the same leaf several times in close succession and could link those
        accesses.  Consuming occurrences makes every reassignment an
        independent uniform draw, exactly as in PathORAM.
        """
        indices = self._occurrence_index.get(block_id)
        if not indices:
            return None
        floor = max(after_index, self._consumed_up_to.get(block_id, -1))
        pos = bisect_right(indices, floor)
        if pos >= len(indices):
            return None
        self._consumed_up_to[block_id] = indices[pos]
        return self._occurrence_leaf[block_id][pos]

    def occurrences(self, block_id: int) -> list[int]:
        """Trace indices at which ``block_id`` is accessed within the window."""
        return list(self._occurrence_index.get(block_id, []))

    def metadata_bytes(self) -> int:
        """Approximate size of the (superblock, future path) metadata.

        This is what the preprocessor transmits to the trainer GPU: one
        (block id, path) pair per planned access, 12 bytes each (8-byte id +
        4-byte path).
        """
        return 12 * self.num_accesses
