"""Superblock bins and the lookahead plan produced by the preprocessor.

A *superblock bin* is a group of ``S`` consecutive future embedding-table
accesses that the preprocessor assigns to one uniformly random path.  The
*lookahead plan* is the metadata the preprocessor ships to the trainer GPU:
for every block it records, in trace order, which bin (and therefore which
path) each future occurrence belongs to.  When the client writes a block back
it asks the plan for the block's next occurrence and uses that bin's path as
the block's new position, so that by the time the bin is processed all of its
blocks sit on a single path.

The plan is stored as flat numpy arrays (occurrence indices and bin leaves
grouped by block id via one stable argsort) so that million-access windows
can be planned without per-access Python work.  :class:`SuperblockBin`
objects are materialised lazily and only for callers that want the
object-level view; the vectorized execution engine iterates the underlying
arrays directly through :meth:`LookaheadPlan.iter_bin_arrays`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SuperblockBin:
    """One group of consecutive future accesses sharing a path.

    Attributes:
        bin_id: Sequential id of the bin within the plan.
        start_index: Trace index of the first access in the bin.
        block_ids: The accessed block ids, in trace order (duplicates kept).
        leaf: The uniformly random path assigned to the bin.
    """

    bin_id: int
    start_index: int
    block_ids: tuple[int, ...]
    leaf: int

    @property
    def end_index(self) -> int:
        """Trace index of the last access in the bin."""
        return self.start_index + len(self.block_ids) - 1

    @property
    def unique_block_ids(self) -> tuple[int, ...]:
        """Distinct block ids in the bin, preserving first-occurrence order."""
        seen: dict[int, None] = {}
        for block_id in self.block_ids:
            seen.setdefault(block_id, None)
        return tuple(seen.keys())

    def __len__(self) -> int:
        return len(self.block_ids)


class LookaheadPlan:
    """Future-path metadata for a window of the access trace.

    Internally the plan keeps three parallel arrays sorted by ``(block id,
    occurrence index)``: the block id, the global trace index and the bin
    leaf of every planned access.  Per-block occurrence lookups are two
    ``searchsorted`` calls; no per-access Python objects are created.
    """

    def __init__(self, bins: Sequence[SuperblockBin], num_leaves: int):
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        bins = tuple(bins)
        if bins:
            ids = np.concatenate(
                [np.asarray(sb.block_ids, dtype=np.int64) for sb in bins]
            )
            occ = np.concatenate(
                [sb.start_index + np.arange(len(sb), dtype=np.int64) for sb in bins]
            )
            leaf = np.repeat(
                np.asarray([sb.leaf for sb in bins], dtype=np.int64),
                np.asarray([len(sb) for sb in bins], dtype=np.int64),
            )
        else:
            ids = occ = leaf = np.empty(0, dtype=np.int64)
        self._init_arrays(ids, occ, leaf, num_leaves)
        self._bins: Optional[tuple[SuperblockBin, ...]] = bins
        # Raw window arrays (only set by from_arrays; used for lazy bins).
        self._addresses: Optional[np.ndarray] = None
        self._bin_leaves: Optional[np.ndarray] = None
        self._superblock_size = 0
        self._start_index = 0

    @classmethod
    def from_arrays(
        cls,
        addresses: np.ndarray,
        bin_leaves: np.ndarray,
        superblock_size: int,
        num_leaves: int,
        start_index: int = 0,
    ) -> "LookaheadPlan":
        """Build a plan directly from a window's address and bin-leaf arrays.

        ``addresses`` is the access stream of the window; ``bin_leaves`` holds
        one uniformly random leaf per bin of ``superblock_size`` consecutive
        accesses.  This is the vectorized construction path the preprocessor
        uses: no :class:`SuperblockBin` objects are created until a caller
        asks for :attr:`bins`.
        """
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        if superblock_size < 1:
            raise ValueError("superblock_size must be >= 1")
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        bin_leaves = np.ascontiguousarray(bin_leaves, dtype=np.int64)
        n = addresses.size
        expected_bins = -(-n // superblock_size) if n else 0
        if bin_leaves.size != expected_bins:
            raise ValueError(
                f"need {expected_bins} bin leaves for {n} accesses, "
                f"got {bin_leaves.size}"
            )
        plan = cls.__new__(cls)
        occ = start_index + np.arange(n, dtype=np.int64)
        leaf = bin_leaves[np.arange(n, dtype=np.int64) // superblock_size]
        plan._init_arrays(addresses, occ, leaf, num_leaves)
        plan._bins = None
        plan._addresses = addresses
        plan._bin_leaves = bin_leaves
        plan._superblock_size = superblock_size
        plan._start_index = start_index
        return plan

    def _init_arrays(
        self,
        ids: np.ndarray,
        occ: np.ndarray,
        leaf: np.ndarray,
        num_leaves: int,
    ) -> None:
        self._num_leaves = num_leaves
        self._num_accesses = int(ids.size)
        # Group occurrences by block id with one stable sort; within a block
        # the occurrence indices stay in increasing trace order.
        order = np.argsort(ids, kind="stable")
        self._sorted_ids = ids[order]
        self._sorted_occ = occ[order]
        self._sorted_leaf = leaf[order]
        self._uniq, self._starts = np.unique(self._sorted_ids, return_index=True)
        self._ends = np.append(self._starts[1:], self._sorted_ids.size)
        # Python-side mirrors for the per-access lookup path (next_leaf /
        # consume_next_leaf / occurrences): dict + bisect runs ~10x faster
        # than per-call searchsorted on tiny array views.  Built lazily so
        # the vectorized engine, which executes whole windows through
        # plan_bin_remaps(), never pays the O(n) list/dict construction.
        self._occ_list: Optional[list[int]] = None
        self._leaf_list: Optional[list[int]] = None
        self._ranges: Optional[dict[int, tuple[int, int]]] = None
        # Highest occurrence index already handed out by consume_next_leaf;
        # ensures every planned path is used as a reassignment at most once.
        self._consumed_up_to: dict[int, int] = {}

    def _lookup_tables(
        self,
    ) -> tuple[list[int], list[int], dict[int, tuple[int, int]]]:
        """Occurrence/leaf lists and per-block ranges for bisect lookups."""
        if self._ranges is None:
            self._occ_list = self._sorted_occ.tolist()
            self._leaf_list = self._sorted_leaf.tolist()
            self._ranges = dict(
                zip(
                    self._uniq.tolist(),
                    zip(self._starts.tolist(), self._ends.tolist()),
                )
            )
        return self._occ_list, self._leaf_list, self._ranges

    # ------------------------------------------------------------------
    @property
    def bins(self) -> tuple[SuperblockBin, ...]:
        """Every superblock bin in trace order (materialised on demand)."""
        if self._bins is None:
            addresses = self._addresses
            size = self._superblock_size
            assert addresses is not None and self._bin_leaves is not None
            leaves = self._bin_leaves.tolist()
            self._bins = tuple(
                SuperblockBin(
                    bin_id=bin_id,
                    start_index=self._start_index + offset,
                    block_ids=tuple(addresses[offset : offset + size].tolist()),
                    leaf=leaves[bin_id],
                )
                for bin_id, offset in enumerate(range(0, addresses.size, size))
            )
        return self._bins

    def iter_bin_arrays(self) -> Iterator[tuple[int, np.ndarray, int]]:
        """Yield ``(start_index, block_ids, leaf)`` per bin without objects.

        This is the hot-path iteration the array-backed engine uses: block
        ids stay numpy slices of the window's address array.
        """
        if self._addresses is not None:
            size = self._superblock_size
            for bin_id, offset in enumerate(range(0, self._addresses.size, size)):
                yield (
                    self._start_index + offset,
                    self._addresses[offset : offset + size],
                    int(self._bin_leaves[bin_id]),
                )
        else:
            for sb in self.bins:
                yield (
                    sb.start_index,
                    np.asarray(sb.block_ids, dtype=np.int64),
                    sb.leaf,
                )

    @property
    def num_leaves(self) -> int:
        """Number of paths the plan draws from."""
        return self._num_leaves

    @property
    def num_accesses(self) -> int:
        """Total number of accesses covered by the plan."""
        return self._num_accesses

    @property
    def max_block_id(self) -> int:
        """Largest block id planned in this window (``-1`` for an empty plan)."""
        return int(self._uniq[-1]) if self._uniq.size else -1

    def __len__(self) -> int:
        if self._addresses is not None and self._bins is None:
            size = self._superblock_size
            return -(-int(self._addresses.size) // size) if self._addresses.size else 0
        return len(self.bins)

    def __iter__(self) -> Iterable[SuperblockBin]:
        return iter(self.bins)

    # ------------------------------------------------------------------
    def next_leaf(self, block_id: int, after_index: int) -> Optional[int]:
        """Path of the bin holding ``block_id``'s next occurrence after ``after_index``.

        Returns ``None`` when the block does not appear again within the
        planned window, in which case the client falls back to a uniformly
        random path (the plan then carries no information about the block).
        """
        occ_list, leaf_list, ranges = self._lookup_tables()
        bounds = ranges.get(block_id)
        if bounds is None:
            return None
        start, end = bounds
        pos = bisect_right(occ_list, after_index, start, end)
        if pos >= end:
            return None
        return leaf_list[pos]

    def consume_next_leaf(self, block_id: int, after_index: int) -> Optional[int]:
        """Like :meth:`next_leaf`, but each planned occurrence is used once.

        Consecutive reassignments of the same block (for example a fetch
        immediately followed by a gradient write-back) must receive paths of
        *different* future occurrences, otherwise an adversary would observe
        the same leaf several times in close succession and could link those
        accesses.  Consuming occurrences makes every reassignment an
        independent uniform draw, exactly as in PathORAM.
        """
        occ_list, leaf_list, ranges = self._lookup_tables()
        bounds = ranges.get(block_id)
        if bounds is None:
            return None
        start, end = bounds
        floor = max(after_index, self._consumed_up_to.get(block_id, -1))
        pos = bisect_right(occ_list, floor, start, end)
        if pos >= end:
            return None
        self._consumed_up_to[block_id] = occ_list[pos]
        return leaf_list[pos]

    def initial_leaves(self, num_blocks: int) -> np.ndarray:
        """First-occurrence leaf per block id, ``-1`` for blocks not planned.

        Used by trusted-setup initial placement: block ``b`` should start on
        the path of the superblock bin containing its first planned access.
        Only ids below ``num_blocks`` are reported.
        """
        out = np.full(num_blocks, -1, dtype=np.int64)
        if self._uniq.size:
            mask = (self._uniq >= 0) & (self._uniq < num_blocks)
            out[self._uniq[mask]] = self._sorted_leaf[self._starts[mask]]
        return out

    def consume_first_occurrences(self, num_blocks: int) -> None:
        """Mark occurrence 0 of every planned block (id < ``num_blocks``) consumed.

        Initial placement uses each block's first planned path; without
        consuming that occurrence the first in-trace reassignment could be
        handed the *same* leaf again, producing a linkable repeated-leaf
        observation.  Equivalent to ``consume_next_leaf(b, -1)`` per block.
        """
        if not self._uniq.size:
            return
        mask = (self._uniq >= 0) & (self._uniq < num_blocks)
        ids = self._uniq[mask].tolist()
        first_occ = self._sorted_occ[self._starts[mask]].tolist()
        for block_id, occ in zip(ids, first_occ):
            if self._consumed_up_to.get(block_id, -1) < occ:
                self._consumed_up_to[block_id] = occ

    def plan_bin_remaps(
        self,
    ) -> Optional[tuple[list[list[int]], list[tuple[int, int]]]]:
        """Precompute every bin's remap leaves for a pure window execution.

        When ``run_trace`` executes this window bin by bin, the sequence of
        ``consume_next_leaf`` calls is fully determined by the trace: each
        bin asks once per distinct block with ``after_index`` = the bin's end,
        so the answer is always the leaf of the block's *next* bin (or a
        uniform fallback when there is none).  That makes the whole window
        precomputable in a handful of array passes.

        Returns ``(remaps, final_consumed)``: ``remaps[j]`` lists, for bin
        ``j``'s distinct blocks in first-occurrence order, the next bin's
        leaf or ``-1`` (fallback draw); ``final_consumed`` is the
        ``(block_id, occurrence_index)`` state the equivalent call sequence
        leaves behind, to be applied via :meth:`apply_consumption`.  Only
        available for plans built through :meth:`from_arrays`; returns
        ``None`` otherwise.
        """
        if self._addresses is None:
            return None
        n = self._num_accesses
        size = self._superblock_size
        if n == 0:
            return [], []
        sid = self._sorted_ids
        socc = self._sorted_occ
        bin_idx = (socc - self._start_index) // size
        # First occurrence of each (block, bin) pair, in (block, occ) order.
        block_boundary = np.empty(n, dtype=bool)
        block_boundary[0] = True
        np.not_equal(sid[1:], sid[:-1], out=block_boundary[1:])
        bin_boundary = np.empty(n, dtype=bool)
        bin_boundary[0] = True
        bin_boundary[1:] = block_boundary[1:] | (bin_idx[1:] != bin_idx[:-1])
        first = np.nonzero(bin_boundary)[0]
        fb_block = sid[first]
        fb_bin = bin_idx[first]
        fb_occ = socc[first]
        entries = first.size
        values = np.full(entries, -1, dtype=np.int64)
        if entries > 1:
            has_next = np.nonzero(fb_block[1:] == fb_block[:-1])[0]
            values[has_next] = self._bin_leaves[fb_bin[has_next + 1]]
        # Bins are contiguous occurrence ranges, so sorting the entries by
        # occurrence groups them by bin in first-occurrence order.
        order = np.argsort(fb_occ, kind="stable")
        sorted_values = values[order].tolist()
        counts = np.bincount(
            fb_bin[order], minlength=-(-n // size)
        ).tolist()
        remaps: list[list[int]] = []
        position = 0
        for count in counts:
            remaps.append(sorted_values[position : position + count])
            position += count
        # Final consumption state: a block appearing in >= 2 bins ends with
        # its last bin's first occurrence consumed (the last successful
        # consume); single-bin blocks leave no new state behind.
        last_of_block = np.empty(entries, dtype=bool)
        last_of_block[-1] = True
        np.not_equal(fb_block[1:], fb_block[:-1], out=last_of_block[:-1])
        first_of_block = np.empty(entries, dtype=bool)
        first_of_block[0] = True
        first_of_block[1:] = last_of_block[:-1]
        multi_last = last_of_block & ~first_of_block
        final_consumed = list(
            zip(fb_block[multi_last].tolist(), fb_occ[multi_last].tolist())
        )
        return remaps, final_consumed

    def apply_consumption(self, final_consumed: list[tuple[int, int]]) -> None:
        """Install the consumption state computed by :meth:`plan_bin_remaps`."""
        consumed = self._consumed_up_to
        for block_id, occ in final_consumed:
            if consumed.get(block_id, -1) < occ:
                consumed[block_id] = occ

    def occurrences(self, block_id: int) -> list[int]:
        """Trace indices at which ``block_id`` is accessed within the window."""
        occ_list, _, ranges = self._lookup_tables()
        bounds = ranges.get(block_id)
        if bounds is None:
            return []
        start, end = bounds
        return occ_list[start:end]

    def metadata_bytes(self) -> int:
        """Size of the (block id, future path) metadata the preprocessor ships.

        One (block id, path) pair per planned access.  The id field is sized
        by the widest planned block id and the path field by ``num_leaves``,
        both rounded up to whole bytes — a 2^25-leaf tree needs 4 path bytes,
        a 16-leaf test tree just one.
        """
        if self._num_accesses == 0:
            return 0
        max_id = int(self._uniq[-1]) if self._uniq.size else 0
        id_bytes = max(1, (max(max_id, 0).bit_length() + 7) // 8)
        leaf_bytes = max(1, ((self._num_leaves - 1).bit_length() + 7) // 8)
        return self._num_accesses * (id_bytes + leaf_bytes)
