"""Manifests: what is secret, what is hot, and what is legitimately revealed.

The taint/allocation rules are only as good as their ground truth, and that
ground truth is protocol knowledge no AST walk can infer.  This module
states it explicitly, per engine module:

* :class:`ModuleSources` — the taint *sources* of one module: parameter
  names that carry secrets (request block ids), attribute suffixes whose
  values are secret (position-map leaf arrays, stash id/leaf rows), calls
  whose results are secret (position-map lookups, stash lookups), and the
  *declassifier* calls after which a leaf argument is public (the protocol
  has just read that path, so the adversary saw it).
* hot-function manifests — which functions the OBL rules analyze
  (``obl_hot_functions``), which the zero-allocation rule covers and at
  what granularity (``alloc_hot_functions``), and which fused drivers owe
  a deferred-counter flush (``fused_drivers``).
* :class:`Declassification` — the allowlist for places the protocol
  legitimately reveals secret-derived information (PrORAM's history-based
  merging, client-side write-back planning).  Every entry carries a
  mandatory reason, mirrored in ``docs/static_analysis.md``.

Modules are matched by posix path *suffix* (``oram/engine.py``), so scratch
copies under a temp dir are analyzed with the real manifest — that is what
lets the regression tests plant a bug in a copy of the engine and watch the
rule fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional


@dataclass(frozen=True)
class Declassifier:
    """A call after which given positional args become public.

    ``suffix`` matches the end of the call's dotted name; ``positions`` are
    the 0-based positional arguments whose (bare-name) taint is cleared
    after the call — e.g. the leaf passed to a path read is revealed by the
    read itself.
    """

    suffix: str
    positions: tuple[int, ...]


@dataclass
class ModuleSources:
    """Taint sources (and declassifiers) for one module."""

    #: Function parameter names that carry secrets.
    params: frozenset[str] = frozenset()
    #: Dotted attribute suffixes whose values are secret.
    attrs: frozenset[str] = frozenset()
    #: Dotted call suffixes whose return values are secret.
    calls: frozenset[str] = frozenset()
    #: Calls that reveal (declassify) specific arguments.
    declassifiers: tuple[Declassifier, ...] = ()


@dataclass(frozen=True)
class AllocScope:
    """Zero-allocation coverage for one function.

    ``granularity`` is ``"body"`` for per-access leaf helpers (the whole
    body is steady state) or ``"loops"`` for trace drivers (setup before
    the access loop may allocate; loop bodies may not).
    """

    qualname: str
    granularity: str = "body"


@dataclass(frozen=True)
class Declassification:
    """Allowlist entry: findings of ``rules`` in one function are sanctioned."""

    module_suffix: str
    qualname: str
    rules: tuple[str, ...]
    reason: str


@dataclass
class AnalysisConfig:
    """Everything the rules need to know about the codebase under analysis."""

    #: module suffix -> taint sources for the OBL rules.
    sources: dict[str, ModuleSources] = field(default_factory=dict)
    #: module suffix -> qualnames (fnmatch patterns) the OBL rules analyze.
    obl_hot_functions: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Bare names of *observable* (simulated server-side) containers;
    #: a tainted subscript index into one of these is an OBL002 sink.
    observable_containers: frozenset[str] = frozenset()
    #: module suffix -> zero-allocation scopes for ALLOC001.
    alloc_hot_functions: dict[str, tuple[AllocScope, ...]] = field(
        default_factory=dict
    )
    #: module suffix -> fused-driver qualnames for CNT001.
    fused_drivers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Path suffixes where direct RNG construction is allowed (RNG001).
    rng_allowed_modules: tuple[str, ...] = ()
    #: Class-name patterns API001 checks for SUPPORTS_BATCHED_ACCESS.
    mixin_class_patterns: tuple[str, ...] = ("*Mixin",)
    #: Declassification allowlist (see class docstring).
    declassifications: tuple[Declassification, ...] = ()
    #: Rule ids to run (None = all registered).
    rules: Optional[tuple[str, ...]] = None

    # ------------------------------------------------------------------
    def _norm(self, path: str) -> str:
        return path.replace("\\", "/")

    def module_key(self, path: str, table: dict) -> Optional[str]:
        """The table key whose suffix matches ``path`` (longest wins)."""
        norm = self._norm(path)
        best: Optional[str] = None
        for suffix in table:
            if norm.endswith(suffix) and (best is None or len(suffix) > len(best)):
                best = suffix
        return best

    def sources_for(self, path: str) -> Optional[ModuleSources]:
        key = self.module_key(path, self.sources)
        return self.sources[key] if key is not None else None

    def obl_hot_for(self, path: str) -> tuple[str, ...]:
        key = self.module_key(path, self.obl_hot_functions)
        return self.obl_hot_functions[key] if key is not None else ()

    def alloc_scopes_for(self, path: str) -> tuple[AllocScope, ...]:
        key = self.module_key(path, self.alloc_hot_functions)
        return self.alloc_hot_functions[key] if key is not None else ()

    def fused_drivers_for(self, path: str) -> tuple[str, ...]:
        key = self.module_key(path, self.fused_drivers)
        return self.fused_drivers[key] if key is not None else ()

    def rng_allowed(self, path: str) -> bool:
        norm = self._norm(path)
        return any(norm.endswith(suffix) for suffix in self.rng_allowed_modules)

    def declassification_reason(
        self, path: str, qualname: str, rule: str
    ) -> Optional[str]:
        """Allowlist reason covering (module, function, rule), else None."""
        norm = self._norm(path)
        for entry in self.declassifications:
            if (
                norm.endswith(entry.module_suffix)
                and rule in entry.rules
                and fnmatchcase(qualname, entry.qualname)
            ):
                return entry.reason
        return None


# ----------------------------------------------------------------------
# The repository manifest
# ----------------------------------------------------------------------
#: Path reads reveal the leaf they fetch: after any of these calls, the
#: leaf argument is public by protocol (the adversary just watched the
#: path transfer).  Positions index the *positional* argument carrying the
#: leaf at each call shape used in the engine core.
_PATH_REVEAL = (
    Declassifier("_read_path_into_stash", (0,)),
    Declassifier("_read_paths_into_stash", (0,)),
    Declassifier("read_path_ids", (0,)),
    Declassifier("read_paths_ids", (0,)),
    Declassifier("read_path", (0,)),
    Declassifier("_fetch_path", (0,)),
    # _fused_fetch(read_ids, pm, stash_map, leaf): the leaf is argument 3.
    Declassifier("_fused_fetch", (3,)),
    Declassifier("fetch", (3,)),
    Declassifier("_online_read", (0,)),
    Declassifier("remove_on_path", (0,)),
    Declassifier("observe_path", (0,)),
    Declassifier("_write_back", (0,)),
)

_ENGINE_SOURCES = ModuleSources(
    params=frozenset({"block_id", "block_ids", "stash_map", "pm", "groups"}),
    attrs=frozenset({"position_map.leaves", "id_rows", "leaf_rows", "stash"}),
    calls=frozenset({"position_map.get", "_stash_lookup", "_stash_detach"}),
    declassifiers=_PATH_REVEAL,
)

_PRORAM_SOURCES = ModuleSources(
    params=frozenset({"block_id", "block_ids", "stash_map"}),
    attrs=frozenset(
        {
            "position_map.leaves",
            "id_rows",
            "leaf_rows",
            "stash",
            "_locality_counters",
            "_merged_groups",
            "_recent_group_counts",
            "_recent_block_counts",
        }
    ),
    calls=frozenset({"position_map.get", "_stash_lookup", "_stash_detach"}),
    declassifiers=_PATH_REVEAL,
)

_WRITE_BACK_SOURCES = ModuleSources(
    params=frozenset({"stash", "stash_map"}),
    attrs=frozenset({"id_rows", "leaf_rows"}),
    calls=frozenset(),
    declassifiers=(),
)

_RECURSIVE_POSMAP_SOURCES = ModuleSources(
    params=frozenset({"block_id", "block_ids"}),
    attrs=frozenset({"stash", "labels", "_top", "_entries", "_pending"}),
    calls=frozenset({"_walk", "position_map.get"}),
    declassifiers=_PATH_REVEAL,
)


def default_config() -> AnalysisConfig:
    """The manifest for this repository (see docs/static_analysis.md)."""
    return AnalysisConfig(
        sources={
            "repro/oram/engine.py": _ENGINE_SOURCES,
            "repro/oram/ring_oram.py": _ENGINE_SOURCES,
            "repro/oram/pr_oram.py": _PRORAM_SOURCES,
            "repro/oram/write_back.py": _WRITE_BACK_SOURCES,
            "repro/oram/recursive_posmap.py": _RECURSIVE_POSMAP_SOURCES,
        },
        obl_hot_functions={
            "repro/oram/engine.py": (
                "TreeORAMEngine.access",
                "TreeORAMEngine._access_batch",
                "TreeORAMEngine._maybe_background_evict",
                "TreeORAMEngine.dummy_access",
                "ArrayStorageEngine._run_trace_fused",
                "ArrayStorageEngine._fetch_path",
                "ArrayStorageEngine._read_paths_into_stash",
                "ArrayStorageEngine._write_back_many",
                "ArrayStorageEngine._commit_write_back",
                "ArrayStorageEngine._commit_write_back_scalar",
                "ArrayStorageEngine._commit_write_back_vector",
                "ArrayStorageEngine._select_and_commit",
                "_fused_fetch",
            ),
            "repro/oram/ring_oram.py": (
                "RingProtocolMixin.access",
                "RingProtocolMixin._online_read",
                "RingProtocolMixin._reshuffle_exhausted_buckets",
                "RingProtocolMixin._evict_path",
                "ArrayRingORAM._run_trace_ring_fused",
            ),
            "repro/oram/pr_oram.py": (
                "SuperblockPolicyMixin.access",
                "SuperblockPolicyMixin._policy_access",
                "SuperblockPolicyMixin._update_locality",
                "ArrayPrORAM._make_trace_before_access.<locals>.before_access",
            ),
            "repro/oram/write_back.py": (
                "plan_greedy_write_back",
                "plan_batched_write_back",
                "fused_greedy_write_back",
            ),
            "repro/oram/recursive_posmap.py": (
                "RecursivePositionMap._walk",
                "RecursivePositionMap.get",
                "RecursivePositionMap.set",
                "RecursivePositionMap.get_many",
                "RecursivePositionMap.set_many",
            ),
        },
        observable_containers=frozenset(
            {"slots", "slot_array", "occ", "bucket_occupancies", "_slots", "_occ"}
        ),
        alloc_hot_functions={
            "repro/oram/engine.py": (
                AllocScope("ArrayStorageEngine._run_trace_fused", "loops"),
                AllocScope("_fused_fetch", "body"),
            ),
            "repro/oram/ring_oram.py": (
                AllocScope("ArrayRingORAM._run_trace_ring_fused", "loops"),
            ),
            "repro/oram/pr_oram.py": (
                AllocScope(
                    "ArrayPrORAM._make_trace_before_access.<locals>.before_access",
                    "body",
                ),
            ),
            "repro/oram/write_back.py": (
                AllocScope("fused_greedy_write_back", "body"),
            ),
            "repro/oram/tree.py": (
                AllocScope("ArrayTreeStorage._fill_path_slots", "body"),
                AllocScope("ArrayTreeStorage.path_nodes", "body"),
                AllocScope("ArrayTreeStorage.read_path_raw", "body"),
            ),
        },
        fused_drivers={
            "repro/oram/engine.py": ("ArrayStorageEngine._run_trace_fused",),
            "repro/oram/ring_oram.py": ("ArrayRingORAM._run_trace_ring_fused",),
        },
        rng_allowed_modules=("repro/utils/rng.py",),
        declassifications=(
            Declassification(
                "repro/oram/pr_oram.py",
                "SuperblockPolicyMixin._update_locality",
                ("OBL001", "OBL002"),
                "dynamic superblock locality tracking is PrORAM's documented "
                "history-based mechanism; its observable effect (merged "
                "fetches) is the protocol itself (Yu et al., ISCA'15)",
            ),
            Declassification(
                "repro/oram/pr_oram.py",
                "ArrayPrORAM._make_trace_before_access.<locals>.before_access",
                ("OBL001", "OBL002"),
                "fused replay of _update_locality: same history-based reveal, "
                "declassified for the same reason",
            ),
            Declassification(
                "repro/oram/pr_oram.py",
                "SuperblockPolicyMixin._policy_access",
                ("OBL001", "OBL002"),
                "merged-group routing and partner holds are the PrORAM "
                "policy; path draws stay uniform so the revealed path stream "
                "is PathORAM's",
            ),
            Declassification(
                "repro/oram/write_back.py",
                "plan_greedy_write_back",
                ("OBL001", "OBL002"),
                "write-back planning is client-side; the committed path is "
                "charged at full-path cost regardless of which blocks are "
                "selected, so selection branches are unobservable",
            ),
            Declassification(
                "repro/oram/write_back.py",
                "plan_batched_write_back",
                ("OBL001", "OBL002"),
                "client-side planning (see plan_greedy_write_back); commits "
                "a placement bit-identical to the sequential per-path loop",
            ),
            Declassification(
                "repro/oram/write_back.py",
                "fused_greedy_write_back",
                ("OBL001", "OBL002"),
                "client-side planning (see plan_greedy_write_back); slot "
                "indices written derive from the already-revealed path leaf",
            ),
            Declassification(
                "repro/oram/engine.py",
                "ArrayStorageEngine._commit_write_back*",
                ("OBL001", "OBL002"),
                "client-side write-back planning over stash rows (see "
                "plan_greedy_write_back); observable path write is charged "
                "in full either way",
            ),
            Declassification(
                "repro/oram/engine.py",
                "ArrayStorageEngine._select_and_commit",
                ("OBL001", "OBL002"),
                "client-side greedy selection; committed slot indices derive "
                "from the already-revealed path leaf",
            ),
        ),
    )
