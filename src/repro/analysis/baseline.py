"""Baseline files: accepted findings that do not fail the build.

A baseline records findings by ``(rule, path, message)`` — deliberately
not by line, so pure line drift (an unrelated edit above a baselined
finding) does not churn the file.  New findings are everything the current
run produced that the baseline does not cover; stale entries (baselined
findings that no longer occur) are reported so the file can be re-tightened
with ``--write-baseline``.

The committed baseline for this repo is ``.analysis-baseline.json`` and is
empty by policy for ``src/repro/oram/``: every engine finding must be
fixed, inline-suppressed with a reason, or declassified in the manifest.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import AnalysisError, Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".analysis-baseline.json"


def load_baseline(path: str) -> list[Finding]:
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    findings = []
    for entry in raw.get("findings", []):
        try:
            findings.append(
                Finding(
                    rule=entry["rule"],
                    path=entry["path"],
                    line=int(entry.get("line", 0)),
                    col=int(entry.get("col", 0)),
                    message=entry["message"],
                    qualname=entry.get("qualname", ""),
                )
            )
        except (KeyError, TypeError) as exc:
            raise AnalysisError(
                f"malformed baseline entry in {path}: {entry!r}"
            ) from exc
    return findings


def save_baseline(path: str, findings: list[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                **({"qualname": f.qualname} if f.qualname else {}),
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_against_baseline(
    findings: list[Finding], baseline: list[Finding]
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Partition into (new, baselined, stale-baseline-entries)."""
    baseline_keys = {f.key() for f in baseline}
    current_keys = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline_keys]
    matched = [f for f in findings if f.key() in baseline_keys]
    stale = [f for f in baseline if f.key() not in current_keys]
    return new, matched, stale
