"""Core of the obliviousness & hot-path invariant linter.

The framework is deliberately small and stdlib-only (``ast`` + ``re``):

* :class:`Finding` — one diagnostic, anchored to a file/line/column and
  carrying the secret labels that produced it (for the taint rules).
* :class:`SourceModule` — a parsed file: source text, AST, inline
  suppressions (``# oblivious: allow[RULE123] reason``) and qualname map.
* :class:`Rule` / :func:`register_rule` — the rule registry.  Rules yield
  raw findings; the driver applies manifest declassifications and inline
  suppressions centrally, so every rule gets both mechanisms for free.
* :func:`analyze_paths` / :func:`analyze_module` — the drivers.

The analyzer is a *tripwire*, not a verifier: it forces every
secret-adjacent branch, stray RNG construction and hot-path allocation to
either be fixed or carry a human-written reason at the site (inline
suppression) or in the manifest (declassification allowlist).  See
``docs/static_analysis.md`` for the threat-model mapping of each rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

#: Matches one inline suppression.  Reason text is mandatory: a suppression
#: that silences a rule without saying why is itself reported (SUP001).
_SUPPRESS_RE = re.compile(
    r"#\s*oblivious:\s*allow\[(?P<rule>[A-Za-z]{2,8}\d{3})\]\s*(?P<reason>.*)$"
)
#: Anything that *looks* like a suppression attempt (so typos surface as
#: SUP001 instead of silently not suppressing).
_SUPPRESS_ATTEMPT_RE = re.compile(r"#\s*oblivious\s*:")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Qualified name of the enclosing function/class scope, "" at module
    #: level.  Used by declassification-allowlist matching.
    qualname: str = ""
    #: Secret source labels that reached the sink (taint rules only).
    secrets: tuple[str, ...] = ()

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """One parsed inline ``allow[RULE123] reason`` suppression comment."""

    rule: str
    reason: str
    comment_line: int


@dataclass
class SourceModule:
    """A parsed source file plus the lint-relevant side tables."""

    path: str
    text: str
    tree: ast.Module
    lines: list[str]
    #: line -> suppressions that apply to findings anchored on that line.
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)
    #: Malformed suppression attempts: (line, message).
    bad_suppressions: list[tuple[int, str]] = field(default_factory=list)

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        for supp in self.suppressions.get(line, ()):
            if supp.rule == rule:
                return supp
        return None


class AnalysisError(Exception):
    """Raised for unreadable/unparseable inputs and malformed baselines."""


def _parse_suppressions(module: SourceModule) -> None:
    """Populate the line -> suppression map.

    A trailing suppression applies to its own line.  A run of comment-only
    suppression lines applies to the first following non-comment line, so a
    multi-rule stack above one statement works:

        # oblivious: allow[OBL001] reason one
        # oblivious: allow[OBL002] reason two
        for row in stash_rows: ...
    """
    pending: list[Suppression] = []
    for lineno, raw in enumerate(module.lines, start=1):
        stripped = raw.strip()
        match = _SUPPRESS_RE.search(raw)
        if match is not None:
            reason = match.group("reason").strip()
            if not reason:
                module.bad_suppressions.append(
                    (lineno, f"suppression for {match.group('rule')} has no reason")
                )
                continue
            supp = Suppression(match.group("rule"), reason, lineno)
            if stripped.startswith("#"):
                pending.append(supp)
            else:
                entry = module.suppressions.setdefault(lineno, [])
                entry.extend(pending)
                pending = []
                entry.append(supp)
            continue
        if _SUPPRESS_ATTEMPT_RE.search(raw) is not None:
            module.bad_suppressions.append(
                (lineno, "malformed suppression; expected "
                         "'# oblivious: allow[RULE123] reason'")
            )
            continue
        if stripped.startswith("#") or not stripped:
            # Plain comments/blank lines do not break a pending stack.
            continue
        if pending:
            module.suppressions.setdefault(lineno, []).extend(pending)
            pending = []


def parse_module(path: str, text: Optional[str] = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (raises AnalysisError)."""
    if text is None:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    module = SourceModule(
        path=path, text=text, tree=tree, lines=text.splitlines()
    )
    _parse_suppressions(module)
    return module


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``title`` and implement :meth:`check`,
    yielding :class:`Finding` objects with ``rule == self.rule_id``.
    ``config`` is the :class:`~repro.analysis.manifests.AnalysisConfig`
    manifest bundle.
    """

    rule_id: str = ""
    title: str = ""

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        raise NotImplementedError


#: rule_id -> Rule instance, populated by :func:`register_rule`.
RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    """The registry with every built-in rule module imported."""
    from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

    return RULE_REGISTRY


# ----------------------------------------------------------------------
# Qualified names
# ----------------------------------------------------------------------
def build_qualnames(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every function/class node to its dotted qualname.

    Nested functions follow CPython's ``<locals>`` convention, e.g.
    ``Outer.method.<locals>.inner``.
    """
    names: dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                names[child] = qual
                visit(child, f"{qual}.<locals>.", True)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                names[child] = qual
                visit(child, f"{qual}.", in_function)
            else:
                visit(child, prefix, in_function)

    visit(tree, "", False)
    return names


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    declassified: list[tuple[Finding, str]] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.declassified.extend(other.declassified)
        self.files_scanned += other.files_scanned


def analyze_module(module: SourceModule, config) -> AnalysisResult:
    """Run every (selected) rule over one parsed module."""
    result = AnalysisResult(files_scanned=1)
    rules = all_rules()
    selected = config.rules if config.rules is not None else sorted(rules)
    seen: set[tuple[str, str, int, int, str]] = set()
    for rule_id in selected:
        rule = rules[rule_id]
        for finding in rule.check(module, config):
            dedupe = (
                finding.rule, finding.path, finding.line, finding.col,
                finding.message,
            )
            if dedupe in seen:
                continue
            seen.add(dedupe)
            reason = config.declassification_reason(
                module.path, finding.qualname, finding.rule
            )
            if reason is not None:
                result.declassified.append((finding, reason))
                continue
            supp = module.suppression_for(finding.line, finding.rule)
            if supp is not None:
                result.suppressed.append((finding, supp))
                continue
            result.findings.append(finding)
    for line, message in module.bad_suppressions:
        result.findings.append(
            Finding(
                rule="SUP001",
                path=module.path,
                line=line,
                col=0,
                message=message,
            )
        )
    result.findings.sort(key=Finding.sort_key)
    return result


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    out: list[str] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.extend(
                str(f) for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.append(str(p))
        elif not p.exists():
            raise AnalysisError(f"no such file or directory: {entry}")
    seen: set[str] = set()
    for path in out:
        if path not in seen:
            seen.add(path)
            yield path


def analyze_paths(
    paths: Iterable[str],
    config,
    on_file: Optional[Callable[[str], None]] = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` with ``config``."""
    total = AnalysisResult()
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        module = parse_module(path)
        total.extend(analyze_module(module, config))
    total.findings.sort(key=Finding.sort_key)
    return total
