"""ALLOC001 — allocation in the fused zero-allocation hot paths.

PR 8's fused trace drivers carry a measured contract: zero steady-state
allocation, enforced at runtime by a tracemalloc zero-growth bound in
``tests/test_fused_trace.py``.  This rule enforces it at the source level
for the functions in the ``alloc_hot_functions`` manifest, catching an
accidental comprehension or ``np.zeros`` the moment it is written instead
of when the tracemalloc bound flakes.

Two granularities, per manifest entry:

* ``"body"`` — per-access leaf helpers (``_fill_path_slots``,
  ``fused_greedy_write_back``): the whole body is steady state.
* ``"loops"`` — trace drivers (``_run_trace_fused``): setup before the
  access loop may allocate freely; code lexically inside a loop may not.

Flagged constructs: comprehensions and generator expressions, numpy
constructor calls (``np.zeros``/``empty``/``concatenate``/...), builtin
container constructors (``list``/``dict``/``set``/``tuple``/``sorted``),
non-empty list/set/dict display literals, and tuple-growing augmented
assignments.  Amortized allocations that are part of the measured design
(the RNG refill's ``tolist``, compacted path-read results) are not in the
banned set; anything else needs an inline
``# oblivious: allow[ALLOC001] reason``.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    build_qualnames,
    register_rule,
)
from repro.analysis.taint import dotted_name

_NP_CONSTRUCTORS = frozenset(
    {
        "zeros", "empty", "ones", "full", "array", "asarray",
        "ascontiguousarray", "arange", "linspace", "concatenate", "stack",
        "vstack", "hstack", "column_stack", "tile", "repeat", "fromiter",
        "copy", "zeros_like", "empty_like", "ones_like", "full_like",
        "unique", "where", "argsort", "bincount",
    }
)
_BUILTIN_CONSTRUCTORS = frozenset({"list", "dict", "set", "tuple", "sorted"})
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_np_constructor(dotted: str) -> bool:
    parts = dotted.split(".")
    return (
        len(parts) == 2
        and parts[0] in ("np", "numpy")
        and parts[1] in _NP_CONSTRUCTORS
    )


class _AllocVisitor(ast.NodeVisitor):
    """Collect banned allocation sites within one manifest scope."""

    def __init__(self, granularity: str):
        self.granularity = granularity
        self.loop_depth = 0
        self.hits: list[tuple[ast.AST, str]] = []

    def _armed(self) -> bool:
        return self.granularity == "body" or self.loop_depth > 0

    # -- scope control --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions are separate scopes (listed separately if hot);
        # the engine drivers' sync closures run on exit paths, not per
        # access.
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def _visit_loop(self, node) -> None:
        # The iterable/test is evaluated per iteration for while, once for
        # for-loops; treat both as part of the loop for simplicity.
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    # -- banned constructs ----------------------------------------------
    def _ban(self, node: ast.AST, what: str) -> None:
        if self._armed():
            self.hits.append((node, what))

    def visit_ListComp(self, node) -> None:
        self._ban(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node) -> None:
        self._ban(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node) -> None:
        self._ban(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node) -> None:
        self._ban(node, "generator expression")
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        if node.elts and isinstance(node.ctx, ast.Load):
            self._ban(node, "list literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._ban(node, "set literal")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        if node.keys:
            self._ban(node, "dict literal")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            if _is_np_constructor(dotted):
                self._ban(node, f"numpy allocation {dotted}()")
            elif dotted in _BUILTIN_CONSTRUCTORS:
                self._ban(node, f"container construction {dotted}()")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add) and isinstance(node.value, ast.Tuple):
            self._ban(node, "tuple-growing augmented assignment")
        self.generic_visit(node)


@register_rule
class HotPathAllocationRule(Rule):
    rule_id = "ALLOC001"
    title = "allocation in a fused zero-allocation hot path"

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        scopes = config.alloc_scopes_for(module.path)
        if not scopes:
            return
        qualnames = build_qualnames(module.tree)
        for node, qual in qualnames.items():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for scope in scopes:
                if fnmatchcase(qual, scope.qualname):
                    granularity = scope.granularity
                    break
            else:
                continue
            visitor = _AllocVisitor(granularity)
            for stmt in node.body:
                visitor.visit(stmt)
            where = (
                "steady-state loop" if granularity == "loops" else "hot body"
            )
            for hit, what in visitor.hits:
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=hit.lineno,
                    col=hit.col_offset,
                    message=(
                        f"{what} in the {where} of {qual} breaks the "
                        "zero-allocation contract (PR 8 tracemalloc bound)"
                    ),
                    qualname=qual,
                )
