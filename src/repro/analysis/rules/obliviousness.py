"""OBL001/OBL002 — secret-dependent control flow in engine hot paths.

OBL001 flags branches (``if``, ternaries, comprehension filters) whose
condition carries taint from a manifest secret source; OBL002 flags
secret-sized loop bounds (``while`` tests, ``for`` iterables whose length
is secret) and tainted subscript indices into observable (simulated
server-side) containers.

Only functions listed in the module's ``obl_hot_functions`` manifest are
analyzed: obliviousness is a property of the access/eviction hot paths,
and scoping the walk keeps every finding actionable.  Places where the
protocol *legitimately* reveals secret-derived information are sanctioned
either by a manifest :class:`~repro.analysis.manifests.Declassification`
entry or an inline ``# oblivious: allow[OBL001] reason`` suppression —
both require a written reason.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    build_qualnames,
    register_rule,
)
from repro.analysis.taint import TaintSink, walk_function


def _labels_text(sink: TaintSink) -> str:
    return ", ".join(sorted(sink.labels))


def _function_nodes(module: SourceModule):
    """(node, qualname) for every non-nested function in the module."""
    qualnames = build_qualnames(module.tree)
    for node, qual in qualnames.items():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ".<locals>." not in qual:
                yield node, qual


def _is_hot(qualname: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatchcase(qualname, pattern) for pattern in patterns)


def _covers_hot(qualname: str, patterns: tuple[str, ...]) -> bool:
    """Whether this function or one nested inside it is hot."""
    if _is_hot(qualname, patterns):
        return True
    prefix = qualname + ".<locals>."
    return any(pattern.startswith(prefix) for pattern in patterns)


class _OblBase(Rule):
    kinds: frozenset[str] = frozenset()

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        sources = config.sources_for(module.path)
        patterns = config.obl_hot_for(module.path)
        if sources is None or not patterns:
            return
        for node, qual in _function_nodes(module):
            if not _covers_hot(qual, patterns):
                continue
            for fn_taint in walk_function(
                node, qual, sources, config.observable_containers
            ):
                if not _is_hot(fn_taint.qualname, patterns):
                    continue
                for sink in fn_taint.sinks:
                    if sink.kind not in self.kinds:
                        continue
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=sink.line,
                        col=sink.col,
                        message=self.describe(sink),
                        qualname=fn_taint.qualname,
                        secrets=tuple(sorted(sink.labels)),
                    )

    def describe(self, sink: TaintSink) -> str:
        raise NotImplementedError


@register_rule
class SecretBranchRule(_OblBase):
    rule_id = "OBL001"
    title = "secret-dependent branch in an engine hot path"
    kinds = frozenset({"if", "ifexp", "comp_if"})

    def describe(self, sink: TaintSink) -> str:
        what = {
            "if": "branch",
            "ifexp": "conditional expression",
            "comp_if": "comprehension filter",
        }[sink.kind]
        suffix = " guarding an early exit" if sink.early_exit else ""
        return (
            f"secret-dependent {what}{suffix} in {sink.qualname} "
            f"(secrets: {_labels_text(sink)})"
        )


@register_rule
class SecretLoopRule(_OblBase):
    rule_id = "OBL002"
    title = "secret-dependent loop bound / observable index in a hot path"
    kinds = frozenset({"while", "for", "subscript"})

    def describe(self, sink: TaintSink) -> str:
        if sink.kind == "while":
            return (
                f"secret-dependent while-loop bound in {sink.qualname} "
                f"(secrets: {_labels_text(sink)})"
            )
        if sink.kind == "for":
            return (
                f"loop over a secret-sized sequence in {sink.qualname} "
                f"(secrets: {_labels_text(sink)})"
            )
        return (
            f"secret-dependent index into observable container "
            f"'{sink.container}' in {sink.qualname} "
            f"(secrets: {_labels_text(sink)})"
        )
