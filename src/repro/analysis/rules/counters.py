"""CNT001 — fused drivers must flush deferred counters on every exit path.

The fused trace drivers run with :class:`TrafficCounter` in deferred mode:
per-access tallies accumulate in locals and are written back once via
``add_bulk``.  If the flush is not in a ``finally`` block, an exception
mid-trace (or an early return) loses the accumulated traffic and every
downstream accounting assertion silently compares against a short count.

The rule checks each manifest ``fused_drivers`` function for a ``try``
statement whose ``finally`` either calls ``.add_bulk(...)`` directly or
calls a function defined locally inside the driver whose body does (the
engine's ``sync_out`` closure pattern).  Drivers with no flush at all are
also flagged.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    build_qualnames,
    register_rule,
)


def _calls_add_bulk(nodes) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "add_bulk"
            ):
                return True
    return False


def _local_flushers(fn: ast.AST) -> set[str]:
    """Names of functions defined inside ``fn`` whose bodies call add_bulk."""
    flushers: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            if _calls_add_bulk(node.body):
                flushers.add(node.name)
    return flushers


def _finalbody_flushes(finalbody, flushers: set[str]) -> bool:
    if _calls_add_bulk(finalbody):
        return True
    for node in finalbody:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in flushers
            ):
                return True
    return False


@register_rule
class DeferredCounterFlushRule(Rule):
    rule_id = "CNT001"
    title = "fused driver without a finally-guarded counter flush"

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        driver_patterns = config.fused_drivers_for(module.path)
        if not driver_patterns:
            return
        qualnames = build_qualnames(module.tree)
        for node, qual in qualnames.items():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(fnmatchcase(qual, p) for p in driver_patterns):
                continue
            flushers = _local_flushers(node)
            has_any_flush = _calls_add_bulk(node.body)
            tries = [
                sub for sub in ast.walk(node) if isinstance(sub, ast.Try)
            ]
            guarded = any(
                sub.finalbody and _finalbody_flushes(sub.finalbody, flushers)
                for sub in tries
            )
            if guarded:
                continue
            if not has_any_flush and not flushers:
                message = (
                    f"fused driver {qual} opens a deferred counter block but "
                    "never flushes via add_bulk; accumulated traffic is lost"
                )
            else:
                message = (
                    f"fused driver {qual} flushes deferred counters outside "
                    "a finally block; an exception mid-trace loses the "
                    "accumulated traffic"
                )
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                qualname=qual,
            )
