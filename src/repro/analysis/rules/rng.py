"""RNG001 — all randomness must flow through ``repro.utils.rng``.

The equivalence harness (`tests/test_engine_equivalence.py`) and every
bit-identity claim in the benchmarks rest on one assumption: a fixed seed
fully determines the generator stream.  A direct
``np.random.default_rng()`` / legacy ``np.random.*`` call or a stdlib
``random`` import anywhere else creates a stream the seed plumbing cannot
see, silently voiding those guarantees — so construction is only allowed
inside the manifest's ``rng_allowed_modules`` (``repro/utils/rng.py``).

Type annotations (``np.random.Generator``) are fine: the rule flags calls
and imports, not references.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    build_qualnames,
    register_rule,
)
from repro.analysis.taint import dotted_name

_NUMPY_PREFIXES = ("np.random.", "numpy.random.")


def _enclosing_qualname(
    node: ast.AST, parents: dict[ast.AST, ast.AST], qualnames: dict[ast.AST, str]
) -> str:
    cursor = parents.get(node)
    while cursor is not None:
        if cursor in qualnames:
            return qualnames[cursor]
        cursor = parents.get(cursor)
    return ""


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


@register_rule
class DirectRngRule(Rule):
    rule_id = "RNG001"
    title = "direct RNG construction outside repro.utils.rng"

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        if config.rng_allowed(module.path):
            return
        qualnames = build_qualnames(module.tree)
        parents = _parent_map(module.tree)

        def finding(node: ast.AST, message: str) -> Finding:
            return Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                qualname=_enclosing_qualname(node, parents, qualnames),
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield finding(
                            node,
                            "stdlib 'random' import; use repro.utils.rng "
                            "(make_rng / SeedSequenceFactory) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "random" or mod.startswith("random."):
                    yield finding(
                        node,
                        "stdlib 'random' import; use repro.utils.rng "
                        "(make_rng / SeedSequenceFactory) instead",
                    )
                elif mod in ("numpy.random",) or mod.startswith("numpy.random."):
                    yield finding(
                        node,
                        "direct numpy.random import; construct generators via "
                        "repro.utils.rng so seeds stay centralised",
                    )
                elif mod == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            yield finding(
                                node,
                                "direct numpy.random import; construct "
                                "generators via repro.utils.rng so seeds "
                                "stay centralised",
                            )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if any(dotted.startswith(p) for p in _NUMPY_PREFIXES):
                    yield finding(
                        node,
                        f"direct call to {dotted}; all randomness must flow "
                        "through repro.utils.rng (make_rng / "
                        "SeedSequenceFactory) or the bit-identity equivalence "
                        "harness silently loses meaning",
                    )
