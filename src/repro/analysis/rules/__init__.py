"""Built-in rules.  Importing this package registers every rule.

Rule inventory (ids are stable; see ``docs/static_analysis.md``):

* OBL001/OBL002 — secret-dependent branches / loop bounds & observable
  indices in engine hot paths (:mod:`.obliviousness`).
* RNG001 — direct RNG construction outside ``repro.utils.rng``
  (:mod:`.rng`).
* ALLOC001 — allocation inside the fused zero-allocation hot paths
  (:mod:`.alloc`).
* API001 — protocol mixins missing ``SUPPORTS_BATCHED_ACCESS``
  (:mod:`.api`).
* CNT001 — fused drivers without a finally-guarded ``add_bulk`` flush
  (:mod:`.counters`).
* SUP001 — malformed or reason-less inline suppressions (emitted by the
  driver in :mod:`repro.analysis.core`, not a rule class).
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    alloc,
    api,
    counters,
    obliviousness,
    rng,
)

__all__ = ["alloc", "api", "counters", "obliviousness", "rng"]
