"""API001 — protocol mixins must declare SUPPORTS_BATCHED_ACCESS.

The engine's batch entry point (``access_many``) routes through
``_access_batch`` only when the active protocol mixin opts in via the
``SUPPORTS_BATCHED_ACCESS`` class attribute.  A mixin that omits the
declaration silently inherits whatever the MRO provides, which is exactly
how a protocol that is *not* batch-safe (RingORAM's per-bucket read
counters, PrORAM's history updates) ends up batched by accident.  The
contract is therefore: every class matching the mixin patterns that
implements an access-path method states the flag explicitly in its own
class body.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    build_qualnames,
    register_rule,
)

_FLAG = "SUPPORTS_BATCHED_ACCESS"
#: A mixin is "protocol-shaped" if it defines any of these methods.
_ACCESS_METHODS = frozenset(
    {"access", "access_many", "write_many", "_access_batch", "run_trace"}
)


def _declares_flag(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == _FLAG:
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == _FLAG:
                return True
    return False


def _is_protocol_shaped(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in _ACCESS_METHODS
        for stmt in cls.body
    )


@register_rule
class BatchedAccessDeclarationRule(Rule):
    rule_id = "API001"
    title = "protocol mixin missing SUPPORTS_BATCHED_ACCESS declaration"

    def check(self, module: SourceModule, config) -> Iterator[Finding]:
        qualnames = build_qualnames(module.tree)
        for node, qual in qualnames.items():
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                fnmatchcase(node.name, pattern)
                for pattern in config.mixin_class_patterns
            ):
                continue
            if not _is_protocol_shaped(node):
                continue
            if _declares_flag(node):
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"protocol mixin {node.name} defines an access-path "
                    f"method but does not declare {_FLAG} in its class body; "
                    "batch routing must be an explicit per-protocol decision"
                ),
                qualname=qual,
            )
