"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from typing import IO

from repro.analysis.core import AnalysisResult, Finding


def _finding_dict(finding: Finding) -> dict:
    out = {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.qualname:
        out["qualname"] = finding.qualname
    if finding.secrets:
        out["secrets"] = list(finding.secrets)
    return out


def report_text(
    result: AnalysisResult,
    stream: IO[str],
    new_findings: list[Finding],
    baselined: list[Finding],
    show_declassified: bool = False,
) -> None:
    for finding in new_findings:
        stream.write(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}\n"
        )
    if show_declassified:
        for finding, reason in result.declassified:
            stream.write(
                f"{finding.path}:{finding.line}: {finding.rule} declassified "
                f"({finding.qualname or '<module>'}): {reason}\n"
            )
        for finding, supp in result.suppressed:
            stream.write(
                f"{finding.path}:{finding.line}: {finding.rule} suppressed "
                f"inline (line {supp.comment_line}): {supp.reason}\n"
            )
    summary = (
        f"{result.files_scanned} files scanned, "
        f"{len(new_findings)} new finding(s), "
        f"{len(baselined)} baselined, "
        f"{len(result.suppressed)} suppressed inline, "
        f"{len(result.declassified)} declassified"
    )
    stream.write(summary + "\n")


def report_json(
    result: AnalysisResult,
    stream: IO[str],
    new_findings: list[Finding],
    baselined: list[Finding],
    show_declassified: bool = False,
) -> None:
    payload = {
        "files_scanned": result.files_scanned,
        "new_findings": [_finding_dict(f) for f in new_findings],
        "baselined": [_finding_dict(f) for f in baselined],
        "suppressed": [
            {**_finding_dict(f), "reason": s.reason}
            for f, s in result.suppressed
        ],
    }
    if show_declassified:
        payload["declassified"] = [
            {**_finding_dict(f), "reason": reason}
            for f, reason in result.declassified
        ]
    else:
        payload["declassified_count"] = len(result.declassified)
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


REPORTERS = {"text": report_text, "json": report_json}
