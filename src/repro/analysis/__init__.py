"""Static obliviousness & hot-path invariant analysis for the ORAM engine.

Stdlib-only (``ast``) lint framework enforcing the repository's security
and performance contracts at the source level:

* OBL001/OBL002 — no secret-dependent branches, loop bounds or observable
  indices in engine hot paths (intraprocedural taint walk from per-module
  source manifests).
* RNG001 — all randomness flows through :mod:`repro.utils.rng`.
* ALLOC001 — the fused trace drivers stay allocation-free in steady state.
* API001 — protocol mixins declare ``SUPPORTS_BATCHED_ACCESS``.
* CNT001 — fused drivers flush deferred counters on all exit paths.

Run with ``python -m repro.analysis [paths] --baseline
.analysis-baseline.json``; see ``docs/static_analysis.md``.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysis.core import (
    AnalysisError,
    AnalysisResult,
    Finding,
    Rule,
    RULE_REGISTRY,
    SourceModule,
    all_rules,
    analyze_module,
    analyze_paths,
    parse_module,
    register_rule,
)
from repro.analysis.manifests import (
    AllocScope,
    AnalysisConfig,
    Declassification,
    Declassifier,
    ModuleSources,
    default_config,
)

__all__ = [
    "AllocScope",
    "AnalysisConfig",
    "AnalysisError",
    "AnalysisResult",
    "DEFAULT_BASELINE",
    "Declassification",
    "Declassifier",
    "Finding",
    "ModuleSources",
    "RULE_REGISTRY",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze_module",
    "analyze_paths",
    "default_config",
    "load_baseline",
    "parse_module",
    "register_rule",
    "save_baseline",
    "split_against_baseline",
]
