"""``python -m repro.analysis`` — the lint driver CLI.

Exit codes: 0 = clean (no non-baselined findings), 1 = new findings,
2 = usage/IO error (unreadable file, malformed baseline).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysis.core import AnalysisError, analyze_paths
from repro.analysis.manifests import default_config
from repro.analysis.reporters import REPORTERS

DEFAULT_PATHS = ("src/repro", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Obliviousness and hot-path invariant linter for the ORAM "
            "engine (see docs/static_analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline of accepted findings; defaults to "
            f"{DEFAULT_BASELINE} when it exists"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-declassified",
        action="store_true",
        help="also list declassified and inline-suppressed findings",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    config = default_config()
    if args.rules:
        config.rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.exists(p)]
    if not paths:
        parser.error("no paths given and none of the defaults exist")

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    try:
        result = analyze_paths(paths, config)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        save_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    baseline = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, matched, stale = split_against_baseline(result.findings, baseline)
    REPORTERS[args.format](
        result,
        sys.stdout,
        new,
        matched,
        show_declassified=args.show_declassified,
    )
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer found; "
            "regenerate with --write-baseline",
            file=sys.stderr,
        )
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
