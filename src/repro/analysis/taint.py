"""Intraprocedural taint walk for the obliviousness rules.

A deliberately simple forward dataflow over one function body:

* **Sources** come from the module manifest
  (:class:`~repro.analysis.manifests.ModuleSources`): secret parameters,
  secret attribute suffixes (position-map leaf arrays, stash id/leaf rows)
  and secret-returning calls (position-map lookups).  Each source yields a
  label (``param:block_id``, ``attr:position_map.leaves``, ...) and labels
  propagate through assignments, arithmetic, subscripts, calls and
  container poisoning.
* **Label classes** encode the threat model: ``param:`` labels are
  *content-secret* — the values are secret but their count is public (a
  trace's length is observable anyway), so ``len()`` of a parameter and
  iteration over one are public; ``attr:``/``call:`` labels are *fully*
  secret — ``len(stash_map)`` is the stash occupancy, which is exactly the
  signal background eviction leaks.
* **Declassifiers**: the protocol reveals the leaf it reads a path for, so
  after a manifest-listed path-read call the leaf argument's taint is
  cleared.
* **Sinks** are reported as :class:`TaintSink` events; the rule layer maps
  them to OBL001 (branches) and OBL002 (loop bounds, observable-container
  indices) and applies hot-function scoping.

Limitations (documented, deliberate): no interprocedural propagation, no
implicit flows (a counter incremented under a tainted guard stays clean),
loop bodies are walked twice as a cheap fixpoint.  The rules are tripwires
that force a human-written reason at each reveal site, not a verifier.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.manifests import ModuleSources

Labels = frozenset[str]
EMPTY: Labels = frozenset()

#: Calls whose results never carry taint (type dispatch, not contents).
_SANITIZERS = frozenset({"isinstance", "type", "callable", "hasattr"})

#: Calls whose result size/length is public even over secret contents.
_SIZE_ONLY = frozenset({"len"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _suffix_match(dotted: str, suffix: str) -> bool:
    """True when ``dotted`` ends with ``suffix`` on a dot boundary."""
    if dotted == suffix:
        return True
    return dotted.endswith("." + suffix)


@dataclass(frozen=True)
class TaintSink:
    """One tainted value reaching an observable decision point."""

    #: "if" | "ifexp" | "comp_if" | "while" | "for" | "subscript"
    kind: str
    line: int
    col: int
    labels: Labels
    qualname: str
    #: For "if": whether the guarded body holds break/continue/return/raise.
    early_exit: bool = False
    #: For "subscript": the observable container's name.
    container: str = ""


@dataclass
class FunctionTaint:
    """Result of walking one function."""

    qualname: str
    sinks: list[TaintSink] = field(default_factory=list)


def _only_params(labels: Labels) -> bool:
    return bool(labels) and all(lb.startswith("param:") for lb in labels)


class _Walker:
    def __init__(
        self,
        sources: ModuleSources,
        observable: frozenset[str],
        qualname: str,
        results: list[FunctionTaint],
    ):
        self.sources = sources
        self.observable = observable
        self.qualname = qualname
        self.env: dict[str, Labels] = {}
        self.out = FunctionTaint(qualname=qualname)
        self.results = results
        results.append(self.out)
        self._sink_seen: set[tuple[str, int, int]] = set()

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def _emit(self, kind: str, node: ast.AST, labels: Labels, **kw) -> None:
        key = (kind, node.lineno, node.col_offset)
        if key in self._sink_seen:
            return
        self._sink_seen.add(key)
        self.out.sinks.append(
            TaintSink(
                kind=kind,
                line=node.lineno,
                col=node.col_offset,
                labels=labels,
                qualname=self.qualname,
                **kw,
            )
        )

    # ------------------------------------------------------------------
    # Expression taint
    # ------------------------------------------------------------------
    def _source_attr(self, dotted: str) -> Labels:
        for suffix in self.sources.attrs:
            if _suffix_match(dotted, suffix):
                return frozenset({f"attr:{suffix}"})
        return EMPTY

    def _source_call(self, dotted: str) -> Labels:
        for suffix in self.sources.calls:
            if _suffix_match(dotted, suffix):
                return frozenset({f"call:{suffix}"})
        return EMPTY

    def taint(self, node: Optional[ast.AST]) -> Labels:
        if node is None:
            return EMPTY
        method = getattr(self, f"_taint_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Generic fallback: union over child expressions.
        out: Labels = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.taint(child)
        return out

    def _taint_Name(self, node: ast.Name) -> Labels:
        return self.env.get(node.id, EMPTY)

    def _taint_Attribute(self, node: ast.Attribute) -> Labels:
        dotted = dotted_name(node)
        if dotted is not None:
            hit = self.env.get(dotted)
            if hit is not None:
                return hit
            src = self._source_attr(dotted)
            if src:
                return src
        return self.taint(node.value)

    def _taint_Subscript(self, node: ast.Subscript) -> Labels:
        self._check_subscript_sink(node)
        return self.taint(node.value) | self.taint(node.slice)

    def _taint_Call(self, node: ast.Call) -> Labels:
        func_dotted = dotted_name(node.func)
        arg_taint: Labels = EMPTY
        for arg in node.args:
            arg_taint |= self.taint(arg)
        for kw in node.keywords:
            arg_taint |= self.taint(kw.value)
        result: Labels
        if func_dotted is not None and func_dotted in _SANITIZERS:
            result = EMPTY
        elif func_dotted is not None and func_dotted in _SIZE_ONLY:
            # len() of content-secret params is public; of fully secret
            # containers it is the (secret) occupancy.
            result = frozenset(
                lb for lb in arg_taint if not lb.startswith("param:")
            )
        else:
            result = arg_taint | self.taint(node.func)
            if func_dotted is not None:
                src = self._source_call(func_dotted)
                if src:
                    result = result | src
        if func_dotted is not None:
            self._apply_declassifier(func_dotted, node)
        return result

    def _taint_IfExp(self, node: ast.IfExp) -> Labels:
        test = self.taint(node.test)
        if test:
            self._emit("ifexp", node, test)
        return test | self.taint(node.body) | self.taint(node.orelse)

    def _taint_Lambda(self, node: ast.Lambda) -> Labels:
        return EMPTY

    def _taint_ListComp(self, node: ast.ListComp) -> Labels:
        return self._taint_comp(node, [node.elt])

    def _taint_SetComp(self, node: ast.SetComp) -> Labels:
        return self._taint_comp(node, [node.elt])

    def _taint_GeneratorExp(self, node: ast.GeneratorExp) -> Labels:
        return self._taint_comp(node, [node.elt])

    def _taint_DictComp(self, node: ast.DictComp) -> Labels:
        return self._taint_comp(node, [node.key, node.value])

    def _taint_comp(self, node, elts: list[ast.expr]) -> Labels:
        out: Labels = EMPTY
        for gen in node.generators:
            iter_taint = self.taint(gen.iter)
            self._bind(gen.target, iter_taint)
            out |= iter_taint
            for cond in gen.ifs:
                cond_taint = self.taint(cond)
                if cond_taint:
                    self._emit("comp_if", cond, cond_taint)
                out |= cond_taint
        for elt in elts:
            out |= self.taint(elt)
        return out

    # ------------------------------------------------------------------
    def _check_subscript_sink(self, node: ast.Subscript) -> None:
        base = dotted_name(node.value)
        if base is None:
            return
        bare = base.rsplit(".", 1)[-1]
        if bare not in self.observable:
            return
        index_taint = self.taint(node.slice)
        if index_taint:
            self._emit("subscript", node, index_taint, container=bare)

    def _apply_declassifier(self, func_dotted: str, node: ast.Call) -> None:
        for decl in self.sources.declassifiers:
            if not _suffix_match(func_dotted, decl.suffix):
                continue
            for pos in decl.positions:
                if pos < len(node.args) and isinstance(node.args[pos], ast.Name):
                    self.env.pop(node.args[pos].id, None)
            return

    # ------------------------------------------------------------------
    # Assignment / binding
    # ------------------------------------------------------------------
    def _bind(self, target: ast.AST, labels: Labels) -> None:
        if isinstance(target, ast.Name):
            if labels:
                self.env[target.id] = labels
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        elif isinstance(target, ast.Subscript):
            # Writing through a container poisons the container with both
            # the key's and the value's taint.
            self._check_subscript_sink(target)
            extra = labels | self.taint(target.slice)
            base = dotted_name(target.value)
            if base is not None and extra:
                root = base.split(".", 1)[0]
                self.env[root] = self.env.get(root, EMPTY) | extra
                if base != root:
                    self.env[base] = self.env.get(base, EMPTY) | extra
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                if labels:
                    self.env[dotted] = labels
                else:
                    self.env.pop(dotted, None)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self.taint(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.taint(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self.taint(stmt.value)
            if isinstance(stmt.target, ast.Name):
                labels |= self.env.get(stmt.target.id, EMPTY)
            elif isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
                labels |= self.taint(stmt.target)
            self._bind(stmt.target, labels)
        elif isinstance(stmt, ast.If):
            test = self.taint(stmt.test)
            if test:
                self._emit(
                    "if", stmt, test, early_exit=_has_early_exit(stmt.body)
                )
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            test = self.taint(stmt.test)
            if test and not _only_params(test):
                self._emit("while", stmt, test)
            # Two passes approximate the loop fixpoint (taint introduced at
            # the bottom of the body reaches uses at the top).
            self.exec_block(stmt.body)
            self.taint(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_taint = self.taint(stmt.iter)
            if iter_taint and not _only_params(iter_taint):
                self._emit("for", stmt, iter_taint)
            self._bind(stmt.target, iter_taint)
            self.exec_block(stmt.body)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx_taint = self.taint(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, ctx_taint)
            self.exec_block(stmt.body)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _Walker(
                self.sources,
                self.observable,
                f"{self.qualname}.<locals>.{stmt.name}",
                self.results,
            )
            nested.env = dict(self.env)
            nested.seed_params(stmt)
            nested.exec_block(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, (ast.Return, ast.Expr, ast.Raise, ast.Assert,
                               ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.taint(child)
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do.

    def seed_params(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = func.args
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in every:
            if arg.arg in self.sources.params:
                self.env[arg.arg] = frozenset({f"param:{arg.arg}"})


def _has_early_exit(body: list[ast.stmt]) -> bool:
    """Shallow scan: does the guarded body break/continue/return/raise?"""
    for stmt in body:
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Return, ast.Raise)):
            return True
    return False


def walk_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    sources: ModuleSources,
    observable: frozenset[str],
) -> list[FunctionTaint]:
    """Taint-walk one function (and its nested functions).

    Returns one :class:`FunctionTaint` per function scope encountered,
    outermost first.  Nested functions inherit a copy of the enclosing
    environment at their definition point (the fused drivers' ``sync_out``
    closures and PrORAM's ``before_access`` hook capture tainted state).
    """
    results: list[FunctionTaint] = []
    walker = _Walker(sources, observable, qualname, results)
    walker.seed_params(func)
    walker.exec_block(func.body)
    return results
