"""Quantifying what an observer learned: leakage and obliviousness analysis.

Two complementary analyses back the paper's security argument (Section VI):

* **Address leakage** — against the insecure baseline the adversary's
  observations carry (almost) all of the information in the true access
  stream: the mutual information approaches the stream's entropy and the
  recovered histogram matches the true category histogram.
* **Path obliviousness** — against PathORAM/LAORAM the adversary sees only
  leaf labels which must be (a) uniform over the leaves and (b) essentially
  independent of the accessed blocks.  The chi-square test checks (a), and
  mutual information between true addresses and observed paths checks (b).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.stats import (
    ChiSquareResult,
    chi_square_uniformity,
    empirical_entropy,
    mutual_information,
)


@dataclass(frozen=True)
class LeakageReport:
    """How much the adversary's observations reveal about the true accesses."""

    true_entropy_bits: float
    mutual_information_bits: float
    top1_recovery_rate: float

    @property
    def leakage_fraction(self) -> float:
        """Fraction of the access stream's entropy the observations expose."""
        if self.true_entropy_bits == 0:
            return 0.0
        return min(1.0, self.mutual_information_bits / self.true_entropy_bits)


def recover_access_histogram(observations: Sequence[int]) -> dict[int, int]:
    """Histogram of observed values — the adversary's reconstruction of interest."""
    return dict(Counter(int(value) for value in observations))


def analyze_address_leakage(
    true_addresses: Sequence[int], observed: Sequence[int]
) -> LeakageReport:
    """Quantify leakage when observations align one-to-one with true accesses."""
    true_list = [int(a) for a in true_addresses]
    observed_list = [int(o) for o in observed]
    entropy = empirical_entropy(true_list)
    info = mutual_information(true_list, observed_list) if observed_list else 0.0
    matches = sum(1 for t, o in zip(true_list, observed_list) if t == o)
    top1 = matches / len(true_list) if true_list else 0.0
    return LeakageReport(
        true_entropy_bits=entropy,
        mutual_information_bits=info,
        top1_recovery_rate=top1,
    )


@dataclass(frozen=True)
class OblivionessReport:
    """Statistical checks of an ORAM's observable path stream."""

    uniformity: ChiSquareResult
    mutual_information_bits: float
    num_observations: int

    @property
    def looks_oblivious(self) -> bool:
        """Paths are uniform and carry (almost) no information about accesses."""
        return (not self.uniformity.rejects_uniformity()) and (
            self.mutual_information_bits < 0.25
        )


def analyze_path_obliviousness(
    true_addresses: Sequence[int],
    observed_paths: Sequence[int],
    num_leaves: int,
    coarse_bins: int = 8,
) -> OblivionessReport:
    """Check the observed path stream for uniformity and independence.

    The mutual information is computed between coarsened addresses and
    coarsened paths (``coarse_bins`` buckets each) so the finite-sample
    estimation bias — roughly ``(bins - 1)^2 / (2 ln 2 · n)`` bits — stays
    well below the 0.25-bit decision threshold for the observation counts the
    experiments produce; an oblivious engine drives the true value to zero.
    """
    paths = np.asarray(list(observed_paths), dtype=np.int64)
    uniformity = chi_square_uniformity(paths, num_leaves)
    true_arr = np.asarray(list(true_addresses), dtype=np.int64)
    length = min(true_arr.size, paths.size)
    if length == 0:
        info = 0.0
    else:
        true_bins = (true_arr[:length] * coarse_bins // max(1, true_arr.max() + 1)).tolist()
        path_bins = (paths[:length] * coarse_bins // num_leaves).tolist()
        info = mutual_information(true_bins, path_bins)
    return OblivionessReport(
        uniformity=uniformity,
        mutual_information_bits=info,
        num_observations=int(paths.size),
    )
