"""Adversarial observers of the server memory bus.

Section I-A of the paper describes the concrete attack the system defends
against: a curious OS clears present bits on the embedding-table pages so
every lookup faults, revealing the page, then uses flush+reload to refine the
observation to cache-line granularity — effectively recovering the embedding
row index of every access.  The observers here model exactly what such an
adversary records in the two settings:

* against the insecure baseline it records true block addresses (optionally
  coarsened to page / cache-line granularity);
* against any ORAM engine it records only the path (leaf) labels of the tree
  fetches, which is all the ORAM ever exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass
class MemoryBusObserver:
    """Passive adversary recording whatever addresses appear on the bus."""

    observed_addresses: list[int] = field(default_factory=list)
    observed_paths: list[int] = field(default_factory=list)
    observed_dummy_flags: list[bool] = field(default_factory=list)

    def observe_address(self, block_id: int) -> None:
        """Record a plaintext block address (insecure baseline only)."""
        self.observed_addresses.append(int(block_id))

    def observe_path(self, leaf: int, dummy: bool = False) -> None:
        """Record a path (leaf) fetch issued by an ORAM engine."""
        self.observed_paths.append(int(leaf))
        self.observed_dummy_flags.append(bool(dummy))

    @property
    def num_observations(self) -> int:
        """Total events recorded."""
        return len(self.observed_addresses) + len(self.observed_paths)

    def reset(self) -> None:
        """Forget everything recorded so far."""
        self.observed_addresses.clear()
        self.observed_paths.clear()
        self.observed_dummy_flags.clear()


class CuriousOSObserver(MemoryBusObserver):
    """Curious-OS adversary combining page faults and flush+reload.

    The observation granularity is configurable: ``page_size_bytes`` models
    what the page-fault handler reveals, ``cache_line_bytes`` what the
    flush+reload refinement reveals.  With one embedding row per cache line
    (the paper's scenario) the cache-line observation uniquely identifies the
    accessed row.
    """

    def __init__(
        self,
        block_size_bytes: int,
        page_size_bytes: int = 4096,
        cache_line_bytes: int = 64,
    ):
        super().__init__()
        if block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")
        if page_size_bytes < cache_line_bytes:
            raise ConfigurationError("page must be at least one cache line")
        self.block_size_bytes = block_size_bytes
        self.page_size_bytes = page_size_bytes
        self.cache_line_bytes = cache_line_bytes
        self.observed_pages: list[int] = []
        self.observed_cache_lines: list[int] = []

    def observe_address(self, block_id: int) -> None:
        """Record page- and cache-line-granularity views of a plaintext access."""
        super().observe_address(block_id)
        byte_address = block_id * self.block_size_bytes
        self.observed_pages.append(byte_address // self.page_size_bytes)
        self.observed_cache_lines.append(byte_address // self.cache_line_bytes)

    def recovered_block_ids(self) -> list[int]:
        """Block ids the adversary can reconstruct from cache-line observations.

        When a block spans one or more whole cache lines the reconstruction
        is exact; when several blocks share a cache line the adversary only
        learns the group, and this method returns the first block of the
        group (its best guess).
        """
        blocks_per_line = max(1, self.cache_line_bytes // self.block_size_bytes)
        recovered = []
        for line in self.observed_cache_lines:
            first_byte = line * self.cache_line_bytes
            recovered.append(first_byte // self.block_size_bytes if blocks_per_line > 1 else first_byte // self.block_size_bytes)
        return recovered

    def reset(self) -> None:
        super().reset()
        self.observed_pages.clear()
        self.observed_cache_lines.clear()
