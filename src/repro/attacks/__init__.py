"""Threat-model harness: adversarial observers and leakage analysis."""

from repro.attacks.observer import CuriousOSObserver, MemoryBusObserver
from repro.attacks.analysis import (
    LeakageReport,
    analyze_address_leakage,
    analyze_path_obliviousness,
    recover_access_histogram,
)

__all__ = [
    "MemoryBusObserver",
    "CuriousOSObserver",
    "LeakageReport",
    "analyze_address_leakage",
    "analyze_path_obliviousness",
    "recover_access_histogram",
]
