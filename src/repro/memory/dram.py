"""Analytic DDR4-like DRAM timing model for the ORAM server storage.

The paper's server is a Xeon with 64 GB of DDR4.  We do not simulate DRAM at
the command level; instead each bucket read/write is charged a row-activation
latency plus a streaming transfer at the sustained channel bandwidth.  This
captures the two quantities that determine PathORAM overhead: the number of
bucket touches per access and the number of bytes moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DRAMModel:
    """Timing parameters of the server-side memory.

    Attributes:
        row_access_latency_ns: Cost of activating/precharging a row for one
            bucket touch (roughly tRC for DDR4-2400).
        bandwidth_gib_per_s: Sustained sequential bandwidth of the memory
            channel feeding the ORAM tree.
    """

    row_access_latency_ns: float = 45.0
    bandwidth_gib_per_s: float = 17.0

    def __post_init__(self) -> None:
        if self.row_access_latency_ns < 0:
            raise ConfigurationError("row_access_latency_ns must be non-negative")
        if self.bandwidth_gib_per_s <= 0:
            raise ConfigurationError("bandwidth_gib_per_s must be positive")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Sustained bandwidth in bytes per second."""
        return self.bandwidth_gib_per_s * (1 << 30)

    def access_time_s(self, num_buckets: int, num_bytes: int) -> float:
        """Time to touch ``num_buckets`` buckets moving ``num_bytes`` bytes."""
        if num_buckets < 0 or num_bytes < 0:
            raise ValueError("bucket and byte counts must be non-negative")
        activation = num_buckets * self.row_access_latency_ns * 1e-9
        streaming = num_bytes / self.bandwidth_bytes_per_s
        return activation + streaming
