"""Traffic accounting for ORAM experiments.

Every ORAM implementation in this package reports its activity through a
:class:`TrafficCounter`.  The counters are what the paper's evaluation is
built on: path reads/writes, dummy (background-eviction) reads, bytes moved,
and stash occupancy over time (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable copy of a :class:`TrafficCounter` at a point in time."""

    logical_accesses: int
    path_reads: int
    path_writes: int
    dummy_reads: int
    buckets_read: int
    buckets_written: int
    bytes_read: int
    bytes_written: int
    stash_peak: int
    background_evictions: int
    # Recursive-position-map traffic is charged as its own category so the
    # main-tree counters above stay directly comparable between dense and
    # recursive configurations (the dense map moves no bytes at all).
    posmap_path_reads: int = 0
    posmap_path_writes: int = 0
    posmap_bytes_read: int = 0
    posmap_bytes_written: int = 0

    @property
    def total_paths_touched(self) -> int:
        """Real plus dummy path reads (each dummy read also writes the path back)."""
        return self.path_reads + self.dummy_reads

    @property
    def total_bytes(self) -> int:
        """Bytes moved in both directions."""
        return self.bytes_read + self.bytes_written

    @property
    def dummy_reads_per_access(self) -> float:
        """Average dummy reads per logical access (Table II metric)."""
        if self.logical_accesses == 0:
            return 0.0
        return self.dummy_reads / self.logical_accesses

    @property
    def paths_per_access(self) -> float:
        """Average real+dummy paths read per logical access."""
        if self.logical_accesses == 0:
            return 0.0
        return self.total_paths_touched / self.logical_accesses

    @property
    def posmap_total_bytes(self) -> int:
        """Position-map recursion bytes moved in both directions."""
        return self.posmap_bytes_read + self.posmap_bytes_written

    @property
    def posmap_paths_per_access(self) -> float:
        """Average recursion-level path reads per logical access.

        The lookahead-amortization metric: LAORAM touches the recursive
        position map once per *distinct* block of a superblock bin, so
        this ratio drops below PathORAM's levels-per-access constant.
        """
        if self.logical_accesses == 0:
            return 0.0
        return self.posmap_path_reads / self.logical_accesses


def merge_snapshots(snapshots: "Iterable[TrafficSnapshot]") -> TrafficSnapshot:
    """Combine per-shard snapshots into one aggregate view.

    Additive counters sum; ``stash_peak`` takes the maximum because each
    shard owns an independent stash (the aggregate peak client memory is
    bounded by the sum, but the per-engine peak is what stash-overflow
    analyses care about).
    """
    merged = TrafficCounter()
    for snapshot in snapshots:
        for spec in fields(TrafficSnapshot):
            value = getattr(snapshot, spec.name)
            if spec.name == "stash_peak":
                merged.stash_peak = max(merged.stash_peak, value)
            else:
                setattr(merged, spec.name, getattr(merged, spec.name) + value)
    return merged.snapshot()


@dataclass
class TrafficCounter:
    """Mutable accumulator of ORAM traffic statistics.

    With ``deferred=True`` the per-event ``record_*`` methods accumulate
    into a plain-int pending buffer instead of the dataclass fields, and the
    buffer is folded in by :meth:`flush` (called automatically by
    :meth:`snapshot`).  Integer addition is exact under any grouping, so the
    flushed totals are bit-identical to live recording; the toggle exists so
    the reference engines can exercise — and the tests can assert — the same
    aggregation discipline the fused array drivers use internally.
    """

    logical_accesses: int = 0
    path_reads: int = 0
    path_writes: int = 0
    dummy_reads: int = 0
    buckets_read: int = 0
    buckets_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    stash_peak: int = 0
    background_evictions: int = 0
    posmap_path_reads: int = 0
    posmap_path_writes: int = 0
    posmap_bytes_read: int = 0
    posmap_bytes_written: int = 0
    stash_history: list[int] = field(default_factory=list)
    record_stash_history: bool = False
    deferred: bool = False
    # Pending [logical, path_reads, path_writes, dummy_reads, buckets_read,
    # buckets_written, bytes_read, bytes_written, stash_peak(max),
    # background_evictions]; only used when ``deferred`` is set.
    _pending: list[int] = field(
        default_factory=lambda: [0] * 10, init=False, repr=False, compare=False
    )

    def record_logical_access(self, count: int = 1) -> None:
        """Register ``count`` logical (application-level) block accesses."""
        if self.deferred:
            self._pending[0] += count
        else:
            self.logical_accesses += count

    def record_path_read(self, num_buckets: int, num_bytes: int, dummy: bool = False) -> None:
        """Register one path read of ``num_buckets`` buckets / ``num_bytes`` bytes."""
        if self.deferred:
            pending = self._pending
            pending[3 if dummy else 1] += 1
            pending[4] += num_buckets
            pending[6] += num_bytes
            return
        if dummy:
            self.dummy_reads += 1
        else:
            self.path_reads += 1
        self.buckets_read += num_buckets
        self.bytes_read += num_bytes

    def record_path_write(self, num_buckets: int, num_bytes: int) -> None:
        """Register one path write-back."""
        if self.deferred:
            pending = self._pending
            pending[2] += 1
            pending[5] += num_buckets
            pending[7] += num_bytes
            return
        self.path_writes += 1
        self.buckets_written += num_buckets
        self.bytes_written += num_bytes

    def record_posmap_path_read(self, num_bytes: int) -> None:
        """Register one recursion-level path read of the position map.

        Recursion traffic is its own category and is recorded live even
        under ``deferred``: the recursive map only runs outside the fused
        trace drivers (they require the dense map), so there is no pending
        buffer for it to share.
        """
        self.posmap_path_reads += 1
        self.posmap_bytes_read += num_bytes

    def record_posmap_path_write(self, num_bytes: int) -> None:
        """Register one recursion-level path write-back of the position map."""
        self.posmap_path_writes += 1
        self.posmap_bytes_written += num_bytes

    def record_background_eviction(self) -> None:
        """Register one background-eviction episode (may contain many dummy reads)."""
        if self.deferred:
            self._pending[9] += 1
        else:
            self.background_evictions += 1

    def observe_stash(self, occupancy: int) -> None:
        """Track stash occupancy, updating the running peak and optional history."""
        if self.deferred:
            if occupancy > self._pending[8]:
                self._pending[8] = occupancy
        elif occupancy > self.stash_peak:
            self.stash_peak = occupancy
        # History keeps the per-event order, so it is never deferred.
        if self.record_stash_history:
            self.stash_history.append(occupancy)

    def add_bulk(
        self,
        logical_accesses: int = 0,
        path_reads: int = 0,
        path_writes: int = 0,
        dummy_reads: int = 0,
        buckets_read: int = 0,
        buckets_written: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        stash_peak: int = 0,
        background_evictions: int = 0,
        posmap_path_reads: int = 0,
        posmap_path_writes: int = 0,
        posmap_bytes_read: int = 0,
        posmap_bytes_written: int = 0,
    ) -> None:
        """Fold a batch of pre-aggregated counts in (fused trace drivers).

        Additive counters sum; ``stash_peak`` max-merges.  The driver
        accumulated these in plain Python ints, so the result is
        bit-identical to having recorded every event live.
        """
        self.logical_accesses += logical_accesses
        self.path_reads += path_reads
        self.path_writes += path_writes
        self.dummy_reads += dummy_reads
        self.buckets_read += buckets_read
        self.buckets_written += buckets_written
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        if stash_peak > self.stash_peak:
            self.stash_peak = stash_peak
        self.background_evictions += background_evictions
        self.posmap_path_reads += posmap_path_reads
        self.posmap_path_writes += posmap_path_writes
        self.posmap_bytes_read += posmap_bytes_read
        self.posmap_bytes_written += posmap_bytes_written

    def flush(self) -> None:
        """Fold any deferred pending counts into the dataclass fields."""
        pending = self._pending
        if not any(pending):
            return
        self.add_bulk(*pending[:8])
        if pending[8] > self.stash_peak:
            self.stash_peak = pending[8]
        self.background_evictions += pending[9]
        self._pending = [0] * 10

    def snapshot(self) -> TrafficSnapshot:
        """Return an immutable snapshot of the current counters."""
        if self.deferred:
            self.flush()
        return TrafficSnapshot(
            logical_accesses=self.logical_accesses,
            path_reads=self.path_reads,
            path_writes=self.path_writes,
            dummy_reads=self.dummy_reads,
            buckets_read=self.buckets_read,
            buckets_written=self.buckets_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            stash_peak=self.stash_peak,
            background_evictions=self.background_evictions,
            posmap_path_reads=self.posmap_path_reads,
            posmap_path_writes=self.posmap_path_writes,
            posmap_bytes_read=self.posmap_bytes_read,
            posmap_bytes_written=self.posmap_bytes_written,
        )

    def reset(self) -> None:
        """Zero every counter (history included)."""
        self.logical_accesses = 0
        self.path_reads = 0
        self.path_writes = 0
        self.dummy_reads = 0
        self.buckets_read = 0
        self.buckets_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.stash_peak = 0
        self.background_evictions = 0
        self.posmap_path_reads = 0
        self.posmap_path_writes = 0
        self.posmap_bytes_read = 0
        self.posmap_bytes_written = 0
        self.stash_history.clear()
        self._pending = [0] * 10
