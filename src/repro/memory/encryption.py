"""Payload encryption for blocks stored on the untrusted server.

The threat model assumes the *contents* of server memory are encrypted and
only the *addresses* leak.  Real deployments would use AES-CTR/GCM; to stay
dependency-free this module implements a counter-mode keystream built from
SHA-256, which is sufficient to demonstrate that (a) the server never holds
plaintext and (b) re-encryption on every write-back changes the ciphertext so
an adversary cannot match blocks across accesses by content.
"""

from __future__ import annotations

import hashlib
import os
import struct


class BlockCipher:
    """Counter-mode keystream cipher keyed per ORAM instance.

    Every encryption uses a fresh nonce, so encrypting the same plaintext
    twice produces different ciphertexts (probabilistic encryption), which is
    required for ORAM write-backs to be unlinkable.
    """

    NONCE_SIZE = 16

    def __init__(self, key: bytes | None = None):
        if key is None:
            key = os.urandom(32)
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)
        self._counter = 0

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` and return ``nonce || ciphertext``."""
        nonce = self._next_nonce()
        return nonce + self._xor_keystream(nonce, bytes(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt data previously produced by :meth:`encrypt`."""
        if len(ciphertext) < self.NONCE_SIZE:
            raise ValueError("ciphertext too short")
        nonce = ciphertext[: self.NONCE_SIZE]
        body = ciphertext[self.NONCE_SIZE :]
        return self._xor_keystream(nonce, body)

    def _next_nonce(self) -> bytes:
        self._counter += 1
        return struct.pack(">QQ", 0, self._counter)

    def _xor_keystream(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray(len(data))
        block_index = 0
        offset = 0
        while offset < len(data):
            stream = hashlib.sha256(
                self._key + nonce + struct.pack(">Q", block_index)
            ).digest()
            chunk = data[offset : offset + len(stream)]
            for i, byte in enumerate(chunk):
                out[offset + i] = byte ^ stream[i]
            offset += len(stream)
            block_index += 1
        return bytes(out)

    @property
    def encryptions_performed(self) -> int:
        """Number of encryption operations performed (one per write-back)."""
        return self._counter
