"""Server-memory substrate: blocks, encryption, timing models and accounting."""

from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.block import Block, DUMMY_BLOCK_ID
from repro.memory.channel import InterconnectModel
from repro.memory.dram import DRAMModel
from repro.memory.encryption import BlockCipher
from repro.memory.timing import TimingModel

__all__ = [
    "Block",
    "DUMMY_BLOCK_ID",
    "BlockCipher",
    "DRAMModel",
    "InterconnectModel",
    "TimingModel",
    "TrafficCounter",
    "TrafficSnapshot",
]
