"""Data blocks stored in the ORAM tree.

A block is the unit of ORAM storage.  In the embedding-table use case one
block holds one embedding row (the paper uses 128-byte rows for DLRM and
4 KiB rows for XLM-R).  The simulator supports two modes:

* *metadata-only* blocks (``payload is None``) for traffic/latency studies,
  where only which blocks move matters; and
* *payload-carrying* blocks, used by the embedding trainer so that data
  integrity through the ORAM can be verified end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Identifier used for dummy blocks that pad buckets on the (simulated) server.
DUMMY_BLOCK_ID = -1


@dataclass
class Block:
    """A single ORAM block.

    Attributes:
        block_id: Logical address of the block (embedding row index).
        leaf: Path (leaf label) the block is currently assigned to.
        payload: Optional payload bytes or array carried by the block.
    """

    block_id: int
    leaf: int
    payload: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.block_id < 0 and self.block_id != DUMMY_BLOCK_ID:
            raise ValueError(f"invalid block id {self.block_id}")
        if self.leaf < 0:
            raise ValueError(f"invalid leaf {self.leaf}")

    @property
    def is_dummy(self) -> bool:
        """Whether this is a padding block with no real data."""
        return self.block_id == DUMMY_BLOCK_ID

    def copy(self) -> "Block":
        """Return a shallow copy (payload is shared, metadata is copied)."""
        payload = self.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        return Block(block_id=self.block_id, leaf=self.leaf, payload=payload)


def make_dummy(leaf: int = 0) -> Block:
    """Create a dummy block used only to pad bucket occupancy accounting."""
    return Block(block_id=DUMMY_BLOCK_ID, leaf=leaf, payload=None)


def payload_nbytes(payload: object, default_block_size: int) -> int:
    """Size in bytes a payload occupies on the server.

    Metadata-only blocks are still transferred at the configured block size;
    numpy payloads report their true size, everything else falls back to
    ``len`` when available.
    """
    if payload is None:
        return default_block_size
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return default_block_size
