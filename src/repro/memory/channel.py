"""Client-server interconnect model (CPU DRAM <-> trainer GPU).

In the paper the trainer GPU requests paths from the CPU server over PCIe.
Each path request pays a fixed round-trip latency plus a transfer time at the
link bandwidth.  The interconnect is what makes extra path fetches expensive,
so it is modelled separately from the server DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class InterconnectModel:
    """Latency/bandwidth parameters of the client-server link.

    Attributes:
        request_latency_us: Fixed round-trip cost of issuing one path request
            (driver + DMA setup), independent of size.
        bandwidth_gib_per_s: Link bandwidth (PCIe 3.0 x16 sustains ~12 GiB/s).
    """

    request_latency_us: float = 8.0
    bandwidth_gib_per_s: float = 12.0

    def __post_init__(self) -> None:
        if self.request_latency_us < 0:
            raise ConfigurationError("request_latency_us must be non-negative")
        if self.bandwidth_gib_per_s <= 0:
            raise ConfigurationError("bandwidth_gib_per_s must be positive")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Link bandwidth in bytes per second."""
        return self.bandwidth_gib_per_s * (1 << 30)

    def transfer_time_s(self, num_requests: int, num_bytes: int) -> float:
        """Time to serve ``num_requests`` requests moving ``num_bytes`` total bytes."""
        if num_requests < 0 or num_bytes < 0:
            raise ValueError("request and byte counts must be non-negative")
        latency = num_requests * self.request_latency_us * 1e-6
        streaming = num_bytes / self.bandwidth_bytes_per_s
        return latency + streaming
