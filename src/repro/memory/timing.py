"""Combined timing model translating ORAM traffic into simulated time.

The paper measures wall-clock access latency on real hardware.  We replace
the testbed with an analytic model: every path read/write is charged

* one interconnect request (latency + transfer of the path's bytes), and
* per-bucket DRAM activations plus the same bytes at DRAM bandwidth, and
* a fixed client-side metadata overhead (position map lookup, stash insert).

Because these terms are linear in the counted events, relative speedups are
determined by the same quantities the paper's speedups depend on (paths
fetched, bytes moved, dummy evictions), which is what the reproduction aims
to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.channel import InterconnectModel
from repro.memory.dram import DRAMModel


@dataclass
class TimingModel:
    """Accumulates simulated time for ORAM server and link activity.

    Attributes:
        dram: Server memory timing parameters.
        interconnect: Client-server link timing parameters.
        client_overhead_us: Fixed client-side bookkeeping cost charged per
            logical ORAM access (position map lookup, stash management).
    """

    dram: DRAMModel = field(default_factory=DRAMModel)
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    client_overhead_us: float = 2.0
    _elapsed_s: float = field(default=0.0, init=False, repr=False)
    _transfer_cache: dict = field(default_factory=dict, init=False, repr=False)

    def charge_path_transfer(self, num_buckets: int, num_bytes: int) -> float:
        """Charge one path read or write and return the time added (seconds).

        Path geometry is fixed per tree, so the per-path delta is memoised;
        millions of identical charges cost one dict lookup each.
        """
        delta = self.path_transfer_delta(num_buckets, num_bytes)
        self._elapsed_s += delta
        return delta

    def path_transfer_delta(self, num_buckets: int, num_bytes: int) -> float:
        """The memoised per-path charge, without charging it.

        Fused trace drivers accumulate elapsed time in a local float (one
        ``+=`` per charge, in the exact order the per-access loop would have
        issued them, so the float total is bit-identical) and install the
        result with :meth:`set_elapsed` when the trace completes.
        """
        delta = self._transfer_cache.get((num_buckets, num_bytes))
        if delta is None:
            delta = self.dram.access_time_s(num_buckets, num_bytes)
            delta += self.interconnect.transfer_time_s(1, num_bytes)
            self._transfer_cache[(num_buckets, num_bytes)] = delta
        return delta

    def charge_client_overhead(self, num_accesses: int = 1) -> float:
        """Charge fixed per-access client bookkeeping time."""
        delta = num_accesses * self.client_overhead_us * 1e-6
        self._elapsed_s += delta
        return delta

    def charge_seconds(self, seconds: float) -> float:
        """Charge an arbitrary amount of simulated time (e.g. compute)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._elapsed_s += seconds
        return seconds

    @property
    def elapsed_s(self) -> float:
        """Total simulated time accumulated so far, in seconds."""
        return self._elapsed_s

    def set_elapsed(self, seconds: float) -> None:
        """Install an externally accumulated elapsed total.

        Used by the fused trace drivers for deferred timing aggregation:
        the driver seeds a local float from :attr:`elapsed_s`, accumulates
        per-charge deltas in the identical order the per-access loop would
        have, and writes the final value back here — one attribute write per
        trace instead of one per charge, with a bit-identical float result.
        """
        self._elapsed_s = seconds

    def reset(self) -> None:
        """Zero the accumulated time (used between experiment phases)."""
        self._elapsed_s = 0.0
