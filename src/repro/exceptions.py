"""Exception hierarchy for the LAORAM reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class UnsupportedEngineError(ConfigurationError):
    """A requested engine variant does not exist for the given family.

    Raised by :func:`repro.experiments.configs.build_engine` when
    ``fast=True`` is requested for a family without a vectorized twin.
    Derives from :class:`ConfigurationError` so existing callers that catch
    configuration problems keep working.
    """


class StashOverflowError(ReproError):
    """The client stash exceeded its hard capacity limit."""


class BlockNotFoundError(ReproError):
    """A requested block id does not exist in the ORAM."""


class IntegrityError(ReproError):
    """Stored data failed an integrity check (decryption or consistency)."""


class PlanExhaustedError(ReproError):
    """A lookahead plan was asked about accesses beyond its window."""


class TraceError(ReproError):
    """An access trace is malformed (wrong dtype, out-of-range index, ...)."""


class ShardExecutionError(ReproError):
    """A shard worker process failed while executing its slice of work.

    Raised in the *parent* by the process-parallel executor when a worker
    reports an exception or dies without reporting one.  Carries enough of
    the worker-side failure to diagnose it without the worker's process:
    the shard, the original exception type name and message, and the
    formatted worker traceback.
    """

    def __init__(
        self,
        shard_id: int,
        original_type: str = "",
        message: str = "",
        worker_traceback: str = "",
    ):
        self.shard_id = shard_id
        self.original_type = original_type
        self.worker_traceback = worker_traceback
        detail = f"shard {shard_id} worker failed"
        if original_type:
            detail += f": {original_type}: {message}"
        elif message:
            detail += f": {message}"
        super().__init__(detail)
