"""In-memory embedding tables (the data the ORAM protects)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


class EmbeddingTable:
    """A dense ``num_rows x dim`` embedding matrix with sparse row access.

    This is the plaintext view of the data; when served through an ORAM the
    rows become block payloads and the table itself lives on the untrusted
    server in encrypted, tree-ordered form.
    """

    def __init__(
        self,
        num_rows: int,
        dim: int,
        scale: float = 0.01,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        if num_rows < 1:
            raise ConfigurationError("num_rows must be >= 1")
        if dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        generator = rng if rng is not None else make_rng(seed)
        self.num_rows = num_rows
        self.dim = dim
        self.weights = (generator.normal(size=(num_rows, dim)) * scale).astype(np.float32)

    # ------------------------------------------------------------------
    def lookup(self, row_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return the embedding vectors for ``row_ids`` (copy, shape ``(n, dim)``)."""
        ids = self._validate_ids(row_ids)
        return self.weights[ids].copy()

    def row(self, row_id: int) -> np.ndarray:
        """Return a copy of one embedding row."""
        return self.lookup([row_id])[0]

    def set_rows(self, row_ids: Sequence[int] | np.ndarray, values: np.ndarray) -> None:
        """Overwrite the given rows with ``values`` (shape ``(n, dim)``)."""
        ids = self._validate_ids(row_ids)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (ids.size, self.dim):
            raise ConfigurationError(
                f"values shape {values.shape} does not match ({ids.size}, {self.dim})"
            )
        self.weights[ids] = values

    def apply_gradients(
        self,
        row_ids: Sequence[int] | np.ndarray,
        gradients: np.ndarray,
        learning_rate: float,
    ) -> None:
        """SGD-style in-place update ``w[id] -= lr * grad`` with duplicate handling."""
        ids = self._validate_ids(row_ids)
        gradients = np.asarray(gradients, dtype=np.float32)
        if gradients.shape != (ids.size, self.dim):
            raise ConfigurationError("gradients shape mismatch")
        np.subtract.at(self.weights, ids, learning_rate * gradients)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the table in bytes."""
        return int(self.weights.nbytes)

    @property
    def row_nbytes(self) -> int:
        """Size of one row in bytes (the ORAM block payload size)."""
        return int(self.weights[0].nbytes)

    def _validate_ids(self, row_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ConfigurationError("row_ids must be one-dimensional")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise ConfigurationError("row id outside table")
        return ids
