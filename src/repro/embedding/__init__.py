"""Embedding-table training substrate: tables, optimisers, DLRM and XLM-R models."""

from repro.embedding.dlrm import DLRMModel
from repro.embedding.optim import SparseAdagrad, SparseSGD
from repro.embedding.secure_loader import SecureEmbeddingStore
from repro.embedding.table import EmbeddingTable
from repro.embedding.trainer import ObliviousEmbeddingTrainer, TrainingReport
from repro.embedding.xlmr import XLMRClassifier

__all__ = [
    "EmbeddingTable",
    "SparseSGD",
    "SparseAdagrad",
    "SecureEmbeddingStore",
    "DLRMModel",
    "XLMRClassifier",
    "ObliviousEmbeddingTrainer",
    "TrainingReport",
]
