"""A compact DLRM-style recommendation model with manual numpy gradients.

This is the training substrate for the paper's recommendation workload: a
bottom MLP over dense features, embedding lookups for categorical features,
pairwise dot-product feature interactions, and a top MLP producing a
click-through probability.  Only the *largest* embedding table is interesting
from the privacy standpoint (it is the one served through the ORAM); the
model therefore separates "protected" lookups — supplied by the caller, who
fetched them through a :class:`~repro.embedding.secure_loader.SecureEmbeddingStore`
— from the small tables it keeps in plain client memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.embedding.table import EmbeddingTable
from repro.utils.rng import make_rng


@dataclass
class DLRMForwardCache:
    """Intermediate activations needed by the backward pass."""

    dense: np.ndarray
    bottom_hidden: np.ndarray
    bottom_out: np.ndarray
    feature_vectors: np.ndarray
    interactions: np.ndarray
    top_input: np.ndarray
    top_hidden: np.ndarray
    logit: float
    probability: float


@dataclass
class DLRMGradients:
    """Gradients of one sample: model parameters plus protected-row gradient."""

    protected_row_grad: np.ndarray
    loss: float


class DLRMModel:
    """Minimal DLRM: bottom MLP, dot interactions, top MLP, BCE loss."""

    def __init__(
        self,
        num_dense_features: int,
        small_table_sizes: tuple[int, ...],
        embedding_dim: int = 16,
        bottom_hidden_dim: int = 32,
        top_hidden_dim: int = 32,
        learning_rate: float = 0.05,
        seed: int = 0,
    ):
        if num_dense_features < 1:
            raise ConfigurationError("num_dense_features must be >= 1")
        if embedding_dim < 1:
            raise ConfigurationError("embedding_dim must be >= 1")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        rng = make_rng(seed)
        self.embedding_dim = embedding_dim
        self.learning_rate = learning_rate
        self.small_tables = [
            EmbeddingTable(size, embedding_dim, rng=rng) for size in small_table_sizes
        ]
        scale_bottom = 1.0 / np.sqrt(num_dense_features)
        scale_top = 1.0 / np.sqrt(embedding_dim)
        self.w_bottom1 = (rng.normal(size=(num_dense_features, bottom_hidden_dim)) * scale_bottom).astype(np.float32)
        self.b_bottom1 = np.zeros(bottom_hidden_dim, dtype=np.float32)
        self.w_bottom2 = (rng.normal(size=(bottom_hidden_dim, embedding_dim)) * 0.1).astype(np.float32)
        self.b_bottom2 = np.zeros(embedding_dim, dtype=np.float32)
        num_features = 1 + len(small_table_sizes) + 1  # bottom out + small + protected
        num_interactions = num_features * (num_features - 1) // 2
        top_input_dim = embedding_dim + num_interactions
        self.w_top1 = (rng.normal(size=(top_input_dim, top_hidden_dim)) * scale_top).astype(np.float32)
        self.b_top1 = np.zeros(top_hidden_dim, dtype=np.float32)
        self.w_top2 = (rng.normal(size=(top_hidden_dim, 1)) * 0.1).astype(np.float32)
        self.b_top2 = np.zeros(1, dtype=np.float32)
        self._num_features = num_features

    # ------------------------------------------------------------------
    def forward(
        self,
        dense: np.ndarray,
        small_ids: np.ndarray,
        protected_row: np.ndarray,
    ) -> DLRMForwardCache:
        """Forward pass for one sample.

        Args:
            dense: Dense feature vector.
            small_ids: One categorical id per small (unprotected) table.
            protected_row: Embedding vector of the protected table's id,
                fetched obliviously by the caller.
        """
        dense = np.asarray(dense, dtype=np.float32)
        hidden = np.maximum(dense @ self.w_bottom1 + self.b_bottom1, 0.0)
        bottom_out = hidden @ self.w_bottom2 + self.b_bottom2

        vectors = [bottom_out]
        for table, row_id in zip(self.small_tables, small_ids):
            vectors.append(table.row(int(row_id)))
        vectors.append(np.asarray(protected_row, dtype=np.float32))
        feature_vectors = np.stack(vectors)  # (F, d)

        gram = feature_vectors @ feature_vectors.T
        iu = np.triu_indices(self._num_features, k=1)
        interactions = gram[iu]

        top_input = np.concatenate([bottom_out, interactions])
        top_hidden = np.maximum(top_input @ self.w_top1 + self.b_top1, 0.0)
        logit = float((top_hidden @ self.w_top2)[0] + self.b_top2[0])
        probability = 1.0 / (1.0 + np.exp(-logit))
        return DLRMForwardCache(
            dense=dense,
            bottom_hidden=hidden,
            bottom_out=bottom_out,
            feature_vectors=feature_vectors,
            interactions=interactions,
            top_input=top_input,
            top_hidden=top_hidden,
            logit=logit,
            probability=probability,
        )

    def backward(
        self,
        cache: DLRMForwardCache,
        small_ids: np.ndarray,
        label: int,
        update: bool = True,
    ) -> DLRMGradients:
        """Backward pass (and optional in-place SGD step) for one sample.

        Returns the loss and the gradient with respect to the protected
        embedding row, which the caller writes back through the ORAM.
        """
        label = float(label)
        prob = cache.probability
        eps = 1e-7
        loss = -(label * np.log(prob + eps) + (1.0 - label) * np.log(1.0 - prob + eps))
        dlogit = np.float32(prob - label)

        # Top MLP.
        dw_top2 = np.outer(cache.top_hidden, dlogit).astype(np.float32)
        db_top2 = np.array([dlogit], dtype=np.float32)
        dtop_hidden = (self.w_top2[:, 0] * dlogit).astype(np.float32)
        dtop_hidden_pre = dtop_hidden * (cache.top_hidden > 0)
        dw_top1 = np.outer(cache.top_input, dtop_hidden_pre).astype(np.float32)
        db_top1 = dtop_hidden_pre
        dtop_input = (self.w_top1 @ dtop_hidden_pre).astype(np.float32)

        d = self.embedding_dim
        dbottom_out = dtop_input[:d].copy()
        dinteractions = dtop_input[d:]

        # Interactions: d(v_i . v_j)/dv_i = v_j.
        dfeatures = np.zeros_like(cache.feature_vectors)
        iu = np.triu_indices(self._num_features, k=1)
        for grad, i, j in zip(dinteractions, iu[0], iu[1]):
            dfeatures[i] += grad * cache.feature_vectors[j]
            dfeatures[j] += grad * cache.feature_vectors[i]
        dbottom_out += dfeatures[0]
        dsmall = dfeatures[1:-1]
        dprotected = dfeatures[-1].astype(np.float32)

        # Bottom MLP.
        dw_bottom2 = np.outer(cache.bottom_hidden, dbottom_out).astype(np.float32)
        db_bottom2 = dbottom_out
        dhidden = (self.w_bottom2 @ dbottom_out).astype(np.float32)
        dhidden_pre = dhidden * (cache.bottom_hidden > 0)
        dw_bottom1 = np.outer(cache.dense, dhidden_pre).astype(np.float32)
        db_bottom1 = dhidden_pre

        if update:
            lr = self.learning_rate
            self.w_top2 -= lr * dw_top2
            self.b_top2 -= lr * db_top2
            self.w_top1 -= lr * dw_top1
            self.b_top1 -= lr * db_top1
            self.w_bottom2 -= lr * dw_bottom2
            self.b_bottom2 -= lr * db_bottom2
            self.w_bottom1 -= lr * dw_bottom1
            self.b_bottom1 -= lr * db_bottom1
            for table, row_id, grad in zip(self.small_tables, small_ids, dsmall):
                table.apply_gradients([int(row_id)], grad[None, :], lr)

        return DLRMGradients(protected_row_grad=dprotected, loss=float(loss))

    # ------------------------------------------------------------------
    def predict_proba(
        self, dense: np.ndarray, small_ids: np.ndarray, protected_row: np.ndarray
    ) -> float:
        """Click probability for one sample."""
        return self.forward(dense, small_ids, protected_row).probability
