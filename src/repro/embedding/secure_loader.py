"""Bridges embedding rows and ORAM blocks.

The :class:`SecureEmbeddingStore` owns the protected embedding table: rows are
loaded into the ORAM as block payloads at setup, fetched through oblivious
accesses during training, and written back after gradient updates.  The same
store works over any :class:`~repro.oram.base.ObliviousMemory` implementation
(insecure baseline, PathORAM, PrORAM, RingORAM, LAORAM), which is what lets
the examples compare engines end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.oram.base import AccessOp, ObliviousMemory
from repro.embedding.table import EmbeddingTable


class SecureEmbeddingStore:
    """Embedding table whose rows live inside an oblivious memory engine.

    ``batch_size`` sets the batched-access chunk for engines that support
    the batched protocol (``SUPPORTS_BATCHED_ACCESS``): each ``fetch_rows``
    / ``update_rows`` call then amortises path reads and write-backs across
    up to ``batch_size`` rows.  Engines without the protocol (LAORAM bins,
    RingORAM, PrORAM, the insecure baseline) ignore it.
    """

    def __init__(
        self,
        memory: ObliviousMemory,
        table: EmbeddingTable,
        batch_size: int | None = None,
    ):
        if memory.num_blocks < table.num_rows:
            raise ConfigurationError(
                f"ORAM holds {memory.num_blocks} blocks but the table has "
                f"{table.num_rows} rows"
            )
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.memory = memory
        self.batch_size = (
            batch_size
            if getattr(memory, "SUPPORTS_BATCHED_ACCESS", False)
            else None
        )
        self.dim = table.dim
        self.num_rows = table.num_rows
        self.row_nbytes = table.row_nbytes
        payloads = {row: table.weights[row].copy() for row in range(table.num_rows)}
        # Both PathORAM-family engines and the insecure baseline expose
        # load_payloads as a trusted-setup bulk load.
        memory.load_payloads(payloads)

    # ------------------------------------------------------------------
    def fetch_rows(self, row_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Obliviously fetch the embedding vectors for ``row_ids``."""
        ids = self._validate(row_ids)
        if self.batch_size is not None:
            payloads = self.memory.access_many(ids.tolist(), batch_size=self.batch_size)
        else:
            payloads = self.memory.access_many(ids.tolist())
        rows = np.zeros((ids.size, self.dim), dtype=np.float32)
        for index, payload in enumerate(payloads):
            if payload is not None:
                rows[index] = payload
        return rows

    def update_rows(self, row_ids: Sequence[int] | np.ndarray, values: np.ndarray) -> None:
        """Obliviously write updated embedding vectors back.

        Engines that support batched writes (the LAORAM client's
        ``write_many``) receive the whole batch at once so that rows sharing
        a path are written back together; other engines take one write
        access per row.  Duplicate ids within a batch keep their last value,
        mirroring a sequential write stream.
        """
        ids = self._validate(row_ids)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (ids.size, self.dim):
            raise ConfigurationError("values shape mismatch")
        write_many = getattr(self.memory, "write_many", None)
        if callable(write_many):
            if self.batch_size is not None:
                write_many(
                    ids.tolist(),
                    [value.copy() for value in values],
                    batch_size=self.batch_size,
                )
            else:
                write_many(ids.tolist(), [value.copy() for value in values])
            return
        for row_id, value in zip(ids.tolist(), values):
            self.memory.access(int(row_id), AccessOp.WRITE, new_payload=value.copy())

    def materialize(self) -> EmbeddingTable:
        """Read every row back out (test helper verifying data integrity)."""
        table = EmbeddingTable(self.num_rows, self.dim, seed=0)
        rows = self.fetch_rows(np.arange(self.num_rows))
        table.weights[:] = rows
        return table

    # ------------------------------------------------------------------
    def _validate(self, row_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ConfigurationError("row_ids must be one-dimensional")
        if ids.size == 0:
            raise ConfigurationError("row_ids must be non-empty")
        if ids.min() < 0 or ids.max() >= self.num_rows:
            raise ConfigurationError("row id outside table")
        return ids
