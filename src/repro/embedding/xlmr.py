"""XLM-R-style classifier: a token embedding table feeding a linear head.

The paper's NLP workload trains the XLM-R embedding table on the XNLI task.
For the reproduction the interesting component is the embedding table itself
(262,144 rows of 4 KiB in the paper); the transformer layers above it are
irrelevant to the memory access pattern, so this model uses mean pooling over
token embeddings followed by a softmax classifier.  Token embeddings are
supplied by the caller (fetched through the ORAM) and their gradients are
returned for oblivious write-back, exactly like the DLRM model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


@dataclass
class XLMRGradients:
    """Per-sample loss and gradient with respect to each token embedding."""

    token_grads: np.ndarray
    loss: float
    correct: bool


class XLMRClassifier:
    """Mean-pooled embedding classifier with a manual softmax/CE backward pass."""

    def __init__(
        self,
        embedding_dim: int,
        num_classes: int = 3,
        learning_rate: float = 0.1,
        seed: int = 0,
    ):
        if embedding_dim < 1:
            raise ConfigurationError("embedding_dim must be >= 1")
        if num_classes < 2:
            raise ConfigurationError("num_classes must be >= 2")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        rng = make_rng(seed)
        self.embedding_dim = embedding_dim
        self.num_classes = num_classes
        self.learning_rate = learning_rate
        self.weights = (rng.normal(size=(embedding_dim, num_classes)) / np.sqrt(embedding_dim)).astype(np.float32)
        self.bias = np.zeros(num_classes, dtype=np.float32)

    # ------------------------------------------------------------------
    def forward(self, token_embeddings: np.ndarray) -> np.ndarray:
        """Class probabilities for one token sequence (``(seq, dim)`` input)."""
        token_embeddings = np.asarray(token_embeddings, dtype=np.float32)
        if token_embeddings.ndim != 2 or token_embeddings.shape[1] != self.embedding_dim:
            raise ConfigurationError("token_embeddings must have shape (seq, dim)")
        pooled = token_embeddings.mean(axis=0)
        logits = pooled @ self.weights + self.bias
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def train_step(
        self, token_embeddings: np.ndarray, label: int, update: bool = True
    ) -> XLMRGradients:
        """One SGD step; returns the gradient for each token embedding row."""
        token_embeddings = np.asarray(token_embeddings, dtype=np.float32)
        probabilities = self.forward(token_embeddings)
        if not 0 <= label < self.num_classes:
            raise ConfigurationError("label outside class range")
        loss = float(-np.log(probabilities[label] + 1e-7))
        correct = bool(int(np.argmax(probabilities)) == label)

        dlogits = probabilities.copy()
        dlogits[label] -= 1.0
        pooled = token_embeddings.mean(axis=0)
        dw = np.outer(pooled, dlogits).astype(np.float32)
        db = dlogits.astype(np.float32)
        dpooled = (self.weights @ dlogits).astype(np.float32)
        seq_len = token_embeddings.shape[0]
        token_grads = np.tile(dpooled / seq_len, (seq_len, 1)).astype(np.float32)

        if update:
            self.weights -= self.learning_rate * dw
            self.bias -= self.learning_rate * db
        return XLMRGradients(token_grads=token_grads, loss=loss, correct=correct)

    def predict(self, token_embeddings: np.ndarray) -> int:
        """Most likely class for one token sequence."""
        return int(np.argmax(self.forward(token_embeddings)))
