"""Sparse optimisers for embedding rows.

Embedding training only touches the rows accessed in the current batch, so
optimiser state and updates are sparse.  Both optimisers operate on gradient
arrays aligned with an explicit list of row ids, exactly the quantities the
oblivious trainer moves through the ORAM.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class SparseSGD:
    """Plain stochastic gradient descent on embedding rows."""

    def __init__(self, learning_rate: float = 0.05):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def update(self, rows: np.ndarray, gradients: np.ndarray, row_ids=None) -> np.ndarray:
        """Return updated row values given current ``rows`` and ``gradients``."""
        rows = np.asarray(rows, dtype=np.float32)
        gradients = np.asarray(gradients, dtype=np.float32)
        if rows.shape != gradients.shape:
            raise ConfigurationError("rows and gradients must have the same shape")
        return rows - self.learning_rate * gradients


class SparseAdagrad:
    """Adagrad with per-row accumulators, the optimiser DLRM uses for embeddings."""

    def __init__(self, learning_rate: float = 0.05, eps: float = 1e-8):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.learning_rate = learning_rate
        self.eps = eps
        self._accumulators: dict[int, np.ndarray] = {}

    def update(self, rows: np.ndarray, gradients: np.ndarray, row_ids=None) -> np.ndarray:
        """Return updated rows; ``row_ids`` keys the per-row accumulator state."""
        rows = np.asarray(rows, dtype=np.float32)
        gradients = np.asarray(gradients, dtype=np.float32)
        if rows.shape != gradients.shape:
            raise ConfigurationError("rows and gradients must have the same shape")
        if row_ids is None:
            raise ConfigurationError("SparseAdagrad requires row_ids")
        row_ids = list(int(r) for r in row_ids)
        if len(row_ids) != rows.shape[0]:
            raise ConfigurationError("row_ids length must match rows")
        updated = rows.copy()
        for index, row_id in enumerate(row_ids):
            acc = self._accumulators.get(row_id)
            if acc is None:
                acc = np.zeros(rows.shape[1], dtype=np.float32)
            acc = acc + gradients[index] ** 2
            self._accumulators[row_id] = acc
            updated[index] = rows[index] - self.learning_rate * gradients[index] / (
                np.sqrt(acc) + self.eps
            )
        return updated

    @property
    def tracked_rows(self) -> int:
        """Number of rows with accumulated optimiser state."""
        return len(self._accumulators)
