"""Oblivious embedding trainers: DLRM and XLM-R training over an ORAM store.

The trainers tie the whole system together: they read training samples from
a synthetic dataset, fetch protected embedding rows through a
:class:`~repro.embedding.secure_loader.SecureEmbeddingStore` (i.e. through an
ORAM engine), run the model forward/backward, and write the updated rows back
obliviously.  They also expose the per-epoch access trace, which is exactly
what the LAORAM preprocessor consumes for its lookahead plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.laoram import LAORAMClient
from repro.datasets.kaggle import SyntheticCriteoDataset
from repro.datasets.xnli import SyntheticXNLIDataset
from repro.embedding.dlrm import DLRMModel
from repro.embedding.optim import SparseSGD
from repro.embedding.secure_loader import SecureEmbeddingStore
from repro.embedding.xlmr import XLMRClassifier
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TrainingReport:
    """Summary of one training epoch through the oblivious store."""

    mean_loss: float
    accuracy: float
    embedding_accesses: int
    path_reads: int
    dummy_reads: int
    simulated_time_s: float


class ObliviousEmbeddingTrainer:
    """Trains a model whose largest embedding table is served by an ORAM."""

    def __init__(self, store: SecureEmbeddingStore, optimizer: SparseSGD | None = None):
        self.store = store
        self.optimizer = optimizer if optimizer is not None else SparseSGD()

    # ------------------------------------------------------------------
    def train_dlrm_epoch(
        self,
        model: DLRMModel,
        dataset: SyntheticCriteoDataset,
        max_samples: int | None = None,
        batch_size: int = 16,
    ) -> TrainingReport:
        """One epoch of DLRM training with the largest table behind the ORAM.

        The protected rows of a whole minibatch are fetched in one request
        (as the trainer GPU caches the batch's entries in its HBM), which is
        exactly the access pattern that lets LAORAM serve a batch from a few
        coalesced paths.
        """
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        protected_index = dataset.largest_table_index
        num_samples = dataset.num_samples if max_samples is None else min(
            max_samples, dataset.num_samples
        )
        if num_samples < 1:
            raise ConfigurationError("need at least one training sample")
        # The preprocessor sees the access stream the loop below will really
        # generate: each minibatch fetches its protected rows and then writes
        # them back, so every batch's ids appear twice in a row.
        trace_parts = []
        for start in range(0, num_samples, batch_size):
            stop = min(start + batch_size, num_samples)
            batch_column = dataset.categorical[start:stop, protected_index]
            trace_parts.extend([batch_column, batch_column])
        self._maybe_install_plan(np.concatenate(trace_parts))

        losses = []
        correct = 0
        for start in range(0, num_samples, batch_size):
            stop = min(start + batch_size, num_samples)
            batch_ids = [
                int(dataset.categorical[index, protected_index])
                for index in range(start, stop)
            ]
            rows = self.store.fetch_rows(batch_ids)
            updated_rows = rows.copy()
            for offset, index in enumerate(range(start, stop)):
                sample = dataset.sample(index)
                small_ids = np.delete(sample.categorical, protected_index)
                cache = model.forward(sample.dense, small_ids, rows[offset])
                grads = model.backward(cache, small_ids, sample.label)
                updated_rows[offset] = self.optimizer.update(
                    rows[offset][None, :],
                    grads.protected_row_grad[None, :],
                    [batch_ids[offset]],
                )[0]
                losses.append(grads.loss)
                if (cache.probability >= 0.5) == bool(sample.label):
                    correct += 1
            self.store.update_rows(batch_ids, updated_rows)
        return self._report(losses, correct, num_samples)

    def train_xlmr_epoch(
        self,
        model: XLMRClassifier,
        dataset: SyntheticXNLIDataset,
        max_samples: int | None = None,
    ) -> TrainingReport:
        """One epoch of XLM-R-style training with token embeddings behind the ORAM."""
        num_samples = dataset.num_samples if max_samples is None else min(
            max_samples, dataset.num_samples
        )
        if num_samples < 1:
            raise ConfigurationError("need at least one training sample")
        # Each sample fetches its token rows and writes them back, so the
        # preprocessor's trace repeats every sample's tokens twice.
        trace_parts = []
        for index in range(num_samples):
            tokens = dataset.tokens[index]
            trace_parts.extend([tokens, tokens])
        self._maybe_install_plan(np.concatenate(trace_parts))

        losses = []
        correct = 0
        for index in range(num_samples):
            sample = dataset.sample(index)
            token_ids = sample.tokens
            rows = self.store.fetch_rows(token_ids)
            result = model.train_step(rows, sample.label)
            updated = self.optimizer.update(rows, result.token_grads, token_ids.tolist())
            self.store.update_rows(token_ids, updated)
            losses.append(result.loss)
            correct += int(result.correct)
        return self._report(losses, correct, num_samples)

    # ------------------------------------------------------------------
    def _maybe_install_plan(self, trace: np.ndarray) -> None:
        """Give a LAORAM client the epoch's access trace ahead of time."""
        memory = self.store.memory
        if isinstance(memory, LAORAMClient):
            plan = memory.preprocess(trace, start_index=memory.trace_cursor)
            if memory.statistics.logical_accesses == 0:
                memory.apply_initial_placement(plan)

    def _report(self, losses: list[float], correct: int, num_samples: int) -> TrainingReport:
        stats = self.store.memory.statistics
        return TrainingReport(
            mean_loss=float(np.mean(losses)),
            accuracy=correct / num_samples,
            embedding_accesses=stats.logical_accesses,
            path_reads=stats.path_reads,
            dummy_reads=stats.dummy_reads,
            simulated_time_s=self.store.memory.simulated_time_s,
        )
