"""Shared utilities: tree index math, RNG helpers, statistics and units."""

from repro.utils.bits import (
    common_level,
    is_power_of_two,
    node_index,
    nodes_at_level,
    num_leaves,
    num_nodes,
    path_node_indices,
    required_depth,
)
from repro.utils.rng import SeedSequenceFactory, make_rng, spawn_rngs
from repro.utils.stats import (
    chi_square_uniformity,
    empirical_entropy,
    mutual_information,
    normalized_histogram,
)
from repro.utils.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
)

__all__ = [
    "common_level",
    "is_power_of_two",
    "node_index",
    "nodes_at_level",
    "num_leaves",
    "num_nodes",
    "path_node_indices",
    "required_depth",
    "SeedSequenceFactory",
    "make_rng",
    "spawn_rngs",
    "chi_square_uniformity",
    "empirical_entropy",
    "mutual_information",
    "normalized_histogram",
    "GiB",
    "KiB",
    "MiB",
    "format_bytes",
    "format_duration",
]
