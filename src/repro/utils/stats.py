"""Statistical helpers used by the security analysis and dataset diagnostics.

The obliviousness arguments in the paper (Section VI) reduce to "the observed
path stream is uniform over the leaves and independent of the data blocks".
The functions here implement the corresponding empirical checks: chi-square
uniformity, entropy and mutual information between the true access stream and
what an adversary observes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square goodness-of-fit test against uniformity."""

    statistic: float
    degrees_of_freedom: int
    p_value: float

    def rejects_uniformity(self, alpha: float = 0.01) -> bool:
        """Whether the test rejects the uniform hypothesis at level ``alpha``."""
        return self.p_value < alpha


def chi_square_uniformity(
    observations: Sequence[int] | np.ndarray, num_categories: int
) -> ChiSquareResult:
    """Chi-square test that ``observations`` are uniform over ``num_categories``.

    Categories are the integers ``0 .. num_categories - 1``.  The p-value is
    computed with the regularised upper incomplete gamma function (via
    :func:`math.erfc`-free survival approximation implemented below), so the
    function has no SciPy dependency in the core library.
    """
    obs = np.asarray(observations, dtype=np.int64)
    if obs.size == 0:
        raise ValueError("observations must be non-empty")
    if num_categories < 2:
        raise ValueError("num_categories must be >= 2")
    if obs.min() < 0 or obs.max() >= num_categories:
        raise ValueError("observations outside category range")
    counts = np.bincount(obs, minlength=num_categories).astype(np.float64)
    expected = obs.size / num_categories
    statistic = float(((counts - expected) ** 2 / expected).sum())
    dof = num_categories - 1
    p_value = chi_square_survival(statistic, dof)
    return ChiSquareResult(statistic=statistic, degrees_of_freedom=dof, p_value=p_value)


def chi_square_survival(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution, ``P(X >= statistic)``.

    Uses the Wilson-Hilferty normal approximation, which is accurate to a few
    decimal places for ``dof >= 3`` and entirely adequate for pass/fail
    uniformity checks.
    """
    if statistic < 0:
        raise ValueError("statistic must be non-negative")
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic == 0.0:
        return 1.0
    # Wilson-Hilferty: (X/k)^(1/3) is approximately normal.
    z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
        2.0 / (9.0 * dof)
    )
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def normalized_histogram(values: Sequence[int] | np.ndarray, num_bins: int) -> np.ndarray:
    """Empirical probability mass function of integer ``values`` over ``num_bins``."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(num_bins, dtype=np.float64)
    counts = np.bincount(arr, minlength=num_bins).astype(np.float64)
    return counts / counts.sum()


def empirical_entropy(values: Sequence[int] | np.ndarray) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``."""
    counter = Counter(int(v) for v in values)
    total = sum(counter.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counter.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def mutual_information(
    xs: Sequence[int] | np.ndarray, ys: Sequence[int] | np.ndarray
) -> float:
    """Mutual information (bits) between two equally long integer sequences.

    Used to quantify how much an adversary's observation ``ys`` reveals about
    the true access stream ``xs``: an oblivious scheme should drive this to
    (nearly) zero while the insecure baseline leaks the full entropy of ``xs``.
    """
    xs_arr = [int(v) for v in xs]
    ys_arr = [int(v) for v in ys]
    if len(xs_arr) != len(ys_arr):
        raise ValueError("sequences must have equal length")
    if not xs_arr:
        return 0.0
    joint = Counter(zip(xs_arr, ys_arr))
    px = Counter(xs_arr)
    py = Counter(ys_arr)
    total = len(xs_arr)
    info = 0.0
    for (x, y), count in joint.items():
        p_xy = count / total
        p_x = px[x] / total
        p_y = py[y] / total
        info += p_xy * math.log2(p_xy / (p_x * p_y))
    return max(0.0, info)


def gini_coefficient(values: Sequence[float] | np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, 1 = concentrated).

    Handy for characterising the skew of access traces (Fig. 2 shows Kaggle's
    hot band; Zipfian XNLI traces have a much larger Gini).
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    total = arr.sum()
    if total == 0:
        return 0.0
    index = np.arange(1, arr.size + 1)
    return float((2.0 * (index * arr).sum()) / (arr.size * total) - (arr.size + 1.0) / arr.size)
