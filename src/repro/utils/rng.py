"""Deterministic random number generation helpers.

Every stochastic component of the simulator (path assignment, dataset
generation, model initialisation) takes an explicit seed or an
``numpy.random.Generator``.  These helpers centralise how generators are
constructed so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields a non-deterministic generator, which is only appropriate
    for interactive exploration; experiments should always pass a seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class SeedSequenceFactory:
    """Hands out independent child generators derived from a root seed.

    The factory remembers how many children it has produced so components
    created later in a run still receive distinct streams.
    """

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._spawned = 0

    def generator(self) -> np.random.Generator:
        """Return the next independent generator."""
        child = self._root.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def generators(self, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators."""
        children = self._root.spawn(count)
        self._spawned += count
        return [np.random.default_rng(child) for child in children]

    @property
    def spawned(self) -> int:
        """Number of generators handed out so far."""
        return self._spawned


def choose_uniform_leaf(rng: np.random.Generator, num_leaves: int) -> int:
    """Pick a leaf label uniformly from ``[0, num_leaves)``."""
    return int(rng.integers(0, num_leaves))


def permutation_stream(
    rng: np.random.Generator, size: int, epochs: int
) -> Iterable[np.ndarray]:
    """Yield ``epochs`` fresh permutations of ``range(size)``."""
    for _ in range(epochs):
        yield rng.permutation(size)
