"""Index arithmetic for complete binary trees used by Path-ORAM style storage.

The ORAM tree has levels ``0 .. depth`` where level 0 is the root and level
``depth`` holds the leaves.  There are ``2**depth`` leaves, labelled
``0 .. 2**depth - 1`` from left to right; a *path* is identified by its leaf
label.  Nodes are stored in a flat array in breadth-first order, so the node
at ``level`` on the path to ``leaf`` has index::

    (2**level - 1) + (leaf >> (depth - level))

These helpers are deliberately free functions (no class state) because they
are called in the inner loop of every ORAM access.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def required_depth(num_blocks: int) -> int:
    """Return the tree depth (leaf level) used for ``num_blocks`` blocks.

    Following the original PathORAM construction the tree has
    ``2**ceil(log2(num_blocks))`` leaves, i.e. at least one leaf per block.
    A single block still gets a tree of depth 1 so that there are at least
    two distinct paths to randomise over.
    """
    if num_blocks <= 0:
        raise ConfigurationError("num_blocks must be positive, got %r" % (num_blocks,))
    depth = max(1, (num_blocks - 1).bit_length())
    return depth


def num_leaves(depth: int) -> int:
    """Number of leaves of a tree with leaf level ``depth``."""
    _check_depth(depth)
    return 1 << depth


def num_nodes(depth: int) -> int:
    """Total number of nodes (buckets) of a tree with leaf level ``depth``."""
    _check_depth(depth)
    return (1 << (depth + 1)) - 1


def nodes_at_level(level: int) -> int:
    """Number of nodes at ``level`` (root is level 0)."""
    if level < 0:
        raise ConfigurationError("level must be non-negative, got %r" % (level,))
    return 1 << level


def node_index(level: int, leaf: int, depth: int) -> int:
    """Breadth-first index of the node at ``level`` on the path to ``leaf``."""
    _check_depth(depth)
    if not 0 <= level <= depth:
        raise ConfigurationError(f"level {level} outside [0, {depth}]")
    if not 0 <= leaf < (1 << depth):
        raise ConfigurationError(f"leaf {leaf} outside [0, {1 << depth})")
    return ((1 << level) - 1) + (leaf >> (depth - level))


def path_node_indices(leaf: int, depth: int) -> list[int]:
    """Breadth-first indices of every node from the root down to ``leaf``."""
    return [node_index(level, leaf, depth) for level in range(depth + 1)]


def common_level(leaf_a: int, leaf_b: int, depth: int) -> int:
    """Deepest level shared by the paths to ``leaf_a`` and ``leaf_b``.

    Two identical leaves share the whole path (returns ``depth``); two leaves
    that diverge immediately below the root share only level 0.
    """
    _check_depth(depth)
    for leaf in (leaf_a, leaf_b):
        if not 0 <= leaf < (1 << depth):
            raise ConfigurationError(f"leaf {leaf} outside [0, {1 << depth})")
    xor = leaf_a ^ leaf_b
    if xor == 0:
        return depth
    return depth - xor.bit_length()


def _check_depth(depth: int) -> None:
    if depth < 1:
        raise ConfigurationError("tree depth must be >= 1, got %r" % (depth,))
