"""Byte/time unit constants and human readable formatting."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

_BYTE_UNITS = (
    (TiB, "TiB"),
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human readable string (e.g. ``"16.0 GiB"``)."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    for factor, suffix in _BYTE_UNITS:
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f} {suffix}"
    return f"{int(num_bytes)} B"


def format_duration(seconds: float) -> str:
    """Render a duration as a short human readable string."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.2f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.2f} us"


def format_ratio(value: float) -> str:
    """Render a speedup/reduction factor, e.g. ``"5.02x"``."""
    return f"{value:.2f}x"
