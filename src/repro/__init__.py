"""LAORAM reproduction: look-ahead ORAM for training large embedding tables.

This package reproduces the system described in *"LAORAM: A Look Ahead ORAM
Architecture for Training Large Embedding Tables"* (ISCA 2023) as a pure
Python simulator:

* :mod:`repro.oram` — PathORAM, PrORAM, RingORAM and an insecure baseline;
* :mod:`repro.core` — the LAORAM preprocessor, lookahead plan and client,
  plus the fat-tree storage policy;
* :mod:`repro.datasets` — Permutation, Gaussian, synthetic Kaggle and XNLI
  workload generators;
* :mod:`repro.embedding` — embedding tables, DLRM and XLM-R style models and
  an oblivious trainer;
* :mod:`repro.attacks` — the curious-OS adversary and leakage analysis;
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import LAORAMClient, LAORAMConfig, ORAMConfig
    from repro.datasets import SyntheticKaggleTrace

    config = LAORAMConfig(
        oram=ORAMConfig(num_blocks=4096, fat_tree=True), superblock_size=4
    )
    client = LAORAMClient(config)
    trace = SyntheticKaggleTrace(num_blocks=4096).generate(10_000)
    client.run_trace(trace.addresses)
    print(client.statistics.paths_per_access)
"""

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.core.preprocessor import Preprocessor
from repro.core.superblock import LookaheadPlan, SuperblockBin
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import FatTreePolicy, ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import PrORAM, SuperblockMode
from repro.oram.ring_oram import RingORAM

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AccessOp",
    "ObliviousMemory",
    "ORAMConfig",
    "FatTreePolicy",
    "EvictionPolicy",
    "PathORAM",
    "PrORAM",
    "SuperblockMode",
    "RingORAM",
    "InsecureMemory",
    "LAORAMConfig",
    "LAORAMClient",
    "Preprocessor",
    "LookaheadPlan",
    "SuperblockBin",
]
