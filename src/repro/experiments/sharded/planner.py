"""Shard planning: geometry, trace routing and picklable engine recipes.

The planner is the pure, process-free half of sharded execution.  It owns
the round-robin block-id partition (block ``b`` lives in shard
``b % num_shards`` under local id ``b // num_shards``), routes global traces
into per-shard local traces, and describes each shard's engine as a
:class:`ShardEngineSpec` — a frozen, picklable recipe that can be shipped to
a worker process and built there.  Keeping construction *data* separate from
construction *code* is what lets the sequential runner and the
process-parallel executor share one source of truth: both build their
engines from the same specs, so a fixed seed gives bit-identical engines in
either mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient
from repro.exceptions import ConfigurationError
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import ArrayPrORAM, PrORAM, SuperblockMode
from repro.oram.ring_oram import ArrayRingORAM, RingORAM
from repro.oram.shm import ArrayAllocator

#: Families the runner can shard, mapped to (reference, fast) engine classes.
SHARDABLE_FAMILIES: dict[str, tuple[type, type]] = {
    "laoram": (LAORAMClient, FastLAORAMClient),
    "pathoram": (PathORAM, ArrayPathORAM),
    "ringoram": (RingORAM, ArrayRingORAM),
    "proram": (PrORAM, ArrayPrORAM),
}


@dataclass(frozen=True)
class ShardEngineSpec:
    """Picklable recipe for one shard's engine.

    Everything needed to construct the engine in *any* process: the family,
    the shard-local namespace size, the per-shard seed, and the family
    knobs.  :meth:`build` is the only place in the package that constructs
    shard engines, so sequential and parallel execution cannot drift apart.
    """

    family: str
    num_blocks: int
    superblock_size: int
    block_size_bytes: int
    fat_tree: bool
    lookahead_accesses: Optional[int]
    seed: int
    use_fast_engine: bool
    proram_mode: SuperblockMode

    def build(self, allocator: Optional[ArrayAllocator] = None):
        """Construct the engine this spec describes.

        ``allocator`` threads through to the storage layer so a worker can
        back the engine's arrays with shared-memory segments; ``None`` gives
        ordinary private arrays.
        """
        engine_cls = SHARDABLE_FAMILIES[self.family][1 if self.use_fast_engine else 0]
        oram_config = ORAMConfig(
            num_blocks=self.num_blocks,
            block_size_bytes=self.block_size_bytes,
            fat_tree=self.fat_tree,
            seed=self.seed,
        )
        if self.family == "laoram":
            return engine_cls(
                LAORAMConfig(
                    oram=oram_config,
                    superblock_size=self.superblock_size,
                    lookahead_accesses=self.lookahead_accesses,
                ),
                allocator=allocator,
            )
        if self.family == "proram":
            return engine_cls(
                oram_config,
                superblock_size=self.superblock_size,
                mode=self.proram_mode,
                allocator=allocator,
            )
        return engine_cls(oram_config, allocator=allocator)


class ShardPlanner:
    """Round-robin partition of a block namespace into independent shards.

    Round-robin (rather than contiguous ranges) spreads skewed popularity —
    embedding hot rows cluster by feature, not uniformly — so shards see
    comparable load under Zipfian traces.
    """

    def __init__(
        self,
        num_blocks: int,
        num_shards: int,
        family: str = "laoram",
        superblock_size: int = 4,
        block_size_bytes: int = 128,
        fat_tree: bool = False,
        lookahead_accesses: Optional[int] = None,
        seed: int = 0,
        use_fast_engine: bool = True,
        proram_mode: SuperblockMode = SuperblockMode.DYNAMIC,
    ):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if num_blocks < 2 * num_shards:
            raise ConfigurationError(
                "each shard needs at least 2 blocks; "
                f"{num_blocks} blocks cannot fill {num_shards} shards"
            )
        if family not in SHARDABLE_FAMILIES:
            raise ConfigurationError(
                f"unknown shardable family '{family}'; "
                f"choose from {sorted(SHARDABLE_FAMILIES)}"
            )
        self.num_blocks = num_blocks
        self.num_shards = num_shards
        self.family = family
        self.superblock_size = superblock_size
        self.block_size_bytes = block_size_bytes
        self.fat_tree = fat_tree
        self.lookahead_accesses = lookahead_accesses
        self.seed = seed
        self.use_fast_engine = use_fast_engine
        self.proram_mode = proram_mode

    # ------------------------------------------------------------------
    # Shard geometry
    # ------------------------------------------------------------------
    def shard_of(self, block_id: int) -> int:
        """Shard owning ``block_id``."""
        return block_id % self.num_shards

    def local_id(self, block_id: int) -> int:
        """``block_id``'s identifier inside its shard's namespace."""
        return block_id // self.num_shards

    def shard_num_blocks(self, shard_id: int) -> int:
        """Number of global block ids routed to ``shard_id``."""
        return (self.num_blocks - shard_id + self.num_shards - 1) // self.num_shards

    def split_trace(self, addresses: Sequence[int] | np.ndarray) -> list[np.ndarray]:
        """Route a global trace into per-shard local-id traces, order kept."""
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.size and (addr.min() < 0 or addr.max() >= self.num_blocks):
            raise ConfigurationError("trace address outside the block namespace")
        shard = addr % self.num_shards
        local = addr // self.num_shards
        return [local[shard == s] for s in range(self.num_shards)]

    def split_ids(self, block_ids: Sequence[int]) -> dict[int, list[int]]:
        """Group global ids by shard as local ids, preserving arrival order.

        Serving-path counterpart of :meth:`split_trace`: returns only the
        shards that actually appear, as plain lists (cheap for the small
        batches the asyncio front-end coalesces).
        """
        routed: dict[int, list[int]] = {}
        for block_id in block_ids:
            if not 0 <= block_id < self.num_blocks:
                raise ConfigurationError(
                    f"block id {block_id} outside the block namespace"
                )
            routed.setdefault(block_id % self.num_shards, []).append(
                block_id // self.num_shards
            )
        return routed

    # ------------------------------------------------------------------
    # Engine recipes
    # ------------------------------------------------------------------
    def engine_spec(self, shard_id: int) -> ShardEngineSpec:
        """Picklable construction recipe for ``shard_id``'s engine."""
        return ShardEngineSpec(
            family=self.family,
            num_blocks=self.shard_num_blocks(shard_id),
            superblock_size=self.superblock_size,
            block_size_bytes=self.block_size_bytes,
            fat_tree=self.fat_tree,
            lookahead_accesses=self.lookahead_accesses,
            seed=self.seed + shard_id,
            use_fast_engine=self.use_fast_engine,
            proram_mode=self.proram_mode,
        )

    def engine_specs(self) -> list[ShardEngineSpec]:
        """Recipes for every shard, in shard order."""
        return [self.engine_spec(s) for s in range(self.num_shards)]
