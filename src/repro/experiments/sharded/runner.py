"""Sharded trace execution: one ORAM engine per independent block-id shard.

The paper's deployment protects one embedding table with one ORAM client.
Production recommendation systems shard their tables across trainer hosts,
and the same idea applies here: block ids are partitioned round-robin into
``num_shards`` disjoint namespaces, each shard owns an independent (smaller)
ORAM tree/stash/position map, and a trace is executed by routing every
access to its shard's engine.  The merged
:class:`~repro.memory.accounting.TrafficSnapshot` sums the additive traffic
counters while ``simulated_time_s`` reports the slowest shard (the
parallel-deployment critical path) alongside the serial sum.

Execution comes in two backends behind one facade:

* **sequential** (``num_workers=None``, the default): every shard engine
  lives in this process and runs in turn — the pure-Python harness used by
  experiments and tests;
* **process-parallel** (``num_workers=N``): shards are owned by ``N``
  worker processes (shard ``s`` -> worker ``s % N``), each engine's numpy
  state lives in :mod:`multiprocessing.shared_memory` segments, and the
  parent snapshots position maps / stash rows zero-copy from the segments.
  Because shards share no state and each is executed sequentially by
  exactly one worker, the two backends are **bit-identical** for a fixed
  seed — same merged snapshot, same per-shard stash occupancies, same
  position maps — which the test suite asserts family by family.

The package splits along that line: :mod:`.planner` owns geometry and
picklable engine recipes, :mod:`.executor` owns worker processes and
shared-memory snapshots, and this module's :class:`ShardedRunner` is the
facade that routes a trace through either backend and aggregates results.
Wall-clock speedup from ``num_workers > 1`` tracks physical cores — see
``docs/parallel_sharding.md`` for measured scaling and for when wall-clock
diverges from the modeled ``simulated_time_s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.laoram import LookaheadClientMixin
from repro.exceptions import ConfigurationError
from repro.memory.accounting import TrafficSnapshot, merge_snapshots
from repro.oram.pr_oram import SuperblockMode
from repro.experiments.sharded.executor import ProcessShardExecutor
from repro.experiments.sharded.planner import ShardPlanner


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard's execution of its slice of the trace."""

    shard_id: int
    num_blocks: int
    num_accesses: int
    snapshot: TrafficSnapshot
    simulated_time_s: float
    stash_occupancy: int


class ShardedRunner:
    """Partition a block namespace round-robin and run one engine per shard.

    Block id ``b`` lives in shard ``b % num_shards`` under the local id
    ``b // num_shards``.  Round-robin (rather than contiguous ranges)
    spreads skewed popularity — embedding hot rows cluster by feature, not
    uniformly — so shards see comparable load under Zipfian traces.

    ``num_workers=None`` runs shards sequentially in this process (engines
    are exposed on :attr:`engines`); ``num_workers=N`` spawns ``N`` worker
    processes that own the engines, with results bit-identical to the
    sequential backend.  Parallel runners hold OS resources (processes,
    shared-memory segments) — use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self,
        num_blocks: int,
        num_shards: int,
        family: str = "laoram",
        superblock_size: int = 4,
        block_size_bytes: int = 128,
        fat_tree: bool = False,
        lookahead_accesses: Optional[int] = None,
        seed: int = 0,
        use_fast_engine: bool = True,
        proram_mode: SuperblockMode = SuperblockMode.DYNAMIC,
        num_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self._planner = ShardPlanner(
            num_blocks=num_blocks,
            num_shards=num_shards,
            family=family,
            superblock_size=superblock_size,
            block_size_bytes=block_size_bytes,
            fat_tree=fat_tree,
            lookahead_accesses=lookahead_accesses,
            seed=seed,
            use_fast_engine=use_fast_engine,
            proram_mode=proram_mode,
        )
        self.num_blocks = num_blocks
        self.num_shards = num_shards
        self.family = family
        self.use_fast_engine = use_fast_engine
        self.num_workers = num_workers
        self._results: list[ShardResult] = []
        self._executor: Optional[ProcessShardExecutor] = None
        self.engines: list = []
        if num_workers is None:
            self.engines = [
                self._planner.engine_spec(s).build() for s in range(num_shards)
            ]
        else:
            if num_workers < 1:
                raise ConfigurationError("num_workers must be >= 1")
            self._executor = ProcessShardExecutor(
                self._planner, num_workers=num_workers, start_method=start_method
            )
            self._executor.start()

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    @property
    def planner(self) -> ShardPlanner:
        """The shard geometry / engine-recipe planner."""
        return self._planner

    @property
    def executor(self) -> Optional[ProcessShardExecutor]:
        """The process executor (``None`` in sequential mode)."""
        return self._executor

    @property
    def is_parallel(self) -> bool:
        """Whether shards run in worker processes."""
        return self._executor is not None

    def close(self) -> None:
        """Release worker processes and shared memory (no-op when sequential)."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shard geometry (delegated to the planner)
    # ------------------------------------------------------------------
    def shard_of(self, block_id: int) -> int:
        """Shard owning ``block_id``."""
        return self._planner.shard_of(block_id)

    def local_id(self, block_id: int) -> int:
        """``block_id``'s identifier inside its shard's namespace."""
        return self._planner.local_id(block_id)

    def shard_num_blocks(self, shard_id: int) -> int:
        """Number of global block ids routed to ``shard_id``."""
        return self._planner.shard_num_blocks(shard_id)

    def split_trace(self, addresses: Sequence[int] | np.ndarray) -> list[np.ndarray]:
        """Route a global trace into per-shard local-id traces, order kept."""
        return self._planner.split_trace(addresses)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_trace(
        self,
        addresses: Sequence[int] | np.ndarray,
        reinitialize_placement: bool = True,
    ) -> TrafficSnapshot:
        """Execute the trace across every shard and return the merged snapshot.

        Shards share no state, so the run models ``num_shards`` hosts
        working concurrently whichever backend executes it.  LAORAM shards
        consume their slice through the lookahead pipeline
        (``reinitialize_placement`` applies to the first window); every
        other family performs one oblivious access per trace element.
        """
        local_traces = self.split_trace(addresses)
        if self._executor is not None:
            states = self._executor.run_local_traces(
                local_traces, reinitialize_placement=reinitialize_placement
            )
            self._results = [
                ShardResult(
                    shard_id=shard_id,
                    num_blocks=states[shard_id]["num_blocks"],
                    num_accesses=int(local_traces[shard_id].size),
                    snapshot=states[shard_id]["snapshot"],
                    simulated_time_s=states[shard_id]["simulated_time_s"],
                    stash_occupancy=states[shard_id]["stash_occupancy"],
                )
                for shard_id in range(self.num_shards)
            ]
            return self.merged_snapshot()
        self._results = []
        for shard_id, local_trace in enumerate(local_traces):
            engine = self.engines[shard_id]
            if local_trace.size:
                if isinstance(engine, LookaheadClientMixin):
                    engine.run_trace(
                        local_trace, reinitialize_placement=reinitialize_placement
                    )
                elif engine.batch_size:
                    engine.access_many(local_trace)
                else:
                    engine.run_trace(local_trace)
            self._results.append(
                ShardResult(
                    shard_id=shard_id,
                    num_blocks=engine.num_blocks,
                    num_accesses=int(local_trace.size),
                    snapshot=engine.statistics,
                    simulated_time_s=engine.simulated_time_s,
                    stash_occupancy=engine.stash_occupancy,
                )
            )
        return self.merged_snapshot()

    # ------------------------------------------------------------------
    # Aggregation / diagnostics
    # ------------------------------------------------------------------
    @property
    def results(self) -> list[ShardResult]:
        """Per-shard results of the last :meth:`run_trace` call."""
        return list(self._results)

    def _shard_states(self) -> list[dict]:
        """Current per-shard state dicts from the parallel executor."""
        assert self._executor is not None
        states = self._executor.states
        return [states[s] for s in range(self.num_shards)]

    def merged_snapshot(self) -> TrafficSnapshot:
        """Additive counters summed across shards (peak stash is the max)."""
        if self._executor is not None:
            return merge_snapshots(s["snapshot"] for s in self._shard_states())
        return merge_snapshots(engine.statistics for engine in self.engines)

    @property
    def simulated_time_parallel_s(self) -> float:
        """Modeled wall-clock when every shard runs on its own host."""
        if self._executor is not None:
            return max(s["simulated_time_s"] for s in self._shard_states())
        return max(engine.simulated_time_s for engine in self.engines)

    @property
    def simulated_time_serial_s(self) -> float:
        """Modeled wall-clock when one host serves every shard in turn."""
        if self._executor is not None:
            return sum(s["simulated_time_s"] for s in self._shard_states())
        return sum(engine.simulated_time_s for engine in self.engines)

    @property
    def server_memory_bytes(self) -> int:
        """Total tree footprint across shards."""
        if self._executor is not None:
            return sum(s["server_memory_bytes"] for s in self._shard_states())
        return sum(engine.server_memory_bytes for engine in self.engines)

    def total_real_blocks(self) -> int:
        """Blocks held across every shard's tree and stash (invariant check)."""
        if self._executor is not None:
            return sum(s["total_real_blocks"] for s in self._shard_states())
        return sum(engine.total_real_blocks() for engine in self.engines)

    def stash_occupancies(self) -> list[int]:
        """Current stash occupancy of every shard, in shard order."""
        if self._executor is not None:
            return [s["stash_occupancy"] for s in self._shard_states()]
        return [engine.stash_occupancy for engine in self.engines]

    def position_maps(self) -> list[np.ndarray]:
        """Copy of every shard's position map, in shard order.

        Sequential mode copies from the in-process engines; parallel mode
        memcpys the live arrays straight out of the workers' shared-memory
        segments (workers must still be running — call before
        :meth:`close`).
        """
        if self._executor is not None:
            return [
                self._executor.position_map(s) for s in range(self.num_shards)
            ]
        return [engine.position_map.as_array() for engine in self.engines]
