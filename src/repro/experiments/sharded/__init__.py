"""Sharded trace execution — planner / executor / runner.

Public surface is re-exported here so ``from repro.experiments.sharded
import ShardedRunner`` keeps working now that the old module is a package.
See :mod:`repro.experiments.sharded.runner` for the architecture overview.
"""

from repro.experiments.sharded.executor import ProcessShardExecutor
from repro.experiments.sharded.planner import (
    SHARDABLE_FAMILIES,
    ShardEngineSpec,
    ShardPlanner,
)
from repro.experiments.sharded.runner import ShardResult, ShardedRunner

__all__ = [
    "SHARDABLE_FAMILIES",
    "ProcessShardExecutor",
    "ShardEngineSpec",
    "ShardPlanner",
    "ShardResult",
    "ShardedRunner",
]
