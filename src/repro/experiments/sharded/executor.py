"""Process-parallel shard execution over shared-memory engine state.

One executor drives ``num_workers`` worker processes; shard ``s`` is owned
by worker ``s % num_workers``, so any worker count from 1 to ``num_shards``
runs the *same* per-shard computation (shards are independent and each is
executed sequentially by exactly one process — grouping cannot change
results).  Each worker builds its shards' engines from picklable
:class:`~repro.experiments.sharded.planner.ShardEngineSpec` recipes and
backs their numpy state with one
:class:`~repro.oram.shm.SharedMemoryArrayPool` per shard, so the parent can
snapshot position maps / stash rows / tree occupancy by attaching to the
segments (a memcpy, not a pickle).

Protocol (one request queue and one response queue per worker):

========================  =====================================================
parent -> worker           worker -> parent
========================  =====================================================
``("run", traces, r)``     ``("result", {shard: state})`` after all its shards
``("access", rid, ids)``   ``("served", rid, count)``
``("state",)``             ``("state", {shard: state})``
``("stop",)``              (worker exits; pools unlinked in its ``finally``)
any command failing        ``("error", shard, type, message, traceback)``
========================  =====================================================

Cleanup is layered: the worker unlinks its own segments in a ``finally``
(covers exceptions), the parent force-unlinks every registered segment after
a hard kill (covers ``SIGKILL``), and :meth:`ProcessShardExecutor.close` is
idempotent so ``with`` blocks and error paths can both call it.

Workers pin numpy/BLAS to one thread each (``OMP_NUM_THREADS=1`` and
friends) before touching numpy, so library-internal threading does not fight
the process pool for cores; set ``REPRO_WORKER_THREADS`` to override.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import secrets
import time
import traceback
from typing import NoReturn, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShardExecutionError
from repro.experiments.sharded.planner import ShardEngineSpec, ShardPlanner
from repro.oram.shm import (
    Registry,
    SharedMemoryArrayPool,
    read_registry,
    unlink_registry,
)

#: Environment knobs that cap numpy/BLAS internal thread pools.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: Override for the per-worker thread cap (default: 1 thread per worker).
WORKER_THREADS_ENV = "REPRO_WORKER_THREADS"

#: Override for the multiprocessing start method (default: fork when available).
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def _pin_worker_threads() -> None:
    """Cap numpy/BLAS thread pools inside a worker process.

    Each worker is meant to own one core; letting BLAS spawn its own pool
    per process oversubscribes the machine and serializes on contention.
    ``REPRO_WORKER_THREADS`` overrides the cap for hosts with cores to
    spare.  Env pinning is best-effort under the ``fork`` start method
    (an already-initialized parent BLAS keeps its pool) but the engines'
    kernels are memory-bound gathers where one thread is the right answer
    anyway.
    """
    threads = os.environ.get(WORKER_THREADS_ENV, "1")
    for var in _THREAD_ENV_VARS:
        os.environ[var] = threads


def _shard_state(engine, num_accesses: int, registry: Registry) -> dict:
    """Picklable summary of one shard engine's current state."""
    return {
        "num_blocks": engine.num_blocks,
        "num_accesses": int(num_accesses),
        "snapshot": engine.statistics,
        "simulated_time_s": engine.simulated_time_s,
        "stash_occupancy": engine.stash_occupancy,
        "server_memory_bytes": engine.server_memory_bytes,
        "total_real_blocks": engine.total_real_blocks(),
        "registry": registry,
    }


def _shard_worker(
    worker_id: int,
    shard_specs: dict[int, ShardEngineSpec],
    prefix: str,
    requests: "mp.Queue",
    responses: "mp.Queue",
) -> None:
    """Worker main loop: build owned shard engines, serve commands until stop.

    Runs in a child process.  Any exception while handling a command is
    reported as an ``("error", ...)`` message and terminates the worker; the
    ``finally`` unlinks every shared segment the worker created, so even a
    crashing shard leaves nothing in ``/dev/shm``.
    """
    # Imported lazily so the (possibly spawned) child resolves it itself.
    from repro.core.laoram import LookaheadClientMixin

    _pin_worker_threads()
    pools: dict[int, SharedMemoryArrayPool] = {}
    engines: dict[int, object] = {}
    current_shard = -1
    try:
        try:
            for shard_id, spec in shard_specs.items():
                current_shard = shard_id
                pool = SharedMemoryArrayPool(f"{prefix}s{shard_id}")
                pools[shard_id] = pool
                engines[shard_id] = spec.build(allocator=pool)
            current_shard = -1
            responses.put(
                (
                    "ready",
                    {
                        shard_id: _shard_state(engine, 0, pools[shard_id].registry())
                        for shard_id, engine in engines.items()
                    },
                )
            )
            while True:
                message = requests.get()
                op = message[0]
                if op == "stop":
                    break
                if op == "run":
                    _, local_traces, reinitialize_placement = message
                    states = {}
                    for shard_id, local_trace in local_traces.items():
                        current_shard = shard_id
                        engine = engines[shard_id]
                        if local_trace.size:
                            if isinstance(engine, LookaheadClientMixin):
                                engine.run_trace(
                                    local_trace,
                                    reinitialize_placement=reinitialize_placement,
                                )
                            elif engine.batch_size:
                                engine.access_many(local_trace)
                            else:
                                engine.run_trace(local_trace)
                        states[shard_id] = _shard_state(
                            engine, local_trace.size, pools[shard_id].registry()
                        )
                    current_shard = -1
                    responses.put(("result", states))
                elif op == "access":
                    _, request_id, routed = message
                    count = 0
                    for shard_id, local_ids in routed.items():
                        current_shard = shard_id
                        engine = engines[shard_id]
                        if isinstance(engine, LookaheadClientMixin) or (
                            engine.batch_size
                        ):
                            engine.access_many(local_ids)
                        else:
                            engine.run_trace(local_ids)
                        count += len(local_ids)
                    current_shard = -1
                    responses.put(("served", request_id, count))
                elif op == "state":
                    responses.put(
                        (
                            "state",
                            {
                                shard_id: _shard_state(
                                    engine, 0, pools[shard_id].registry()
                                )
                                for shard_id, engine in engines.items()
                            },
                        )
                    )
                else:
                    raise ConfigurationError(f"unknown worker command {op!r}")
        except Exception as exc:  # reported to the parent, then the worker dies
            responses.put(
                (
                    "error",
                    current_shard,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )
    finally:
        for pool in pools.values():
            pool.close(unlink=True)


class ProcessShardExecutor:
    """Drive shard engines in worker processes and merge their results.

    The executor is the mechanical half of parallel sharding: it spawns the
    workers, ships them their engine specs, routes commands, and converts
    worker-side failures into :class:`~repro.exceptions.ShardExecutionError`
    in the parent.  Policy (shard geometry, trace routing, result
    aggregation) stays in the planner and runner.

    ``num_workers`` may be any value in ``[1, num_shards]``; scaling runs
    hold the shard count fixed and vary only the worker count, so speedups
    measure parallelism rather than a different partition.
    """

    def __init__(
        self,
        planner: ShardPlanner,
        num_workers: int,
        start_method: Optional[str] = None,
        prefix: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if num_workers > planner.num_shards:
            raise ConfigurationError(
                f"num_workers ({num_workers}) cannot exceed "
                f"num_shards ({planner.num_shards}): workers own whole shards"
            )
        self.planner = planner
        self.num_workers = num_workers
        method = start_method or os.environ.get(START_METHOD_ENV)
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._ctx = mp.get_context(method)
        # Short prefix: POSIX shm names are length-limited on some platforms.
        self.prefix = prefix or f"rsh{os.getpid() % 0xFFFF:04x}{secrets.token_hex(2)}"
        self._procs: list = []
        self._requests: list = []
        self._responses: list = []
        self._states: dict[int, dict] = {}
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def worker_of(self, shard_id: int) -> int:
        """Worker process owning ``shard_id``."""
        return shard_id % self.num_workers

    def shards_of(self, worker_id: int) -> list[int]:
        """Shards owned by ``worker_id``, in execution order."""
        return list(range(worker_id, self.planner.num_shards, self.num_workers))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and wait for every shard engine to be built."""
        if self._closed:
            raise ShardExecutionError(-1, message="executor is closed")
        if self._started:
            return
        for worker_id in range(self.num_workers):
            specs = {s: self.planner.engine_spec(s) for s in self.shards_of(worker_id)}
            req: "mp.Queue" = self._ctx.Queue()
            resp: "mp.Queue" = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_shard_worker,
                args=(worker_id, specs, self.prefix, req, resp),
                daemon=True,
                name=f"repro-shard-w{worker_id}",
            )
            proc.start()
            self._procs.append(proc)
            self._requests.append(req)
            self._responses.append(resp)
        self._started = True
        for worker_id in range(self.num_workers):
            tag, states = self._recv(worker_id)
            assert tag == "ready"
            self._states.update(states)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and reclaim every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._requests[worker_id].put(("stop",))
                except (ValueError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._requests + self._responses:
            q.cancel_join_thread()
            q.close()
        # Belt-and-braces: workers unlink their own segments on the way out,
        # so this normally removes nothing; after a hard kill it reclaims
        # whatever the worker left behind.
        for state in self._states.values():
            unlink_registry(state["registry"])
        self._procs = []
        self._requests = []
        self._responses = []

    def __enter__(self) -> "ProcessShardExecutor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort; explicit close() is the supported path
        try:
            self.close(timeout=0.5)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _fail(self, error: ShardExecutionError) -> NoReturn:
        """Tear everything down after a worker failure, then raise."""
        self.close(timeout=1.0)
        raise error

    def _recv(self, worker_id: int, poll_s: float = 0.1):
        """Next message from ``worker_id``; converts death/errors to raises.

        Blocks until a message arrives, polling worker liveness so a worker
        that died without reporting (``SIGKILL``, interpreter abort) raises
        a :class:`ShardExecutionError` instead of hanging forever.
        """
        response_queue = self._responses[worker_id]
        proc = self._procs[worker_id]
        while True:
            try:
                message = response_queue.get(timeout=poll_s)
            except queue.Empty:
                if not proc.is_alive():
                    try:  # a final message may have raced with the death
                        message = response_queue.get_nowait()
                    except queue.Empty:
                        self._fail(
                            ShardExecutionError(
                                min(self.shards_of(worker_id), default=-1),
                                message=(
                                    f"worker {worker_id} died without reporting "
                                    f"(exit code {proc.exitcode})"
                                ),
                            )
                        )
                else:
                    continue
            if message[0] == "error":
                _tag, shard_id, type_name, detail, worker_tb = message
                self._fail(
                    ShardExecutionError(shard_id, type_name, detail, worker_tb)
                )
            return message

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_local_traces(
        self,
        local_traces: Sequence[np.ndarray],
        reinitialize_placement: bool = True,
    ) -> dict[int, dict]:
        """Execute per-shard local traces on the workers; return shard states.

        One ``run`` command per worker carries all of that worker's shard
        slices; workers execute concurrently, shards within a worker
        sequentially.  Returns the per-shard state dicts (snapshot,
        simulated time, stash occupancy, registry, ...) keyed by shard id.
        """
        self.start()
        for worker_id in range(self.num_workers):
            traces = {s: np.asarray(local_traces[s], dtype=np.int64)
                      for s in self.shards_of(worker_id)}
            self._requests[worker_id].put(
                ("run", traces, reinitialize_placement)
            )
        for worker_id in range(self.num_workers):
            tag, states = self._recv(worker_id)
            assert tag == "result"
            self._states.update(states)
        return dict(self._states)

    def access_on_worker(self, worker_id: int, routed: dict[int, list[int]]) -> int:
        """Serve one coalesced batch on ``worker_id``; blocks for completion.

        ``routed`` maps shard id -> local ids; every shard must belong to
        ``worker_id``.  Used by the serving front-end, which dedicates one
        dispatcher per worker so request/response pairs never interleave.
        """
        for shard_id in routed:
            if self.worker_of(shard_id) != worker_id:
                raise ConfigurationError(
                    f"shard {shard_id} is not owned by worker {worker_id}"
                )
        self.start()
        self._requests[worker_id].put(("access", 0, routed))
        tag, _request_id, count = self._recv(worker_id)
        assert tag == "served"
        return count

    def refresh_states(self) -> dict[int, dict]:
        """Re-poll every worker for current shard states (post-serving)."""
        self.start()
        for worker_id in range(self.num_workers):
            self._requests[worker_id].put(("state",))
        for worker_id in range(self.num_workers):
            tag, states = self._recv(worker_id)
            assert tag == "state"
            self._states.update(states)
        return dict(self._states)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def states(self) -> dict[int, dict]:
        """Last known per-shard state dicts, keyed by shard id."""
        return dict(self._states)

    def read_shard_arrays(self, shard_id: int) -> dict[str, np.ndarray]:
        """Copy a live shard's shared arrays out of its segments.

        Zero-pickle snapshot path: attaches to the worker's segments and
        memcpys (``posmap.leaves``, ``stash.ids``, ... — whatever the
        shard's engine allocated through its pool).  The worker must still
        be alive; a closed executor's segments are gone.
        """
        if self._closed:
            raise ShardExecutionError(shard_id, message="executor is closed")
        state = self._states.get(shard_id)
        if state is None:
            raise ShardExecutionError(shard_id, message="shard state unknown")
        return read_registry(state["registry"])

    def position_map(self, shard_id: int) -> np.ndarray:
        """Copy of one shard's live position map (from shared memory)."""
        return self.read_shard_arrays(shard_id)["posmap.leaves"]
