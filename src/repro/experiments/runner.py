"""Drives engines over traces and collects :class:`ExperimentResult` records."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.base import AccessTrace
from repro.experiments.configs import build_engine
from repro.experiments.metrics import ExperimentResult
from repro.memory.accounting import TrafficCounter
from repro.oram.base import ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy


def run_engine_on_trace(
    engine: ObliviousMemory,
    trace: AccessTrace,
    label: str,
    record_stash_history: bool = False,
) -> ExperimentResult:
    """Execute every access of ``trace`` on ``engine`` and summarise the run.

    LAORAM clients (both the per-object and the array-backed engine) consume
    the trace through their lookahead pipeline (preprocessing plus
    superblock-granularity accesses); engines configured with a batch size
    go through the chunked batched protocol; every other tree engine runs
    the whole trace through its fused ``run_trace`` driver.
    """
    if record_stash_history and hasattr(engine, "counter"):
        engine.counter.record_stash_history = True
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(trace.addresses)
    elif getattr(engine, "batch_size", None) or not hasattr(engine, "run_trace"):
        engine.access_many(trace.addresses)
    else:
        engine.run_trace(trace.addresses)
    snapshot = engine.statistics
    history: tuple[int, ...] = ()
    if record_stash_history and hasattr(engine, "counter"):
        history = tuple(engine.counter.stash_history)
    return ExperimentResult(
        label=label,
        dataset=trace.name,
        num_accesses=len(trace),
        snapshot=snapshot,
        simulated_time_s=engine.simulated_time_s,
        server_memory_bytes=engine.server_memory_bytes,
        stash_history=history,
    )


def run_configuration(
    label: str,
    trace: AccessTrace,
    oram_config: ORAMConfig,
    eviction: Optional[EvictionPolicy] = None,
    seed: Optional[int] = None,
    record_stash_history: bool = False,
    observer=None,
    fast: bool = False,
) -> ExperimentResult:
    """Build the engine named ``label`` and run it over ``trace``."""
    engine = build_engine(
        label,
        oram_config,
        eviction=eviction,
        counter=TrafficCounter(),
        observer=observer,
        seed=seed,
        fast=fast,
    )
    return run_engine_on_trace(
        engine, trace, label, record_stash_history=record_stash_history
    )


def compare_configurations(
    labels: Sequence[str],
    trace: AccessTrace,
    oram_config: ORAMConfig,
    eviction: Optional[EvictionPolicy] = None,
    base_seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run every labelled configuration over the same trace.

    Each configuration gets its own seed offset so path randomisation is
    independent across engines while staying reproducible run to run.
    """
    results: dict[str, ExperimentResult] = {}
    for offset, label in enumerate(labels):
        results[label] = run_configuration(
            label,
            trace,
            oram_config,
            eviction=eviction,
            seed=base_seed + offset,
        )
    return results
