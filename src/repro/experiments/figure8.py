"""Figure 8: stash growth of fat vs normal trees under superblock pressure.

The paper disables background eviction and tracks raw stash occupancy over
~12,500 accesses of the worst-case permutation stream for four
configurations; the normal tree's stash grows several times faster than the
fat tree's.  This module reproduces those stash-occupancy curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.permutation import PermutationTraceGenerator
from repro.experiments.scale import ExperimentScale, SMALL
from repro.memory.accounting import TrafficCounter
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy

#: Figure 8 configurations: label -> (superblock size, bucket size, fat root size).
FIGURE8_CONFIGS: dict[str, tuple[int, int, int | None]] = {
    "Normal-4": (4, 4, None),
    "Fat-4": (4, 4, 8),
    "Normal-8": (8, 4, None),
    "Fat-8": (8, 4, 8),
}


@dataclass(frozen=True)
class Figure8Result:
    """Stash-occupancy histories for the four configurations."""

    num_accesses: int
    histories: dict[str, tuple[int, ...]]
    final_occupancy: dict[str, int]

    def growth_ratio(self, normal_label: str = "Normal-4", fat_label: str = "Fat-4") -> float:
        """How much larger the normal tree's final stash is than the fat tree's."""
        fat = max(1, self.final_occupancy[fat_label])
        return self.final_occupancy[normal_label] / fat


def run_figure8(
    scale: ExperimentScale = SMALL,
    configs: dict[str, tuple[int, int, int | None]] | None = None,
    seed: int = 0,
) -> Figure8Result:
    """Reproduce the stash-growth comparison of Figure 8."""
    configs = configs if configs is not None else FIGURE8_CONFIGS
    trace = PermutationTraceGenerator(scale.num_blocks, seed=seed).generate(
        scale.num_accesses
    )
    histories: dict[str, tuple[int, ...]] = {}
    finals: dict[str, int] = {}
    for offset, (label, (superblock, bucket, fat_root)) in enumerate(configs.items()):
        oram_config = ORAMConfig(
            num_blocks=scale.num_blocks,
            block_size_bytes=scale.block_size_bytes,
            bucket_size=bucket,
            fat_tree=fat_root is not None,
            root_bucket_size=fat_root,
            background_eviction=False,
            seed=seed + offset,
        )
        counter = TrafficCounter(record_stash_history=True)
        client = LAORAMClient(
            LAORAMConfig(oram=oram_config, superblock_size=superblock),
            counter=counter,
            eviction=EvictionPolicy.disabled(),
        )
        client.run_trace(trace.addresses)
        histories[label] = tuple(counter.stash_history)
        finals[label] = counter.stash_history[-1] if counter.stash_history else 0
    return Figure8Result(
        num_accesses=len(trace), histories=histories, final_occupancy=finals
    )
