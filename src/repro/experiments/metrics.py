"""Result records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.memory.accounting import TrafficSnapshot


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of driving one engine configuration over one access trace."""

    label: str
    dataset: str
    num_accesses: int
    snapshot: TrafficSnapshot
    simulated_time_s: float
    server_memory_bytes: int
    stash_history: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    @property
    def time_per_access_s(self) -> float:
        """Average simulated latency per logical access."""
        if self.num_accesses == 0:
            return 0.0
        return self.simulated_time_s / self.num_accesses

    @property
    def bytes_per_access(self) -> float:
        """Average server bytes moved per logical access."""
        if self.num_accesses == 0:
            return 0.0
        return self.snapshot.total_bytes / self.num_accesses

    @property
    def dummy_reads_per_access(self) -> float:
        """Average dummy (background-eviction) reads per access (Table II)."""
        return self.snapshot.dummy_reads_per_access

    # ------------------------------------------------------------------
    def speedup_over(self, baseline: "ExperimentResult") -> float:
        """Speedup of this configuration relative to ``baseline`` (Fig. 7)."""
        if self.time_per_access_s == 0:
            raise ConfigurationError("cannot compute speedup with zero access time")
        return baseline.time_per_access_s / self.time_per_access_s

    def traffic_reduction_over(self, baseline: "ExperimentResult") -> float:
        """Bytes-moved reduction factor relative to ``baseline`` (Fig. 9)."""
        if self.bytes_per_access == 0:
            raise ConfigurationError("cannot compute reduction with zero traffic")
        return baseline.bytes_per_access / self.bytes_per_access
