"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.configs import (
    PAPER_CONFIG_LABELS,
    build_engine,
    build_laoram_config,
    build_oram_config,
)
from repro.experiments.metrics import ExperimentResult
from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart
from repro.experiments.recursion import (
    RecursionAmortizationRow,
    render_recursion_table,
    run_recursion_amortization,
)
from repro.experiments.runner import compare_configurations, run_configuration
from repro.experiments.scale import ExperimentScale
from repro.experiments.sharded import ShardedRunner, ShardResult

__all__ = [
    "PAPER_CONFIG_LABELS",
    "build_engine",
    "build_oram_config",
    "build_laoram_config",
    "ExperimentResult",
    "ExperimentScale",
    "RecursionAmortizationRow",
    "run_recursion_amortization",
    "render_recursion_table",
    "run_configuration",
    "compare_configurations",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ShardedRunner",
    "ShardResult",
]
