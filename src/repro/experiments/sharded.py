"""Sharded trace execution: one ORAM engine per independent block-id shard.

The paper's deployment protects one embedding table with one ORAM client.
Production recommendation systems shard their tables across trainer hosts,
and the same idea applies here: block ids are partitioned round-robin into
``num_shards`` disjoint namespaces, each shard owns an independent (smaller)
ORAM tree/stash/position map, and a trace is executed by routing every
access to its shard's engine.  Because the shards share no state, they model
hosts that can run concurrently; the merged
:class:`~repro.memory.accounting.TrafficSnapshot` sums the additive traffic
counters while ``simulated_time_s`` reports the slowest shard (the
parallel-deployment critical path) alongside the serial sum.

Sharding is also what makes multi-tenant/scale experiments tractable in pure
Python: each shard's tree is ``num_shards`` times smaller, so a single
machine can sweep shard counts to study how partitioning changes per-shard
stash pressure and total traffic.  Every engine family can run sharded —
``family`` selects ``"laoram"`` (default), ``"pathoram"``, ``"ringoram"`` or
``"proram"`` — and ``use_fast_engine`` picks the vectorized array twin
(identical counters for a fixed seed) or the per-object reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient, LookaheadClientMixin
from repro.exceptions import ConfigurationError
from repro.memory.accounting import TrafficSnapshot, merge_snapshots
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import ArrayPrORAM, PrORAM, SuperblockMode
from repro.oram.ring_oram import ArrayRingORAM, RingORAM

#: Families the runner can shard, mapped to (reference, fast) engine classes.
SHARDABLE_FAMILIES: dict[str, tuple[type, type]] = {
    "laoram": (LAORAMClient, FastLAORAMClient),
    "pathoram": (PathORAM, ArrayPathORAM),
    "ringoram": (RingORAM, ArrayRingORAM),
    "proram": (PrORAM, ArrayPrORAM),
}


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard's execution of its slice of the trace."""

    shard_id: int
    num_blocks: int
    num_accesses: int
    snapshot: TrafficSnapshot
    simulated_time_s: float
    stash_occupancy: int


class ShardedRunner:
    """Partition a block namespace round-robin and run one engine per shard.

    Block id ``b`` lives in shard ``b % num_shards`` under the local id
    ``b // num_shards``.  Round-robin (rather than contiguous ranges) spreads
    skewed popularity — embedding hot rows cluster by feature, not uniformly —
    so shards see comparable load under Zipfian traces.
    """

    def __init__(
        self,
        num_blocks: int,
        num_shards: int,
        family: str = "laoram",
        superblock_size: int = 4,
        block_size_bytes: int = 128,
        fat_tree: bool = False,
        lookahead_accesses: Optional[int] = None,
        seed: int = 0,
        use_fast_engine: bool = True,
        proram_mode: SuperblockMode = SuperblockMode.DYNAMIC,
    ):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if num_blocks < 2 * num_shards:
            raise ConfigurationError(
                "each shard needs at least 2 blocks; "
                f"{num_blocks} blocks cannot fill {num_shards} shards"
            )
        if family not in SHARDABLE_FAMILIES:
            raise ConfigurationError(
                f"unknown shardable family '{family}'; "
                f"choose from {sorted(SHARDABLE_FAMILIES)}"
            )
        self.num_blocks = num_blocks
        self.num_shards = num_shards
        self.family = family
        self.use_fast_engine = use_fast_engine
        engine_cls = SHARDABLE_FAMILIES[family][1 if use_fast_engine else 0]
        self.engines = []
        for shard_id in range(num_shards):
            oram_config = ORAMConfig(
                num_blocks=self.shard_num_blocks(shard_id),
                block_size_bytes=block_size_bytes,
                fat_tree=fat_tree,
                seed=seed + shard_id,
            )
            if family == "laoram":
                engine = engine_cls(
                    LAORAMConfig(
                        oram=oram_config,
                        superblock_size=superblock_size,
                        lookahead_accesses=lookahead_accesses,
                    )
                )
            elif family == "proram":
                engine = engine_cls(
                    oram_config,
                    superblock_size=superblock_size,
                    mode=proram_mode,
                )
            else:
                engine = engine_cls(oram_config)
            self.engines.append(engine)
        self._results: list[ShardResult] = []

    # ------------------------------------------------------------------
    # Shard geometry
    # ------------------------------------------------------------------
    def shard_of(self, block_id: int) -> int:
        """Shard owning ``block_id``."""
        return block_id % self.num_shards

    def local_id(self, block_id: int) -> int:
        """``block_id``'s identifier inside its shard's namespace."""
        return block_id // self.num_shards

    def shard_num_blocks(self, shard_id: int) -> int:
        """Number of global block ids routed to ``shard_id``."""
        return (self.num_blocks - shard_id + self.num_shards - 1) // self.num_shards

    def split_trace(self, addresses: Sequence[int] | np.ndarray) -> list[np.ndarray]:
        """Route a global trace into per-shard local-id traces, order kept."""
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.size and (addr.min() < 0 or addr.max() >= self.num_blocks):
            raise ConfigurationError("trace address outside the block namespace")
        shard = addr % self.num_shards
        local = addr // self.num_shards
        return [local[shard == s] for s in range(self.num_shards)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_trace(
        self,
        addresses: Sequence[int] | np.ndarray,
        reinitialize_placement: bool = True,
    ) -> TrafficSnapshot:
        """Execute the trace across every shard and return the merged snapshot.

        Shards execute sequentially here (pure-Python harness) but share no
        state, so the run models ``num_shards`` hosts working concurrently.
        LAORAM shards consume their slice through the lookahead pipeline
        (``reinitialize_placement`` applies to the first window); every other
        family performs one oblivious access per trace element.
        """
        self._results = []
        for shard_id, local_trace in enumerate(self.split_trace(addresses)):
            engine = self.engines[shard_id]
            if local_trace.size:
                if isinstance(engine, LookaheadClientMixin):
                    engine.run_trace(
                        local_trace, reinitialize_placement=reinitialize_placement
                    )
                else:
                    engine.access_many(local_trace)
            self._results.append(
                ShardResult(
                    shard_id=shard_id,
                    num_blocks=engine.num_blocks,
                    num_accesses=int(local_trace.size),
                    snapshot=engine.statistics,
                    simulated_time_s=engine.simulated_time_s,
                    stash_occupancy=engine.stash_occupancy,
                )
            )
        return self.merged_snapshot()

    # ------------------------------------------------------------------
    # Aggregation / diagnostics
    # ------------------------------------------------------------------
    @property
    def results(self) -> list[ShardResult]:
        """Per-shard results of the last :meth:`run_trace` call."""
        return list(self._results)

    def merged_snapshot(self) -> TrafficSnapshot:
        """Additive counters summed across shards (peak stash is the max)."""
        return merge_snapshots(engine.statistics for engine in self.engines)

    @property
    def simulated_time_parallel_s(self) -> float:
        """Modeled wall-clock when every shard runs on its own host."""
        return max(engine.simulated_time_s for engine in self.engines)

    @property
    def simulated_time_serial_s(self) -> float:
        """Modeled wall-clock when one host serves every shard in turn."""
        return sum(engine.simulated_time_s for engine in self.engines)

    @property
    def server_memory_bytes(self) -> int:
        """Total tree footprint across shards."""
        return sum(engine.server_memory_bytes for engine in self.engines)

    def total_real_blocks(self) -> int:
        """Blocks held across every shard's tree and stash (invariant check)."""
        return sum(engine.total_real_blocks() for engine in self.engines)
