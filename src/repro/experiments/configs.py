"""Named engine configurations matching the paper's notation.

The evaluation compares seven configurations per workload (Fig. 7):
``PathORAM`` (the baseline, equivalent to superblock size 1), ``Normal/S{2,4,8}``
(LAORAM on a uniform-bucket tree) and ``Fat/S{2,4,8}`` (LAORAM on the
fat tree).  This module turns those labels into engine instances, and also
provides the additional engines used in the related-work comparisons
(PrORAM static/dynamic, RingORAM, the insecure baseline).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient
from repro.exceptions import ConfigurationError, UnsupportedEngineError
from repro.memory.accounting import TrafficCounter
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.base import ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import ArrayPrORAM, PrORAM, SuperblockMode
from repro.oram.ring_oram import ArrayRingORAM, RingORAM

#: Families with a vectorized (``fast=True``) twin.
FAST_ENGINE_FAMILIES: frozenset[str] = frozenset(
    {"pathoram", "laoram", "ringoram", "proram"}
)

#: Configuration labels used in the paper's figures, in plotting order.
PAPER_CONFIG_LABELS: tuple[str, ...] = (
    "PathORAM",
    "Normal/S2",
    "Normal/S4",
    "Normal/S8",
    "Fat/S2",
    "Fat/S4",
    "Fat/S8",
)

#: Additional engines available to the harness beyond the paper's main sweep.
EXTRA_CONFIG_LABELS: tuple[str, ...] = (
    "Insecure",
    "RingORAM",
    "PrORAM-static/S2",
    "PrORAM-dynamic/S2",
    "PrORAM-static/S4",
    "PrORAM-dynamic/S4",
)


def build_oram_config(
    num_blocks: int,
    block_size_bytes: int = 128,
    bucket_size: int = 4,
    fat_tree: bool = False,
    root_bucket_size: Optional[int] = None,
    seed: int = 0,
    recursive_posmap: bool = False,
    posmap_positions_per_block: int = 64,
    posmap_cutoff_bytes: int = 1 << 16,
) -> ORAMConfig:
    """Convenience constructor for the tree geometry used across experiments."""
    return ORAMConfig(
        num_blocks=num_blocks,
        block_size_bytes=block_size_bytes,
        bucket_size=bucket_size,
        fat_tree=fat_tree,
        root_bucket_size=root_bucket_size,
        seed=seed,
        recursive_posmap=recursive_posmap,
        posmap_positions_per_block=posmap_positions_per_block,
        posmap_cutoff_bytes=posmap_cutoff_bytes,
    )


def build_laoram_config(
    oram: ORAMConfig, superblock_size: int, fat_tree: bool
) -> LAORAMConfig:
    """LAORAM configuration on top of a given tree geometry."""
    return LAORAMConfig(
        oram=oram.with_overrides(fat_tree=fat_tree),
        superblock_size=superblock_size,
    )


def parse_label(label: str) -> dict:
    """Decompose a configuration label into its engine family and parameters."""
    if label == "PathORAM":
        return {"family": "pathoram"}
    if label == "Insecure":
        return {"family": "insecure"}
    if label == "RingORAM":
        return {"family": "ringoram"}
    if label.startswith(("Normal/S", "Fat/S")):
        tree, _, size = label.partition("/S")
        return {
            "family": "laoram",
            "fat_tree": tree == "Fat",
            "superblock_size": int(size),
        }
    if label.startswith("PrORAM-"):
        variant, _, size = label[len("PrORAM-") :].partition("/S")
        if variant not in ("static", "dynamic"):
            raise ConfigurationError(f"unknown PrORAM variant in '{label}'")
        return {
            "family": "proram",
            "mode": SuperblockMode(variant),
            "superblock_size": int(size) if size else 2,
        }
    raise ConfigurationError(f"unknown configuration label '{label}'")


def build_engine(
    label: str,
    oram_config: ORAMConfig,
    eviction: Optional[EvictionPolicy] = None,
    counter: Optional[TrafficCounter] = None,
    observer=None,
    seed: Optional[int] = None,
    fast: bool = False,
    batched: bool = False,
    batch_size: int = 64,
    recursive_posmap: Optional[bool] = None,
    posmap_positions_per_block: Optional[int] = None,
    posmap_cutoff_bytes: Optional[int] = None,
) -> ObliviousMemory:
    """Instantiate the engine named by ``label`` on the given tree geometry.

    ``fast=True`` selects the array-backed vectorized engine: PathORAM ->
    :class:`ArrayPathORAM`, LAORAM -> :class:`FastLAORAMClient`, RingORAM ->
    :class:`ArrayRingORAM`, PrORAM -> :class:`ArrayPrORAM`.  Every twin
    produces counters bit-identical to the per-object engine for a fixed
    seed, only faster.  Families without a twin (the insecure baseline)
    raise :class:`~repro.exceptions.UnsupportedEngineError`.

    ``batched=True`` turns on the chunked batched-access protocol
    (``access_many``/``write_many`` amortise path reads and write-backs
    across ``batch_size`` accesses).  Only PathORAM supports it; LAORAM
    accepts-and-ignores the flag because its superblock bins already batch
    on bin boundaries, and the remaining families raise
    :class:`~repro.exceptions.UnsupportedEngineError`.

    ``recursive_posmap=True`` (or the flag already set on ``oram_config``)
    stores the position map in recursion ORAMs instead of a trusted dense
    array; ``posmap_positions_per_block`` / ``posmap_cutoff_bytes`` tune the
    recursion geometry.  ``None`` leaves the corresponding ``oram_config``
    field untouched.
    """
    parsed = parse_label(label)
    config = oram_config if seed is None else oram_config.with_overrides(seed=seed)
    posmap_overrides = {
        name: value
        for name, value in (
            ("recursive_posmap", recursive_posmap),
            ("posmap_positions_per_block", posmap_positions_per_block),
            ("posmap_cutoff_bytes", posmap_cutoff_bytes),
        )
        if value is not None
    }
    if posmap_overrides:
        config = config.with_overrides(**posmap_overrides)
    family = parsed["family"]
    if fast and family not in FAST_ENGINE_FAMILIES:
        raise UnsupportedEngineError(
            f"no vectorized (fast=True) engine exists for family '{family}' "
            f"(configuration '{label}'); fast engines cover "
            f"{sorted(FAST_ENGINE_FAMILIES)}"
        )
    if batched and family not in ("pathoram", "laoram"):
        raise UnsupportedEngineError(
            f"family '{family}' (configuration '{label}') has no batched "
            "access protocol; batching covers ['laoram', 'pathoram']"
        )
    if family == "insecure":
        return InsecureMemory(config, counter=counter, observer=observer)
    if family == "pathoram":
        engine_cls = ArrayPathORAM if fast else PathORAM
        return engine_cls(
            config,
            counter=counter,
            eviction=eviction,
            observer=observer,
            batch_size=batch_size if batched else None,
        )
    if family == "ringoram":
        engine_cls = ArrayRingORAM if fast else RingORAM
        return engine_cls(config, counter=counter, observer=observer)
    if family == "proram":
        engine_cls = ArrayPrORAM if fast else PrORAM
        return engine_cls(
            config,
            superblock_size=parsed["superblock_size"],
            mode=parsed["mode"],
            counter=counter,
            eviction=eviction,
            observer=observer,
        )
    if family == "laoram":
        laoram_config = LAORAMConfig(
            oram=config.with_overrides(fat_tree=parsed["fat_tree"]),
            superblock_size=parsed["superblock_size"],
        )
        engine_cls = FastLAORAMClient if fast else LAORAMClient
        return engine_cls(
            laoram_config, counter=counter, eviction=eviction, observer=observer
        )
    raise ConfigurationError(f"unhandled configuration family '{family}'")
