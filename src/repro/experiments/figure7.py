"""Figure 7: LAORAM speedups over PathORAM on all six workloads.

Sub-figures (a)-(f) report the speedup of ``Normal/S{2,4,8}`` and
``Fat/S{2,4,8}`` over the PathORAM baseline for Permutation (two table
sizes), Gaussian (two table sizes), DLRM-Kaggle and XLM-R-XNLI access
streams.  The paper's headline numbers are ~5x on Kaggle and ~5.4x on XNLI
for the best configuration, with much smaller gains (and a superblock-size-8
dip for the normal tree) on the adversarial permutation workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import AccessTrace
from repro.datasets.registry import make_trace
from repro.exceptions import ConfigurationError
from repro.experiments.configs import PAPER_CONFIG_LABELS, build_oram_config
from repro.experiments.metrics import ExperimentResult
from repro.experiments.runner import compare_configurations
from repro.experiments.scale import ExperimentScale, SMALL

#: Workloads of the six sub-figures, mapped to (dataset name, table selector).
SUBFIGURES: dict[str, tuple[str, str]] = {
    "7a": ("permutation", "base"),
    "7b": ("permutation", "secondary"),
    "7c": ("gaussian", "base"),
    "7d": ("gaussian", "secondary"),
    "7e": ("kaggle", "base"),
    "7f": ("xnli", "base"),
}


@dataclass(frozen=True)
class Figure7Result:
    """Speedups of every configuration for one sub-figure."""

    subfigure: str
    dataset: str
    num_blocks: int
    num_accesses: int
    results: dict[str, ExperimentResult]
    speedups: dict[str, float]

    @property
    def best_configuration(self) -> str:
        """Label of the fastest configuration."""
        return max(self.speedups, key=self.speedups.get)

    @property
    def best_speedup(self) -> float:
        """Largest speedup over PathORAM."""
        return max(self.speedups.values())


def run_figure7(
    subfigure: str,
    scale: ExperimentScale = SMALL,
    labels: tuple[str, ...] = PAPER_CONFIG_LABELS,
    seed: int = 0,
) -> Figure7Result:
    """Reproduce one sub-figure of Figure 7 at the requested scale."""
    if subfigure not in SUBFIGURES:
        raise ConfigurationError(
            f"unknown sub-figure '{subfigure}'; expected one of {sorted(SUBFIGURES)}"
        )
    dataset, selector = SUBFIGURES[subfigure]
    num_blocks = scale.num_blocks if selector == "base" else scale.secondary_blocks
    trace = make_trace(dataset, num_blocks, scale.num_accesses, seed=seed)
    return run_figure7_on_trace(subfigure, trace, scale, labels=labels, seed=seed)


def run_figure7_on_trace(
    subfigure: str,
    trace: AccessTrace,
    scale: ExperimentScale,
    labels: tuple[str, ...] = PAPER_CONFIG_LABELS,
    seed: int = 0,
) -> Figure7Result:
    """Reproduce a Figure 7 sub-figure on a caller-supplied trace."""
    if "PathORAM" not in labels:
        raise ConfigurationError("Figure 7 requires the PathORAM baseline label")
    oram_config = build_oram_config(
        num_blocks=trace.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        seed=seed,
    )
    results = compare_configurations(labels, trace, oram_config, base_seed=seed)
    baseline = results["PathORAM"]
    speedups = {
        label: result.speedup_over(baseline) for label, result in results.items()
    }
    return Figure7Result(
        subfigure=subfigure,
        dataset=trace.name,
        num_blocks=trace.num_blocks,
        num_accesses=len(trace),
        results=results,
        speedups=speedups,
    )
