"""Figure 9: memory-traffic reduction of LAORAM on the Kaggle workload.

The paper reports how many fewer bytes each configuration moves relative to
PathORAM, together with the theoretical upper bounds: ``superblock_size`` for
the normal tree and ``2(Z+1)/(3Z+1) * superblock_size`` for the fat tree
(whose paths carry roughly 50% more bytes).  Background evictions push the
measured reductions below the bounds, which is exactly what the figure shows
for superblock sizes 4 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import make_trace
from repro.experiments.configs import PAPER_CONFIG_LABELS, build_oram_config, parse_label
from repro.experiments.metrics import ExperimentResult
from repro.experiments.runner import compare_configurations
from repro.experiments.scale import ExperimentScale, SMALL


def theoretical_traffic_bound(label: str, bucket_size: int = 4) -> float:
    """Paper's upper bound on the traffic reduction of a configuration."""
    parsed = parse_label(label)
    if parsed["family"] == "pathoram":
        return 1.0
    superblock = parsed.get("superblock_size", 1)
    if parsed.get("fat_tree"):
        return 2.0 * (bucket_size + 1) / (3.0 * bucket_size + 1) * superblock
    return float(superblock)


@dataclass(frozen=True)
class Figure9Result:
    """Measured and theoretical traffic reductions per configuration."""

    dataset: str
    results: dict[str, ExperimentResult]
    reductions: dict[str, float]
    theoretical_bounds: dict[str, float]

    def within_bound(self, label: str, tolerance: float = 1.05) -> bool:
        """Whether the measured reduction respects the theoretical upper bound."""
        return self.reductions[label] <= self.theoretical_bounds[label] * tolerance


def run_figure9(
    scale: ExperimentScale = SMALL,
    dataset: str = "kaggle",
    labels: tuple[str, ...] = PAPER_CONFIG_LABELS,
    seed: int = 0,
) -> Figure9Result:
    """Reproduce the traffic-reduction comparison of Figure 9."""
    trace = make_trace(dataset, scale.num_blocks, scale.num_accesses, seed=seed)
    oram_config = build_oram_config(
        num_blocks=scale.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        seed=seed,
    )
    results = compare_configurations(labels, trace, oram_config, base_seed=seed)
    baseline = results["PathORAM"]
    reductions = {
        label: result.traffic_reduction_over(baseline)
        for label, result in results.items()
    }
    bounds = {
        label: theoretical_traffic_bound(label, oram_config.bucket_size)
        for label in labels
    }
    return Figure9Result(
        dataset=trace.name,
        results=results,
        reductions=reductions,
        theoretical_bounds=bounds,
    )
