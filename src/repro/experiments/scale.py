"""Experiment scale presets.

The paper's embedding tables (8M-16M entries, up to 24 GB of tree) cannot be
simulated at full size in pure Python within a benchmark's time budget, so the
harness exposes scale presets.  The relative behaviour the paper reports —
who wins, where the superblock-size sweet spot sits, how much the fat tree
helps — is governed by bucket occupancy and superblock size rather than by
the absolute tree height, so reduced scales preserve the shape of the
results.  Table I (pure arithmetic) always uses the paper's full sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters of a run of the evaluation harness.

    Attributes:
        name: Human-readable preset name.
        num_blocks: Embedding rows in the protected table.
        num_accesses: Length of the access trace driven through each engine.
        block_size_bytes: Row payload size.
        secondary_num_blocks: Table size used for the "16M" variants (the
            paper evaluates two permutation/Gaussian table sizes).
    """

    name: str
    num_blocks: int
    num_accesses: int
    block_size_bytes: int = 128
    secondary_num_blocks: int | None = None

    def __post_init__(self) -> None:
        if self.num_blocks < 2:
            raise ConfigurationError("num_blocks must be >= 2")
        if self.num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        if self.block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")

    @property
    def secondary_blocks(self) -> int:
        """Size of the larger table variant (defaults to twice the base size)."""
        return self.secondary_num_blocks or self.num_blocks * 2


#: Fast preset used by the test suite.
TINY = ExperimentScale(name="tiny", num_blocks=1 << 10, num_accesses=2_048)

#: Default preset for pytest-benchmark runs.
SMALL = ExperimentScale(name="small", num_blocks=1 << 12, num_accesses=8_192)

#: Larger preset for more faithful (slower) runs.
MEDIUM = ExperimentScale(name="medium", num_blocks=1 << 14, num_accesses=24_576)

#: The largest preset that is still practical in pure Python.
LARGE = ExperimentScale(name="large", num_blocks=1 << 16, num_accesses=65_536)

_PRESETS = {scale.name: scale for scale in (TINY, SMALL, MEDIUM, LARGE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a preset by name (``tiny``, ``small``, ``medium``, ``large``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale '{name}'; available: {', '.join(sorted(_PRESETS))}"
        ) from None
