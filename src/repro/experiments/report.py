"""Plain-text rendering of experiment results (the harness's 'figures')."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.figure7 import Figure7Result
from repro.experiments.figure8 import Figure8Result
from repro.experiments.figure9 import Figure9Result
from repro.experiments.memory_neutral import MemoryNeutralResult
from repro.experiments.table1 import Table1Row
from repro.experiments.table2 import Table2Result


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_figure7(result: Figure7Result) -> str:
    """Speedup table for one Figure 7 sub-figure."""
    rows = [
        [label, f"{speedup:.2f}x"]
        for label, speedup in result.speedups.items()
    ]
    title = (
        f"Figure {result.subfigure}: speedups over PathORAM "
        f"({result.dataset}, {result.num_blocks} blocks, {result.num_accesses} accesses)"
    )
    return title + "\n" + format_table(["configuration", "speedup"], rows)


def render_figure8(result: Figure8Result) -> str:
    """Final stash occupancy for every Figure 8 configuration."""
    rows = [
        [label, str(result.final_occupancy[label])]
        for label in result.histories
    ]
    title = f"Figure 8: stash occupancy after {result.num_accesses} accesses (no eviction)"
    return title + "\n" + format_table(["configuration", "final stash blocks"], rows)


def render_figure9(result: Figure9Result) -> str:
    """Traffic reduction table (measured vs theoretical bound)."""
    rows = [
        [label, f"{result.reductions[label]:.2f}x", f"{result.theoretical_bounds[label]:.2f}x"]
        for label in result.reductions
    ]
    title = f"Figure 9: traffic reduction vs PathORAM ({result.dataset})"
    return title + "\n" + format_table(["configuration", "measured", "upper bound"], rows)


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Memory-requirement table."""
    body = []
    for row in rows:
        cells = row.formatted()
        body.append(
            [cells["workload"], cells["insecure"], cells["pathoram"], cells["laoram"], cells["fat"]]
        )
    title = "Table I: embedding table memory requirement"
    return title + "\n" + format_table(
        ["workload", "Insecure", "PathORAM", "LAORAM", "Fat"], body
    )


def render_table2(result: Table2Result) -> str:
    """Dummy-reads-per-access table."""
    datasets = list(next(iter(result.dummy_reads.values())).keys())
    body = [
        [config] + [f"{result.dummy_reads[config][dataset]:.3f}" for dataset in datasets]
        for config in result.dummy_reads
    ]
    title = "Table II: average dummy reads per data access"
    return title + "\n" + format_table(["configuration"] + datasets, body)


def render_memory_neutral(result: MemoryNeutralResult) -> str:
    """Summary of the memory-neutral comparison."""
    lines = [
        "Memory-neutral comparison (Section VIII-C)",
        f"  normal tree bucket {result.normal_bucket_size}: "
        f"{result.normal_memory_bytes} bytes, {result.normal_dummy_reads} dummy reads",
        f"  fat tree {result.fat_root_bucket_size}->{result.fat_leaf_bucket_size}: "
        f"{result.fat_memory_bytes} bytes, {result.fat_dummy_reads} dummy reads",
        f"  fat tree memory saving: {result.fat_memory_saving_fraction:.1%}",
        f"  dummy read reduction:   {result.dummy_read_reduction_fraction:.1%}",
    ]
    return "\n".join(lines)


def render_speedup_summary(speedups: Mapping[str, Mapping[str, float]]) -> str:
    """Cross-dataset speedup matrix (datasets as columns)."""
    datasets = list(speedups.keys())
    configs = list(next(iter(speedups.values())).keys())
    rows = [
        [config] + [f"{speedups[dataset][config]:.2f}x" for dataset in datasets]
        for config in configs
    ]
    return format_table(["configuration"] + datasets, rows)
