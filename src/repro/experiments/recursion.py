"""Lookahead amortization of the recursive position map.

A recursive position map charges one recursion walk per position-map
update, so the interesting number is *walks per logical access* across
engine families: PathORAM and RingORAM remap exactly one block per
access (1.0 walks/access, minus stash-hit effects), while LAORAM remaps
a whole superblock per charged walk — repeated accesses to a bin's
blocks ride the same update, which is exactly the lookahead batching
the paper banks on.  This experiment replays the same Zipf trace
through each family twice, once with the dense map and once with the
recursion enabled, and reports:

* the amortization (``posmap_*`` walks per logical access),
* the recursion's byte overhead relative to main-tree traffic, and
* the honest client-memory reduction (dense array vs recursion top map
  plus per-level stashes), per the revised ``client_memory_bytes``
  contract.

Main-tree bit-identity between the dense and recursive runs is asserted
on every row — the recursion must change *where the map lives*, never
what the engine does.  The committed sweep (2^20-2^23 blocks) lives in
``BENCH_engine_throughput.json`` via ``benchmarks/bench_engine_throughput.py
--mode recursion``; this module is the importable harness the tests and
docs drive at reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError
from repro.experiments.configs import build_engine
from repro.oram.config import ORAMConfig

#: Families in the amortization table -> their configuration labels.
RECURSION_FAMILY_LABELS: dict[str, str] = {
    "laoram": "Normal/S4",
    "pathoram": "PathORAM",
    "ringoram": "RingORAM",
}

RECURSION_FAMILIES: tuple[str, ...] = tuple(RECURSION_FAMILY_LABELS)


@dataclass(frozen=True)
class RecursionAmortizationRow:
    """One (family, size) cell of the lookahead-amortization table."""

    family: str
    label: str
    num_blocks: int
    num_accesses: int
    num_levels: int
    positions_per_block: int
    posmap_walks: int
    posmap_bytes: int
    main_tree_bytes: int
    client_memory_dense_bytes: int
    client_memory_recursive_bytes: int
    bit_identical: bool

    @property
    def walks_per_access(self) -> float:
        """Charged recursion walks per logical access (the amortization)."""
        return self.posmap_walks / max(1, self.num_accesses)

    @property
    def posmap_traffic_fraction(self) -> float:
        """Recursion bytes relative to main-tree bytes (the overhead)."""
        if self.main_tree_bytes == 0:
            return 0.0
        return self.posmap_bytes / self.main_tree_bytes

    @property
    def client_memory_reduction(self) -> float:
        """How much smaller the recursive client footprint is (x)."""
        return self.client_memory_dense_bytes / max(
            1, self.client_memory_recursive_bytes
        )


#: Main-tree snapshot fields the dense/recursive runs must agree on.
_CORE_FIELDS = (
    "logical_accesses",
    "path_reads",
    "path_writes",
    "dummy_reads",
    "bytes_read",
    "bytes_written",
    "stash_peak",
    "background_evictions",
)


def _run(label, config, addresses):
    engine = build_engine(label, config, fast=True)
    engine.run_trace(addresses)
    return engine


def run_recursion_amortization(
    families: Sequence[str] = RECURSION_FAMILIES,
    num_blocks_list: Sequence[int] = (1 << 14,),
    num_accesses: int = 5_000,
    positions_per_block: int = 64,
    cutoff_bytes: int = 1 << 12,
    block_size_bytes: int = 64,
    zipf_exponent: float = 1.1,
    seed: int = 3,
) -> list[RecursionAmortizationRow]:
    """Measure the amortization table for every (family, size) pair.

    The default cutoff is deliberately small so reduced-scale runs still
    build at least one recursion level; the committed full-scale sweep
    uses the production 64 KiB cutoff.
    """
    unknown = [
        family for family in families if family not in RECURSION_FAMILY_LABELS
    ]
    if unknown:
        raise ConfigurationError(f"unknown engine families: {unknown}")
    rows: list[RecursionAmortizationRow] = []
    for num_blocks in num_blocks_list:
        trace = ZipfTraceGenerator(
            num_blocks, exponent=zipf_exponent, seed=7
        ).generate(num_accesses)
        for family in families:
            label = RECURSION_FAMILY_LABELS[family]
            base = ORAMConfig(
                num_blocks=num_blocks,
                block_size_bytes=block_size_bytes,
                seed=seed,
                posmap_positions_per_block=positions_per_block,
                posmap_cutoff_bytes=cutoff_bytes,
            )
            dense = _run(label, base, trace.addresses)
            dense_snapshot = dense.statistics
            dense_leaves = dense.position_map.as_array()
            dense_cmb = dense.client_memory_bytes()
            recursive = _run(
                label,
                base.with_overrides(recursive_posmap=True),
                trace.addresses,
            )
            snapshot = recursive.statistics
            identical = bool(
                np.array_equal(dense_leaves, recursive.position_map.as_array())
            ) and all(
                getattr(dense_snapshot, name) == getattr(snapshot, name)
                for name in _CORE_FIELDS
            )
            rows.append(
                RecursionAmortizationRow(
                    family=family,
                    label=label,
                    num_blocks=num_blocks,
                    num_accesses=num_accesses,
                    num_levels=recursive.position_map.num_levels,
                    positions_per_block=positions_per_block,
                    posmap_walks=snapshot.posmap_path_reads,
                    posmap_bytes=snapshot.posmap_total_bytes,
                    main_tree_bytes=snapshot.bytes_read
                    + snapshot.bytes_written,
                    client_memory_dense_bytes=dense_cmb,
                    client_memory_recursive_bytes=recursive.client_memory_bytes(),
                    bit_identical=identical,
                )
            )
    return rows


def render_recursion_table(
    rows: Sequence[RecursionAmortizationRow],
    title: Optional[str] = None,
) -> str:
    """Aligned text table of the amortization sweep."""
    from repro.experiments.report import format_table

    body = [
        [
            row.family,
            str(row.num_blocks),
            str(row.num_levels),
            f"{row.walks_per_access:.3f}",
            f"{100 * row.posmap_traffic_fraction:.1f}%",
            f"{row.client_memory_reduction:.0f}x",
            "yes" if row.bit_identical else "NO",
        ]
        for row in rows
    ]
    table = format_table(
        [
            "family",
            "blocks",
            "levels",
            "walks/access",
            "posmap/main traffic",
            "client-mem reduction",
            "bit-identical",
        ],
        body,
    )
    header = title if title is not None else (
        "Recursive position map: lookahead amortization"
    )
    return header + "\n" + table


if __name__ == "__main__":
    print(render_recursion_table(run_recursion_amortization()))
