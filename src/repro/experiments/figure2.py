"""Figure 2: embedding-table access pattern of the first 10,000 Kaggle samples.

The paper's Figure 2 scatter-plots the accessed embedding index for each of
the first 10k training samples and observes that accesses are essentially
random apart from a narrow, heavily repeated band at low indices.  This
module regenerates the underlying data from the synthetic Kaggle trace and
summarises the two properties the figure is meant to convey: the spread of
the random bulk and the concentration of the hot band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.kaggle import KAGGLE_LARGEST_TABLE_ROWS, SyntheticKaggleTrace


@dataclass(frozen=True)
class Figure2Result:
    """Data behind Figure 2."""

    indices: np.ndarray
    num_blocks: int
    hot_band_fraction: float
    unique_fraction: float
    coverage_fraction: float

    @property
    def looks_random_with_hot_band(self) -> bool:
        """The qualitative claim of the figure: mostly random, small hot band."""
        return self.unique_fraction > 0.5 and 0.01 < self.hot_band_fraction < 0.5


def run_figure2(
    num_accesses: int = 10_000,
    num_blocks: int = KAGGLE_LARGEST_TABLE_ROWS,
    hot_band_size: int = 512,
    seed: int = 0,
) -> Figure2Result:
    """Regenerate the access-pattern data of Figure 2."""
    trace = SyntheticKaggleTrace(
        num_blocks=num_blocks, hot_band_size=hot_band_size, seed=seed
    ).generate(num_accesses)
    stats = trace.statistics(hot_band_size=hot_band_size)
    coverage = stats.num_unique_accessed / num_blocks
    return Figure2Result(
        indices=trace.addresses,
        num_blocks=num_blocks,
        hot_band_fraction=stats.hot_band_fraction,
        unique_fraction=stats.num_unique_accessed / stats.num_accesses,
        coverage_fraction=coverage,
    )
