"""Table II: average dummy reads per access across datasets and configurations.

Dummy reads are the background-eviction path fetches triggered when the
client stash exceeds 500 blocks (drained down to 50).  The paper reports the
average number of dummy reads per logical access for the normal and fat trees
at superblock sizes 4 and 8 on the four workloads; the fat tree cuts dummy
reads by roughly 3x and the real-model workloads (Kaggle, XNLI) incur far
fewer dummy reads than the adversarial permutation stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import make_trace
from repro.exceptions import ConfigurationError
from repro.experiments.configs import build_oram_config
from repro.experiments.metrics import ExperimentResult
from repro.experiments.runner import run_configuration
from repro.experiments.scale import ExperimentScale, SMALL
from repro.oram.eviction import EvictionPolicy

#: Row order of Table II.
TABLE2_CONFIGS: tuple[str, ...] = ("Fat/S8", "Fat/S4", "Normal/S8", "Normal/S4")

#: Column order of Table II.
TABLE2_DATASETS: tuple[str, ...] = ("permutation", "gaussian", "kaggle", "xnli")


@dataclass(frozen=True)
class Table2Result:
    """Average dummy reads per access, indexed by configuration and dataset."""

    dummy_reads: dict[str, dict[str, float]]
    results: dict[str, dict[str, ExperimentResult]]

    def value(self, config: str, dataset: str) -> float:
        """Dummy reads per access for one cell of the table."""
        try:
            return self.dummy_reads[config][dataset]
        except KeyError:
            raise ConfigurationError(f"no cell for ({config}, {dataset})") from None

    def fat_vs_normal_reduction(self, superblock: int, dataset: str) -> float:
        """Factor by which the fat tree reduces dummy reads for one dataset."""
        normal = self.value(f"Normal/S{superblock}", dataset)
        fat = self.value(f"Fat/S{superblock}", dataset)
        if normal == 0.0:
            return 1.0
        return normal / max(fat, 1e-9)


def run_table2(
    scale: ExperimentScale = SMALL,
    configs: tuple[str, ...] = TABLE2_CONFIGS,
    datasets: tuple[str, ...] = TABLE2_DATASETS,
    eviction: EvictionPolicy | None = None,
    seed: int = 0,
) -> Table2Result:
    """Reproduce Table II at the requested scale."""
    eviction = eviction if eviction is not None else EvictionPolicy.paper_default()
    oram_config = build_oram_config(
        num_blocks=scale.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        seed=seed,
    )
    dummy: dict[str, dict[str, float]] = {}
    results: dict[str, dict[str, ExperimentResult]] = {}
    for config_offset, label in enumerate(configs):
        dummy[label] = {}
        results[label] = {}
        for dataset_offset, dataset in enumerate(datasets):
            trace = make_trace(
                dataset, scale.num_blocks, scale.num_accesses, seed=seed + dataset_offset
            )
            result = run_configuration(
                label,
                trace,
                oram_config,
                eviction=eviction,
                seed=seed + 10 * config_offset + dataset_offset,
            )
            dummy[label][dataset] = result.dummy_reads_per_access
            results[label][dataset] = result
    return Table2Result(dummy_reads=dummy, results=results)
