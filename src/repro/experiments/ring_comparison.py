"""Section VIII-G: how LAORAM relates to RingORAM.

RingORAM attacks the same bandwidth problem from an orthogonal direction (one
block per bucket on the online read).  The paper argues LAORAM superblocks
compose with RingORAM; this module quantifies the comparison available in the
reproduction: per-access traffic and simulated latency of PathORAM, RingORAM
and LAORAM on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import make_trace
from repro.experiments.configs import build_oram_config
from repro.experiments.metrics import ExperimentResult
from repro.experiments.runner import run_configuration
from repro.experiments.scale import ExperimentScale, SMALL


@dataclass(frozen=True)
class RingComparisonResult:
    """Per-engine results of the RingORAM comparison."""

    dataset: str
    results: dict[str, ExperimentResult]

    def bytes_per_access(self, label: str) -> float:
        """Average bytes moved per access for one engine."""
        return self.results[label].bytes_per_access

    def speedup_over_pathoram(self, label: str) -> float:
        """Speedup of ``label`` relative to the PathORAM baseline."""
        return self.results[label].speedup_over(self.results["PathORAM"])


def run_ring_comparison(
    scale: ExperimentScale = SMALL,
    dataset: str = "kaggle",
    laoram_label: str = "Fat/S4",
    seed: int = 0,
    fast: bool = False,
) -> RingComparisonResult:
    """Compare PathORAM, RingORAM and a LAORAM configuration on one workload.

    ``fast=True`` runs every engine on its vectorized array twin — counters
    are bit-identical to the reference engines for a fixed seed, so larger
    scales become tractable without changing the comparison.
    """
    trace = make_trace(dataset, scale.num_blocks, scale.num_accesses, seed=seed)
    oram_config = build_oram_config(
        num_blocks=scale.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        seed=seed,
    )
    results = {
        label: run_configuration(
            label, trace, oram_config, seed=seed + offset, fast=fast
        )
        for offset, label in enumerate(("PathORAM", "RingORAM", laoram_label))
    }
    return RingComparisonResult(dataset=trace.name, results=results)
