"""Table I: embedding-table memory requirement of every storage organisation.

Unlike the timing experiments, Table I is pure arithmetic over the storage
layouts, so it is evaluated at the paper's full sizes: 8M and 16M entry
synthetic tables (128-byte rows), the largest Kaggle table (10,131,227 rows
of 128 bytes) and the XLM-R/XNLI table (262,144 rows of 4 KiB).  Columns are
the unprotected table, the PathORAM tree, the LAORAM tree (same geometry as
PathORAM — superblocks add no storage) and the fat tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.kaggle import KAGGLE_LARGEST_TABLE_ROWS
from repro.datasets.xnli import XLMR_VOCABULARY_SIZE
from repro.oram.config import ORAMConfig
from repro.utils.units import format_bytes

#: The four table configurations of Table I: name -> (rows, row bytes).
TABLE1_WORKLOADS: dict[str, tuple[int, int]] = {
    "8M": (8 * 1024 * 1024, 128),
    "16M": (16 * 1024 * 1024, 128),
    "Kaggle": (KAGGLE_LARGEST_TABLE_ROWS, 128),
    "XNLI": (XLMR_VOCABULARY_SIZE, 4096),
}


@dataclass(frozen=True)
class Table1Row:
    """Memory requirement of one workload under each organisation (bytes)."""

    workload: str
    insecure_bytes: int
    pathoram_bytes: int
    laoram_bytes: int
    fat_bytes: int

    @property
    def pathoram_overhead(self) -> float:
        """PathORAM tree size relative to the raw table."""
        return self.pathoram_bytes / self.insecure_bytes

    @property
    def fat_overhead_vs_normal(self) -> float:
        """Extra memory the fat tree uses compared to the normal LAORAM tree."""
        return self.fat_bytes / self.laoram_bytes

    def formatted(self) -> dict[str, str]:
        """Human-readable cell values."""
        return {
            "workload": self.workload,
            "insecure": format_bytes(self.insecure_bytes),
            "pathoram": format_bytes(self.pathoram_bytes),
            "laoram": format_bytes(self.laoram_bytes),
            "fat": format_bytes(self.fat_bytes),
        }


def run_table1(
    workloads: dict[str, tuple[int, int]] | None = None,
    bucket_size: int = 4,
) -> list[Table1Row]:
    """Compute every row of Table I."""
    workloads = workloads if workloads is not None else TABLE1_WORKLOADS
    rows = []
    for name, (num_rows, row_bytes) in workloads.items():
        base = ORAMConfig(
            num_blocks=num_rows,
            block_size_bytes=row_bytes,
            bucket_size=bucket_size,
            metadata_bytes_per_block=0,
        )
        # Table I's fat-tree column corresponds to the per-level-increment
        # growth policy (the only one whose ~25% overhead matches the paper).
        fat = base.with_overrides(fat_tree=True, fat_tree_growth="increment")
        rows.append(
            Table1Row(
                workload=name,
                insecure_bytes=base.insecure_memory_bytes,
                pathoram_bytes=base.server_memory_bytes,
                laoram_bytes=base.server_memory_bytes,
                fat_bytes=fat.server_memory_bytes,
            )
        )
    return rows
