"""Section VIII-C: memory-neutral fat-tree vs enlarged normal tree.

The fat tree uses more memory than a normal tree with the same leaf bucket
size, so the paper also compares against a normal tree whose buckets are
enlarged uniformly until it is *at least as big* as the fat tree: a normal
tree of bucket size 6 versus a fat tree whose buckets shrink 9 (root) to 5
(leaf).  Even with the memory handicap the fat tree triggers ~12% fewer dummy
reads while using ~17% less memory, because it concentrates the extra slots
where write-backs actually land (near the root).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.permutation import PermutationTraceGenerator
from repro.experiments.scale import ExperimentScale, SMALL
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy


@dataclass(frozen=True)
class MemoryNeutralResult:
    """Dummy reads and footprints of the two memory-comparable organisations."""

    normal_bucket_size: int
    fat_leaf_bucket_size: int
    fat_root_bucket_size: int
    normal_memory_bytes: int
    fat_memory_bytes: int
    normal_dummy_reads: int
    fat_dummy_reads: int
    num_accesses: int

    @property
    def fat_memory_saving_fraction(self) -> float:
        """How much less memory the fat tree uses than the enlarged normal tree."""
        return 1.0 - self.fat_memory_bytes / self.normal_memory_bytes

    @property
    def dummy_read_reduction_fraction(self) -> float:
        """Fraction of dummy reads removed by the fat tree."""
        if self.normal_dummy_reads == 0:
            return 0.0
        return 1.0 - self.fat_dummy_reads / self.normal_dummy_reads


def run_memory_neutral(
    scale: ExperimentScale = SMALL,
    superblock_size: int = 8,
    normal_bucket_size: int = 6,
    fat_leaf_bucket_size: int = 5,
    fat_root_bucket_size: int = 9,
    eviction: EvictionPolicy | None = None,
    seed: int = 0,
) -> MemoryNeutralResult:
    """Reproduce the memory-neutral comparison of Section VIII-C.

    The default eviction threshold is lower than the paper's 500 because the
    reduced-scale trees build up proportionally less stash pressure; the
    comparison (fat vs enlarged-normal) is unaffected.
    """
    eviction = eviction if eviction is not None else EvictionPolicy(
        enabled=True, trigger_threshold=100, drain_target=10
    )
    trace = PermutationTraceGenerator(scale.num_blocks, seed=seed).generate(
        scale.num_accesses
    )

    normal_config = ORAMConfig(
        num_blocks=scale.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        bucket_size=normal_bucket_size,
        seed=seed,
    )
    fat_config = ORAMConfig(
        num_blocks=scale.num_blocks,
        block_size_bytes=scale.block_size_bytes,
        bucket_size=fat_leaf_bucket_size,
        fat_tree=True,
        root_bucket_size=fat_root_bucket_size,
        seed=seed + 1,
    )

    normal_client = LAORAMClient(
        LAORAMConfig(oram=normal_config, superblock_size=superblock_size),
        eviction=eviction,
    )
    normal_client.run_trace(trace.addresses)
    fat_client = LAORAMClient(
        LAORAMConfig(oram=fat_config, superblock_size=superblock_size),
        eviction=eviction,
    )
    fat_client.run_trace(trace.addresses)

    return MemoryNeutralResult(
        normal_bucket_size=normal_bucket_size,
        fat_leaf_bucket_size=fat_leaf_bucket_size,
        fat_root_bucket_size=fat_root_bucket_size,
        normal_memory_bytes=normal_client.server_memory_bytes,
        fat_memory_bytes=fat_client.server_memory_bytes,
        normal_dummy_reads=normal_client.statistics.dummy_reads,
        fat_dummy_reads=fat_client.statistics.dummy_reads,
        num_accesses=len(trace),
    )
