"""Dependency-free ASCII charts for the evaluation harness.

The paper presents its results as bar charts (speedups, traffic reduction)
and line charts (stash growth).  Without a plotting dependency the harness
renders the same data as ASCII, which is enough to eyeball the shape of a
result directly in a terminal or CI log.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "x",
) -> str:
    """Horizontal bar chart, one bar per labelled value (Fig. 7/9 style)."""
    if not values:
        raise ValueError("values must be non-empty")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must contain a positive maximum")
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Overlayed line chart of one or more series (Fig. 8 style).

    Each series is resampled to ``width`` columns; rows are occupancy
    thresholds from the global maximum down to zero.  Series are drawn with
    distinct marker characters listed in the legend.
    """
    if not series:
        raise ValueError("series must be non-empty")
    if any(len(values) == 0 for values in series.values()):
        raise ValueError("every series must contain at least one point")
    peak = max(max(values) for values in series.values())
    peak = peak if peak > 0 else 1.0
    markers = {label: marker for label, marker in zip(series, "*o+x@%")}
    lines = [title] if title else []
    for row in range(height, 0, -1):
        threshold = peak * row / height
        cells = []
        for column in range(width):
            cell = " "
            for label, values in series.items():
                index = min(len(values) - 1, int(column * len(values) / width))
                if values[index] >= threshold:
                    cell = markers[label]
            cells.append(cell)
        lines.append(f"{threshold:>10.0f} |" + "".join(cells))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "  ".join(f"{marker}={label}" for label, marker in markers.items())
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
