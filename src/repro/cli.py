"""Command-line entry point regenerating the paper's tables and figures.

Examples::

    laoram-repro table1
    laoram-repro figure7 --subfigure 7e --scale small
    laoram-repro table2 --scale tiny
    laoram-repro all --scale tiny
    laoram-repro sharded --num-blocks 65536 --num-shards 8 --num-workers 4
    laoram-repro serve --num-workers 2 --requests 500 --arrival bursty
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Sequence

from repro.datasets.zipf import ZipfTraceGenerator
from repro.experiments import report
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure7 import SUBFIGURES, run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.memory_neutral import run_memory_neutral
from repro.experiments.scale import get_scale
from repro.experiments.sharded import SHARDABLE_FAMILIES, ShardedRunner
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.serving import AsyncShardedService, run_zipf_workload


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "large"),
        help="experiment scale preset (default: small)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="laoram-repro",
        description="Regenerate the LAORAM paper's evaluation tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig2 = subparsers.add_parser("figure2", help="Kaggle access-pattern summary")
    fig2.add_argument("--accesses", type=int, default=10_000)

    fig7 = subparsers.add_parser("figure7", help="speedup over PathORAM")
    fig7.add_argument("--subfigure", default="7e", choices=sorted(SUBFIGURES))
    _add_scale_argument(fig7)

    fig8 = subparsers.add_parser("figure8", help="stash growth, fat vs normal tree")
    _add_scale_argument(fig8)

    fig9 = subparsers.add_parser("figure9", help="memory traffic reduction")
    _add_scale_argument(fig9)

    subparsers.add_parser("table1", help="memory requirement of each organisation")

    tab2 = subparsers.add_parser("table2", help="average dummy reads per access")
    _add_scale_argument(tab2)

    neutral = subparsers.add_parser(
        "memory-neutral", help="fat tree vs enlarged normal tree"
    )
    _add_scale_argument(neutral)

    everything = subparsers.add_parser("all", help="run every experiment")
    _add_scale_argument(everything)

    def _add_sharding_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--num-blocks", type=int, default=1 << 14)
        sub.add_argument("--num-shards", type=int, default=4)
        sub.add_argument(
            "--num-workers",
            type=int,
            default=None,
            help="worker processes (<= shards); omit for the in-process "
            "sequential backend — results are bit-identical either way",
        )
        sub.add_argument(
            "--family",
            default="laoram",
            choices=sorted(SHARDABLE_FAMILIES),
        )
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--zipf-exponent", type=float, default=1.1)

    sharded = subparsers.add_parser(
        "sharded",
        help="replay a Zipf trace through the (optionally process-parallel) "
        "sharded runner",
    )
    _add_sharding_arguments(sharded)
    sharded.add_argument("--num-accesses", type=int, default=20_000)

    serve = subparsers.add_parser(
        "serve",
        help="drive the asyncio serving front-end with a bursty/open Zipf "
        "workload and report latency percentiles",
    )
    _add_sharding_arguments(serve)
    serve.add_argument("--requests", type=int, default=300)
    serve.add_argument("--request-size", type=int, default=16)
    serve.add_argument("--arrival", default="bursty", choices=("bursty", "open"))
    serve.add_argument("--burst-size", type=int, default=8)
    serve.add_argument("--rate-rps", type=float, default=1000.0)
    return parser


def _build_runner(args: argparse.Namespace) -> ShardedRunner:
    return ShardedRunner(
        num_blocks=args.num_blocks,
        num_shards=args.num_shards,
        family=args.family,
        seed=args.seed,
        num_workers=args.num_workers,
    )


def run_sharded(args: argparse.Namespace) -> str:
    """Replay a Zipf trace through the sharded runner; summarize the merge."""
    import time

    trace = ZipfTraceGenerator(
        args.num_blocks, exponent=args.zipf_exponent, seed=args.seed + 7
    ).generate(args.num_accesses)
    with _build_runner(args) as runner:
        start = time.perf_counter()
        snapshot = runner.run_trace(trace.addresses)
        wall = time.perf_counter() - start
        occupancies = runner.stash_occupancies()
        simulated = runner.simulated_time_parallel_s
    backend = (
        f"{args.num_workers} worker processes"
        if args.num_workers
        else "sequential in-process"
    )
    return (
        f"Sharded run: {args.num_accesses} accesses, {args.num_blocks} blocks, "
        f"{args.num_shards} shards ({args.family}, {backend})\n"
        f"  wall-clock: {wall:.2f}s ({args.num_accesses / wall:.0f} acc/s)\n"
        f"  simulated (slowest shard): {simulated:.4f}s\n"
        f"  path reads: {snapshot.path_reads}  "
        f"dummy reads: {snapshot.dummy_reads}\n"
        f"  stash peak: {snapshot.stash_peak}  "
        f"per-shard occupancy: {occupancies}"
    )


def run_serve(args: argparse.Namespace) -> str:
    """Run the asyncio serving workload; report latency percentiles."""

    async def _run() -> tuple:
        with _build_runner(args) as runner:
            async with AsyncShardedService(runner) as service:
                run_report = await run_zipf_workload(
                    service,
                    num_requests=args.requests,
                    request_size=args.request_size,
                    arrival=args.arrival,
                    burst_size=args.burst_size,
                    rate_rps=args.rate_rps,
                    zipf_exponent=args.zipf_exponent,
                    seed=args.seed + 7,
                )
            if runner.is_parallel:
                runner.executor.refresh_states()
            return run_report, runner.merged_snapshot()

    run_report, snapshot = asyncio.run(_run())
    latency = run_report.latency
    backend = (
        f"{args.num_workers} worker processes"
        if args.num_workers
        else "sequential in-process"
    )
    return (
        f"Serving run: {args.requests} requests x {args.request_size} ids, "
        f"{args.arrival} arrivals at {args.rate_rps:.0f} req/s "
        f"({args.family}, {args.num_shards} shards, {backend})\n"
        f"  throughput: {run_report.throughput_rps:.0f} req/s "
        f"({run_report.throughput_ids_per_s:.0f} ids/s)\n"
        f"  latency p50/p95/p99: {latency.p50_ms:.2f} / {latency.p95_ms:.2f} / "
        f"{latency.p99_ms:.2f} ms (mean batch {latency.mean_batch_size:.1f})\n"
        f"  oblivious accesses served: {snapshot.logical_accesses}"
    )


def run_command(args: argparse.Namespace) -> str:
    """Execute the selected experiment and return its textual report."""
    if args.command == "sharded":
        return run_sharded(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "figure2":
        result = run_figure2(num_accesses=args.accesses)
        return (
            "Figure 2: Kaggle access pattern\n"
            f"  accesses: {len(result.indices)}\n"
            f"  unique fraction: {result.unique_fraction:.2f}\n"
            f"  hot band fraction: {result.hot_band_fraction:.2f}\n"
            f"  table coverage: {result.coverage_fraction:.4f}"
        )
    if args.command == "figure7":
        return report.render_figure7(run_figure7(args.subfigure, get_scale(args.scale)))
    if args.command == "figure8":
        return report.render_figure8(run_figure8(get_scale(args.scale)))
    if args.command == "figure9":
        return report.render_figure9(run_figure9(get_scale(args.scale)))
    if args.command == "table1":
        return report.render_table1(run_table1())
    if args.command == "table2":
        return report.render_table2(run_table2(get_scale(args.scale)))
    if args.command == "memory-neutral":
        return report.render_memory_neutral(run_memory_neutral(get_scale(args.scale)))
    if args.command == "all":
        scale = get_scale(args.scale)
        sections = [
            report.render_table1(run_table1()),
            report.render_figure7(run_figure7("7e", scale)),
            report.render_figure8(run_figure8(scale)),
            report.render_figure9(run_figure9(scale)),
            report.render_table2(run_table2(scale)),
            report.render_memory_neutral(run_memory_neutral(scale)),
        ]
        return "\n\n".join(sections)
    raise ValueError(f"unknown command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(run_command(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
