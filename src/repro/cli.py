"""Command-line entry point regenerating the paper's tables and figures.

Examples::

    laoram-repro table1
    laoram-repro figure7 --subfigure 7e --scale small
    laoram-repro table2 --scale tiny
    laoram-repro all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import report
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure7 import SUBFIGURES, run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.memory_neutral import run_memory_neutral
from repro.experiments.scale import get_scale
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "large"),
        help="experiment scale preset (default: small)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="laoram-repro",
        description="Regenerate the LAORAM paper's evaluation tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig2 = subparsers.add_parser("figure2", help="Kaggle access-pattern summary")
    fig2.add_argument("--accesses", type=int, default=10_000)

    fig7 = subparsers.add_parser("figure7", help="speedup over PathORAM")
    fig7.add_argument("--subfigure", default="7e", choices=sorted(SUBFIGURES))
    _add_scale_argument(fig7)

    fig8 = subparsers.add_parser("figure8", help="stash growth, fat vs normal tree")
    _add_scale_argument(fig8)

    fig9 = subparsers.add_parser("figure9", help="memory traffic reduction")
    _add_scale_argument(fig9)

    subparsers.add_parser("table1", help="memory requirement of each organisation")

    tab2 = subparsers.add_parser("table2", help="average dummy reads per access")
    _add_scale_argument(tab2)

    neutral = subparsers.add_parser(
        "memory-neutral", help="fat tree vs enlarged normal tree"
    )
    _add_scale_argument(neutral)

    everything = subparsers.add_parser("all", help="run every experiment")
    _add_scale_argument(everything)
    return parser


def run_command(args: argparse.Namespace) -> str:
    """Execute the selected experiment and return its textual report."""
    if args.command == "figure2":
        result = run_figure2(num_accesses=args.accesses)
        return (
            "Figure 2: Kaggle access pattern\n"
            f"  accesses: {len(result.indices)}\n"
            f"  unique fraction: {result.unique_fraction:.2f}\n"
            f"  hot band fraction: {result.hot_band_fraction:.2f}\n"
            f"  table coverage: {result.coverage_fraction:.4f}"
        )
    if args.command == "figure7":
        return report.render_figure7(run_figure7(args.subfigure, get_scale(args.scale)))
    if args.command == "figure8":
        return report.render_figure8(run_figure8(get_scale(args.scale)))
    if args.command == "figure9":
        return report.render_figure9(run_figure9(get_scale(args.scale)))
    if args.command == "table1":
        return report.render_table1(run_table1())
    if args.command == "table2":
        return report.render_table2(run_table2(get_scale(args.scale)))
    if args.command == "memory-neutral":
        return report.render_memory_neutral(run_memory_neutral(get_scale(args.scale)))
    if args.command == "all":
        scale = get_scale(args.scale)
        sections = [
            report.render_table1(run_table1()),
            report.render_figure7(run_figure7("7e", scale)),
            report.render_figure8(run_figure8(scale)),
            report.render_figure9(run_figure9(scale)),
            report.render_table2(run_table2(scale)),
            report.render_memory_neutral(run_memory_neutral(scale)),
        ]
        return "\n\n".join(sections)
    raise ValueError(f"unknown command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(run_command(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
