"""Zipfian (power-law) trace generator.

Natural-language token frequencies and many recommendation features follow a
power law; this generator is the shared machinery behind the synthetic XNLI
trace and is also exposed directly for ablation studies of how skew affects
LAORAM's advantage.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AccessTrace
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


class ZipfTraceGenerator:
    """Generates address streams with a Zipf(``exponent``) popularity profile."""

    def __init__(
        self,
        num_blocks: int,
        exponent: float = 1.1,
        shuffle_ranks: bool = True,
        seed: int = 0,
    ):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if exponent <= 0:
            raise ConfigurationError("exponent must be positive")
        self.num_blocks = num_blocks
        self.exponent = exponent
        self.shuffle_ranks = shuffle_ranks
        self.seed = seed

    def generate(self, num_accesses: int) -> AccessTrace:
        """Generate ``num_accesses`` power-law distributed addresses."""
        if num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        rng = make_rng(self.seed)
        ranks = np.arange(1, self.num_blocks + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        probabilities = weights / weights.sum()
        addresses = rng.choice(self.num_blocks, size=num_accesses, p=probabilities)
        if self.shuffle_ranks:
            # Popular ids should not be clustered at low addresses: permute the
            # identity of each rank so popularity is spread over the table.
            mapping = rng.permutation(self.num_blocks)
            addresses = mapping[addresses]
        return AccessTrace("zipf", self.num_blocks, addresses.astype(np.int64))
