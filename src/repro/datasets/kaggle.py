"""Synthetic Criteo-Kaggle workload used in place of the proprietary dataset.

The paper evaluates LAORAM on the Criteo AI Labs Ad Kaggle dataset used by
Meta's DLRM.  That dataset cannot be redistributed, so this module builds a
synthetic equivalent that reproduces the property the ORAM cares about: the
access stream to the largest embedding table looks almost uniformly random
over ~10.1M ids, with a narrow band of very hot ids accessed repeatedly
(Fig. 2 of the paper).

Two artefacts are provided:

* :class:`SyntheticKaggleTrace` — the raw embedding-access stream for ORAM
  experiments (speedups, traffic, dummy reads);
* :class:`SyntheticCriteoDataset` — full training samples (dense features,
  26 categorical features, click label) for the end-to-end DLRM example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import AccessTrace
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng

#: Number of rows in the largest Criteo-Kaggle embedding table (paper, VII-C).
KAGGLE_LARGEST_TABLE_ROWS = 10_131_227

#: DLRM uses 26 categorical (sparse) features for the Criteo datasets.
NUM_CATEGORICAL_FEATURES = 26

#: Number of dense (continuous) features per Criteo sample.
NUM_DENSE_FEATURES = 13


class SyntheticKaggleTrace:
    """Access-stream generator mimicking the Kaggle trace of Fig. 2."""

    def __init__(
        self,
        num_blocks: int = KAGGLE_LARGEST_TABLE_ROWS,
        hot_band_size: int = 512,
        hot_fraction: float = 0.12,
        seed: int = 0,
    ):
        if num_blocks < 2:
            raise ConfigurationError("num_blocks must be >= 2")
        if hot_band_size < 1 or hot_band_size >= num_blocks:
            raise ConfigurationError("hot_band_size must be in [1, num_blocks)")
        if not 0.0 <= hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be within [0, 1)")
        self.num_blocks = num_blocks
        self.hot_band_size = hot_band_size
        self.hot_fraction = hot_fraction
        self.seed = seed

    def generate(self, num_accesses: int) -> AccessTrace:
        """Generate ``num_accesses`` accesses: mostly uniform plus a hot band."""
        if num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        rng = make_rng(self.seed)
        uniform = rng.integers(0, self.num_blocks, size=num_accesses, dtype=np.int64)
        hot_mask = rng.random(num_accesses) < self.hot_fraction
        # The hot band sits at low indices, as in Fig. 2, with a mild skew
        # inside the band itself.
        ranks = np.arange(1, self.hot_band_size + 1, dtype=np.float64)
        weights = ranks ** -1.05
        weights /= weights.sum()
        hot = rng.choice(self.hot_band_size, size=int(hot_mask.sum()), p=weights)
        addresses = uniform
        addresses[hot_mask] = hot
        return AccessTrace("kaggle", self.num_blocks, addresses)


@dataclass(frozen=True)
class CriteoSample:
    """One synthetic Criteo training sample."""

    dense: np.ndarray
    categorical: np.ndarray
    label: int


class SyntheticCriteoDataset:
    """Full synthetic click-through-rate dataset for the DLRM example.

    Each sample carries 13 dense features, 26 categorical ids (one per
    feature/table) and a click label generated from a planted logistic model
    so that training has signal to learn.
    """

    def __init__(
        self,
        num_samples: int,
        table_sizes: tuple[int, ...] | None = None,
        largest_table_rows: int = 100_000,
        seed: int = 0,
    ):
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        if largest_table_rows < 2:
            raise ConfigurationError("largest_table_rows must be >= 2")
        self.num_samples = num_samples
        if table_sizes is None:
            rng_sizes = make_rng(seed + 1)
            # Small tables stay strictly smaller than the protected table so
            # that "largest table" is well defined.
            small_cap = max(11, min(2000, largest_table_rows // 2))
            small = rng_sizes.integers(10, small_cap, size=NUM_CATEGORICAL_FEATURES - 1)
            table_sizes = tuple(int(s) for s in small) + (largest_table_rows,)
        if len(table_sizes) < 1:
            raise ConfigurationError("need at least one categorical table")
        self.table_sizes = tuple(int(s) for s in table_sizes)
        self.seed = seed
        rng = make_rng(seed)
        self.dense = rng.normal(size=(num_samples, NUM_DENSE_FEATURES)).astype(np.float32)
        columns = []
        for size in self.table_sizes:
            zipf = ZipfTraceGenerator(size, exponent=1.05, seed=int(rng.integers(1 << 30)))
            columns.append(zipf.generate(num_samples).addresses)
        self.categorical = np.stack(columns, axis=1)
        # Planted logistic labelling: dense features plus a per-category bias.
        weights = rng.normal(size=NUM_DENSE_FEATURES)
        category_bias = rng.normal(scale=0.5, size=self.table_sizes[-1])
        logits = self.dense @ weights + category_bias[self.categorical[:, -1]]
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        self.labels = (rng.random(num_samples) < probabilities).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        """Number of categorical features / embedding tables."""
        return len(self.table_sizes)

    @property
    def largest_table_index(self) -> int:
        """Index of the largest (ORAM-protected) table."""
        return int(np.argmax(self.table_sizes))

    def sample(self, index: int) -> CriteoSample:
        """Return one training sample."""
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        return CriteoSample(
            dense=self.dense[index],
            categorical=self.categorical[index],
            label=int(self.labels[index]),
        )

    def batches(self, batch_size: int):
        """Iterate over (dense, categorical, labels) minibatches."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        for start in range(0, self.num_samples, batch_size):
            stop = start + batch_size
            yield (
                self.dense[start:stop],
                self.categorical[start:stop],
                self.labels[start:stop],
            )

    def largest_table_trace(self) -> AccessTrace:
        """Access stream to the largest table (the one the ORAM protects)."""
        column = self.categorical[:, self.largest_table_index]
        return AccessTrace("kaggle-dlrm", self.table_sizes[self.largest_table_index], column)
