"""Registry mapping the paper's workload names to trace generators."""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import AccessTrace
from repro.datasets.gaussian import GaussianTraceGenerator
from repro.datasets.kaggle import SyntheticKaggleTrace
from repro.datasets.permutation import PermutationTraceGenerator
from repro.datasets.xnli import SyntheticXNLITrace
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError

_BUILDERS: dict[str, Callable[[int, int, int], AccessTrace]] = {
    "permutation": lambda blocks, accesses, seed: PermutationTraceGenerator(
        blocks, seed=seed
    ).generate(accesses),
    "gaussian": lambda blocks, accesses, seed: GaussianTraceGenerator(
        blocks, seed=seed
    ).generate(accesses),
    "kaggle": lambda blocks, accesses, seed: SyntheticKaggleTrace(
        num_blocks=blocks,
        hot_band_size=max(1, min(512, blocks // 8)),
        seed=seed,
    ).generate(accesses),
    "xnli": lambda blocks, accesses, seed: SyntheticXNLITrace(
        vocabulary_size=blocks, seed=seed
    ).generate(accesses),
    "zipf": lambda blocks, accesses, seed: ZipfTraceGenerator(
        blocks, seed=seed
    ).generate(accesses),
}


def available_traces() -> list[str]:
    """Names accepted by :func:`make_trace`."""
    return sorted(_BUILDERS)


def make_trace(name: str, num_blocks: int, num_accesses: int, seed: int = 0) -> AccessTrace:
    """Build the named workload trace.

    Args:
        name: One of :func:`available_traces` (``permutation``, ``gaussian``,
            ``kaggle``, ``xnli``, ``zipf``).
        num_blocks: Embedding-table size the trace indexes into.
        num_accesses: Length of the access stream.
        seed: Generator seed.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace '{name}'; available: {', '.join(available_traces())}"
        ) from None
    return builder(num_blocks, num_accesses, seed)
