"""Permutation trace: the worst case for stash pressure (Section VII-B).

Each epoch visits every embedding row exactly once in a fresh random order,
so within an epoch there are no repeated addresses — the configuration the
original PathORAM paper proves maximises stash-overflow probability.  The
trace can span multiple epochs; LAORAM's coalescing only pays off from the
second epoch onward because the first epoch's write-backs are what place
future superblocks on shared paths.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AccessTrace
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


class PermutationTraceGenerator:
    """Generates multi-epoch permutation access traces."""

    def __init__(self, num_blocks: int, seed: int = 0):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        self.num_blocks = num_blocks
        self.seed = seed

    def generate(self, num_accesses: int, epochs: int | None = None) -> AccessTrace:
        """Generate a trace of ``num_accesses`` accesses.

        When ``epochs`` is given, exactly that many full permutations are
        concatenated and then truncated/padded to ``num_accesses``; otherwise
        as many epochs as needed are produced.
        """
        if num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        rng = make_rng(self.seed)
        needed_epochs = epochs if epochs is not None else -(-num_accesses // self.num_blocks)
        if needed_epochs < 1:
            raise ConfigurationError("epochs must be >= 1 when provided")
        parts = [rng.permutation(self.num_blocks) for _ in range(needed_epochs)]
        addresses = np.concatenate(parts)[:num_accesses]
        if addresses.size < num_accesses:
            # The caller asked for more accesses than the requested epochs
            # contain; repeat the epochs until the request is satisfied.
            reps = -(-num_accesses // addresses.size)
            addresses = np.tile(addresses, reps)[:num_accesses]
        return AccessTrace("permutation", self.num_blocks, addresses)
