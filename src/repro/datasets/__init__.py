"""Workload generators: Permutation, Gaussian, synthetic Kaggle and XNLI traces."""

from repro.datasets.base import AccessTrace, TraceStatistics
from repro.datasets.gaussian import GaussianTraceGenerator
from repro.datasets.io import load_trace, save_trace
from repro.datasets.kaggle import SyntheticCriteoDataset, SyntheticKaggleTrace
from repro.datasets.permutation import PermutationTraceGenerator
from repro.datasets.registry import available_traces, make_trace
from repro.datasets.xnli import SyntheticXNLIDataset, SyntheticXNLITrace
from repro.datasets.zipf import ZipfTraceGenerator

__all__ = [
    "AccessTrace",
    "TraceStatistics",
    "GaussianTraceGenerator",
    "PermutationTraceGenerator",
    "ZipfTraceGenerator",
    "SyntheticKaggleTrace",
    "SyntheticCriteoDataset",
    "SyntheticXNLITrace",
    "SyntheticXNLIDataset",
    "available_traces",
    "make_trace",
    "save_trace",
    "load_trace",
]
