"""Synthetic XNLI workload used in place of the real corpus.

The paper's NLP evaluation trains the XLM-R embedding table (262,144 rows of
4 KiB) on the XNLI cross-lingual NLI corpus.  Token frequencies in natural
language are Zipfian, so the synthetic replacement draws token ids from a
Zipf distribution over the same vocabulary size; the resulting repetition
rate is what gives LAORAM its larger advantage on XNLI versus Kaggle
(Table II shows XNLI incurs the fewest dummy reads).

* :class:`SyntheticXNLITrace` — raw token-id access stream for ORAM studies.
* :class:`SyntheticXNLIDataset` — premise/hypothesis token sequences with
  3-way entailment labels for the end-to-end XLM-R-style example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import AccessTrace
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng

#: XLM-R vocabulary size used by the paper's embedding-table configuration.
XLMR_VOCABULARY_SIZE = 262_144

#: XNLI is a 3-way classification task (entailment / neutral / contradiction).
NUM_XNLI_CLASSES = 3


class SyntheticXNLITrace:
    """Zipfian token-access stream over the XLM-R vocabulary."""

    def __init__(
        self,
        vocabulary_size: int = XLMR_VOCABULARY_SIZE,
        exponent: float = 1.2,
        seed: int = 0,
    ):
        if vocabulary_size < 2:
            raise ConfigurationError("vocabulary_size must be >= 2")
        if exponent <= 0:
            raise ConfigurationError("exponent must be positive")
        self.vocabulary_size = vocabulary_size
        self.exponent = exponent
        self.seed = seed

    def generate(self, num_accesses: int) -> AccessTrace:
        """Generate ``num_accesses`` token-id accesses."""
        if num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        rng = make_rng(self.seed)
        ranks = np.arange(1, self.vocabulary_size + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        weights /= weights.sum()
        token_ranks = rng.choice(self.vocabulary_size, size=num_accesses, p=weights)
        mapping = rng.permutation(self.vocabulary_size)
        addresses = mapping[token_ranks].astype(np.int64)
        return AccessTrace("xnli", self.vocabulary_size, addresses)


@dataclass(frozen=True)
class XNLISample:
    """One synthetic premise/hypothesis pair with its entailment label."""

    tokens: np.ndarray
    label: int


class SyntheticXNLIDataset:
    """Token-sequence classification dataset for the XLM-R-style example."""

    def __init__(
        self,
        num_samples: int,
        vocabulary_size: int = 4096,
        sequence_length: int = 32,
        num_classes: int = NUM_XNLI_CLASSES,
        exponent: float = 1.2,
        seed: int = 0,
    ):
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        if vocabulary_size < num_classes:
            raise ConfigurationError("vocabulary_size must be >= num_classes")
        if sequence_length < 1:
            raise ConfigurationError("sequence_length must be >= 1")
        if num_classes < 2:
            raise ConfigurationError("num_classes must be >= 2")
        self.num_samples = num_samples
        self.vocabulary_size = vocabulary_size
        self.sequence_length = sequence_length
        self.num_classes = num_classes
        rng = make_rng(seed)
        ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        weights /= weights.sum()
        self.tokens = rng.choice(
            vocabulary_size, size=(num_samples, sequence_length), p=weights
        ).astype(np.int64)
        # Plant a signal: a hidden class prototype per label makes some tokens
        # predictive, so the example classifier has something to learn.
        prototypes = rng.normal(size=(num_classes, vocabulary_size))
        token_scores = prototypes[:, :].T  # (vocab, classes)
        sample_scores = token_scores[self.tokens].mean(axis=1)
        noisy = sample_scores + rng.normal(scale=0.05, size=sample_scores.shape)
        self.labels = np.argmax(noisy, axis=1).astype(np.int64)

    def sample(self, index: int) -> XNLISample:
        """Return one token sequence with its label."""
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        return XNLISample(tokens=self.tokens[index], label=int(self.labels[index]))

    def batches(self, batch_size: int):
        """Iterate over (tokens, labels) minibatches."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        for start in range(0, self.num_samples, batch_size):
            stop = start + batch_size
            yield self.tokens[start:stop], self.labels[start:stop]

    def token_trace(self) -> AccessTrace:
        """Flattened token-access stream (embedding-table accesses in order)."""
        return AccessTrace("xnli-tokens", self.vocabulary_size, self.tokens.reshape(-1))
