"""Gaussian trace: addresses sampled from a (clipped) normal distribution.

Used by the paper as a second synthetic workload: accesses concentrate around
the mean, so there is some natural reuse but no strong spatial locality.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AccessTrace
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


class GaussianTraceGenerator:
    """Generates address streams drawn from a normal distribution."""

    def __init__(
        self,
        num_blocks: int,
        mean_fraction: float = 0.5,
        std_fraction: float = 0.125,
        seed: int = 0,
    ):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if not 0.0 <= mean_fraction <= 1.0:
            raise ConfigurationError("mean_fraction must be within [0, 1]")
        if std_fraction <= 0.0:
            raise ConfigurationError("std_fraction must be positive")
        self.num_blocks = num_blocks
        self.mean_fraction = mean_fraction
        self.std_fraction = std_fraction
        self.seed = seed

    def generate(self, num_accesses: int) -> AccessTrace:
        """Generate ``num_accesses`` Gaussian-distributed addresses."""
        if num_accesses < 1:
            raise ConfigurationError("num_accesses must be >= 1")
        rng = make_rng(self.seed)
        mean = self.mean_fraction * self.num_blocks
        std = self.std_fraction * self.num_blocks
        samples = rng.normal(loc=mean, scale=std, size=num_accesses)
        addresses = np.clip(np.rint(samples), 0, self.num_blocks - 1).astype(np.int64)
        return AccessTrace("gaussian", self.num_blocks, addresses)
