"""Configuration objects shared by every ORAM implementation.

The central knobs mirror the paper's experimental setup:

* ``num_blocks`` and ``block_size_bytes`` define the embedding table
  (e.g. 8M x 128 B for the synthetic DLRM table, 262144 x 4 KiB for XLM-R);
* ``bucket_size`` is the per-node capacity Z (paper default 4);
* the fat-tree policy widens buckets linearly from the leaves to the root
  (Section V), e.g. leaf 4 / root 8;
* background eviction triggers once the stash exceeds a threshold and drains
  it down to a target (paper: 500 and 50).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.utils.bits import num_leaves, num_nodes, required_depth


@dataclass(frozen=True)
class FatTreePolicy:
    """Bucket-capacity schedule for the fat-tree organisation.

    Two growth modes are supported, both taken from the paper:

    * ``"linear"`` — capacities interpolate linearly from
      ``root_bucket_size`` at level 0 down to ``leaf_bucket_size`` at the
      leaves.  This matches the configuration labels used in the performance
      experiments ("8-to-4", "10-to-5", "16-to-8").
    * ``"increment"`` — capacity grows by one slot per level towards the
      root (``leaf + (depth - level)``).  For deep trees this is the policy
      whose memory overhead (~25%) matches Table I's fat-tree column.
    """

    leaf_bucket_size: int
    root_bucket_size: int
    growth: str = "linear"

    def __post_init__(self) -> None:
        if self.leaf_bucket_size < 1:
            raise ConfigurationError("leaf_bucket_size must be >= 1")
        if self.root_bucket_size < self.leaf_bucket_size:
            raise ConfigurationError(
                "root_bucket_size must be >= leaf_bucket_size "
                f"({self.root_bucket_size} < {self.leaf_bucket_size})"
            )
        if self.growth not in ("linear", "increment"):
            raise ConfigurationError("growth must be 'linear' or 'increment'")

    def capacity_at(self, level: int, depth: int) -> int:
        """Bucket capacity at ``level`` of a tree with leaf level ``depth``."""
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if not 0 <= level <= depth:
            raise ConfigurationError(f"level {level} outside [0, {depth}]")
        if self.growth == "increment":
            return self.leaf_bucket_size + (depth - level)
        span = self.root_bucket_size - self.leaf_bucket_size
        # Linear interpolation, rounded to the nearest slot.
        return self.leaf_bucket_size + round(span * (depth - level) / depth)

    def schedule(self, depth: int) -> tuple[int, ...]:
        """Full per-level capacity tuple for a tree with leaf level ``depth``."""
        return tuple(self.capacity_at(level, depth) for level in range(depth + 1))


@dataclass(frozen=True)
class ORAMConfig:
    """Static parameters of an ORAM instance.

    Attributes:
        num_blocks: Number of real data blocks (embedding rows).
        block_size_bytes: Payload size of one block on the server.
        bucket_size: Bucket capacity Z for a normal (uniform) tree, and the
            leaf capacity when a fat tree is used.
        fat_tree: Whether to use the variable-bucket fat-tree organisation.
        root_bucket_size: Root capacity of the fat tree.  Defaults to
            ``2 * bucket_size`` as in the paper.
        fat_tree_growth: ``"linear"`` (root-to-leaf interpolation, the
            performance-experiment configuration) or ``"increment"`` (one
            extra slot per level towards the root, the Table I footprint).
        eviction_threshold: Stash occupancy that triggers background eviction.
        eviction_target: Stash occupancy the background eviction drains to.
        background_eviction: Whether background (dummy-read) eviction is on.
        stash_capacity: Optional hard stash limit; exceeding it raises
            :class:`~repro.exceptions.StashOverflowError`.
        metadata_bytes_per_block: Per-block metadata (id, leaf, MAC) that is
            transferred alongside the payload.
        seed: Seed for path randomisation.
        recursive_posmap: Store the position map in recursion ORAMs
            (:class:`~repro.oram.recursive_posmap.RecursivePositionMap`)
            instead of a trusted dense array; recursion traffic is charged
            under the ``posmap_*`` counters.
        posmap_positions_per_block: Leaf labels packed per recursion block
            (χ in the PathORAM recursion construction).
        posmap_cutoff_bytes: Client-memory budget the recursion shrinks the
            top-level dense map under.
    """

    num_blocks: int
    block_size_bytes: int = 128
    bucket_size: int = 4
    fat_tree: bool = False
    root_bucket_size: Optional[int] = None
    fat_tree_growth: str = "linear"
    eviction_threshold: int = 500
    eviction_target: int = 50
    background_eviction: bool = True
    stash_capacity: Optional[int] = None
    metadata_bytes_per_block: int = 16
    seed: int = 0
    recursive_posmap: bool = False
    posmap_positions_per_block: int = 64
    posmap_cutoff_bytes: int = 1 << 16

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if self.block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")
        if self.bucket_size < 1:
            raise ConfigurationError("bucket_size must be >= 1")
        if self.eviction_target > self.eviction_threshold:
            raise ConfigurationError(
                "eviction_target must not exceed eviction_threshold"
            )
        if self.stash_capacity is not None and self.stash_capacity < 1:
            raise ConfigurationError("stash_capacity must be >= 1 when set")
        if self.root_bucket_size is not None and self.root_bucket_size < self.bucket_size:
            raise ConfigurationError("root_bucket_size must be >= bucket_size")
        if self.fat_tree_growth not in ("linear", "increment"):
            raise ConfigurationError("fat_tree_growth must be 'linear' or 'increment'")
        if self.metadata_bytes_per_block < 0:
            raise ConfigurationError("metadata_bytes_per_block must be >= 0")
        if self.posmap_positions_per_block < 2:
            raise ConfigurationError("posmap_positions_per_block must be >= 2")
        if self.posmap_cutoff_bytes < 8:
            raise ConfigurationError("posmap_cutoff_bytes must be >= 8")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Leaf level of the ORAM tree."""
        return required_depth(self.num_blocks)

    @property
    def num_leaves(self) -> int:
        """Number of leaves (distinct paths)."""
        return num_leaves(self.depth)

    @property
    def num_buckets(self) -> int:
        """Total number of buckets in the tree."""
        return num_nodes(self.depth)

    @property
    def fat_tree_policy(self) -> Optional[FatTreePolicy]:
        """The capacity schedule when ``fat_tree`` is enabled, else ``None``."""
        if not self.fat_tree:
            return None
        root = self.root_bucket_size
        if root is None:
            root = 2 * self.bucket_size
        return FatTreePolicy(
            leaf_bucket_size=self.bucket_size,
            root_bucket_size=root,
            growth=self.fat_tree_growth,
        )

    def bucket_capacities(self) -> tuple[int, ...]:
        """Per-level bucket capacities from root (index 0) to leaf."""
        policy = self.fat_tree_policy
        if policy is None:
            return tuple(self.bucket_size for _ in range(self.depth + 1))
        return policy.schedule(self.depth)

    # ------------------------------------------------------------------
    # Memory footprints (Table I)
    # ------------------------------------------------------------------
    @property
    def stored_block_bytes(self) -> int:
        """Bytes one block occupies on the server (payload + metadata)."""
        return self.block_size_bytes + self.metadata_bytes_per_block

    @property
    def insecure_memory_bytes(self) -> int:
        """Footprint of the table with no ORAM protection."""
        return self.num_blocks * self.block_size_bytes

    @property
    def server_memory_bytes(self) -> int:
        """Footprint of the ORAM tree on the server (all slots, real or dummy)."""
        capacities = self.bucket_capacities()
        total_slots = 0
        for level, capacity in enumerate(capacities):
            total_slots += capacity * (1 << level)
        return total_slots * self.stored_block_bytes

    @property
    def total_slots(self) -> int:
        """Total number of block slots in the tree."""
        return sum(capacity * (1 << level) for level, capacity in enumerate(self.bucket_capacities()))

    def with_overrides(self, **changes) -> "ORAMConfig":
        """Return a copy of this config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)
