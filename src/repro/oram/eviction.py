"""Background-eviction policy used by PathORAM, PrORAM and LAORAM clients.

Background eviction issues *dummy reads* -- path reads of uniformly random
leaves that remap nothing -- purely to create write-back opportunities and
drain the stash.  The paper triggers eviction when the stash exceeds 500
blocks and drains it down to 50 (Section VIII-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class EvictionPolicy:
    """Threshold-triggered background eviction.

    Attributes:
        enabled: Whether background eviction runs at all (Fig. 8 disables it
            to expose raw stash growth).
        trigger_threshold: Stash occupancy at which eviction starts.
        drain_target: Stash occupancy eviction drains down to.
        max_dummy_reads_per_episode: Safety valve preventing an unbounded
            eviction loop when the tree is too full to accept blocks.
    """

    enabled: bool = True
    trigger_threshold: int = 500
    drain_target: int = 50
    max_dummy_reads_per_episode: int = 10_000

    def __post_init__(self) -> None:
        if self.trigger_threshold < 1:
            raise ConfigurationError("trigger_threshold must be >= 1")
        if self.drain_target < 0:
            raise ConfigurationError("drain_target must be >= 0")
        if self.drain_target > self.trigger_threshold:
            raise ConfigurationError("drain_target must not exceed trigger_threshold")
        if self.max_dummy_reads_per_episode < 1:
            raise ConfigurationError("max_dummy_reads_per_episode must be >= 1")

    def should_trigger(self, stash_occupancy: int) -> bool:
        """Whether eviction should start at the given stash occupancy."""
        return self.enabled and stash_occupancy > self.trigger_threshold

    def should_continue(self, stash_occupancy: int, dummy_reads_so_far: int) -> bool:
        """Whether an in-progress eviction episode should issue another dummy read."""
        if not self.enabled:
            return False
        if dummy_reads_so_far >= self.max_dummy_reads_per_episode:
            return False
        return stash_occupancy > self.drain_target

    @classmethod
    def disabled(cls) -> "EvictionPolicy":
        """Policy with background eviction turned off."""
        return cls(enabled=False)

    @classmethod
    def paper_default(cls) -> "EvictionPolicy":
        """The trigger-500 / drain-to-50 policy used in the paper's Table II."""
        return cls(enabled=True, trigger_threshold=500, drain_target=50)
