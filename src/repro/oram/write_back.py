"""Greedy write-back planning shared by PathORAM, RingORAM and LAORAM.

The classic PathORAM eviction rule: after a path has been read, every stash
block whose assigned path intersects the accessed path may be written back,
and blocks are pushed as deep as possible.  Unlike the textbook description,
this planner is *occupancy aware*: it only uses the free slots a bucket
actually has.  That matters for LAORAM, which can read several paths before
writing them back, so later write-backs see buckets that earlier write-backs
already refilled.
"""

from __future__ import annotations

from repro.memory.block import Block
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage
from repro.utils.bits import common_level


def plan_greedy_write_back(
    tree: TreeStorage, stash: Stash, leaf: int
) -> dict[int, list[Block]]:
    """Choose stash blocks to write onto the path to ``leaf``.

    Returns a mapping ``level -> blocks``; chosen blocks are removed from the
    stash.  A block may be placed at ``level`` only if its assigned path and
    the accessed path share that level (the path-prefix invariant), and only
    if the target bucket still has a free slot.
    """
    depth = tree.depth
    by_level: list[list[int]] = [[] for _ in range(depth + 1)]
    for block in stash:
        level = common_level(block.leaf, leaf, depth)
        by_level[level].append(block.block_id)

    placement: dict[int, list[Block]] = {}
    pool: list[int] = []
    for level in range(depth, -1, -1):
        pool.extend(by_level[level])
        free = tree.bucket(level, leaf).free_slots
        if free <= 0:
            continue
        chosen: list[Block] = []
        while pool and len(chosen) < free:
            block = stash.pop(pool.pop())
            if block is not None:
                chosen.append(block)
        if chosen:
            placement[level] = chosen
    return placement
