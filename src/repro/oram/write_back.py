"""Greedy write-back planning shared by PathORAM, RingORAM and LAORAM.

The classic PathORAM eviction rule: after a path has been read, every stash
block whose assigned path intersects the accessed path may be written back,
and blocks are pushed as deep as possible.  Unlike the textbook description,
this planner is *occupancy aware*: it only uses the free slots a bucket
actually has.  That matters for LAORAM, which can read several paths before
writing them back, so later write-backs see buckets that earlier write-backs
already refilled.

Two planners live here:

* :func:`plan_greedy_write_back` — the per-object, single-path reference
  (the array engine replicates it slot-by-slot in
  ``ArrayStorageEngine._commit_write_back``);
* :func:`plan_batched_write_back` — the cross-path batch planner for the
  array backend: it groups the whole stash against *all* of a batch's paths
  in one vectorized xor/frexp/argsort pass, then replays the sequential
  per-path greedy selection over the shared bucket state, so committing its
  plan is bit-identical to writing the paths back one at a time;
* :func:`fused_greedy_write_back` — the allocation-free specialization the
  fused trace drivers run: same greedy rule over a plain dict stash mirror,
  valid only immediately after the target path has been emptied by a read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.memory.block import Block
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage
from repro.utils.bits import common_level

if TYPE_CHECKING:
    from repro.oram.stash import ArrayStash
    from repro.oram.tree import ArrayTreeStorage


def plan_greedy_write_back(
    tree: TreeStorage, stash: Stash, leaf: int
) -> dict[int, list[Block]]:
    """Choose stash blocks to write onto the path to ``leaf``.

    Returns a mapping ``level -> blocks``; chosen blocks are removed from the
    stash.  A block may be placed at ``level`` only if its assigned path and
    the accessed path share that level (the path-prefix invariant), and only
    if the target bucket still has a free slot.
    """
    depth = tree.depth
    by_level: list[list[int]] = [[] for _ in range(depth + 1)]
    for block in stash:
        level = common_level(block.leaf, leaf, depth)
        by_level[level].append(block.block_id)

    placement: dict[int, list[Block]] = {}
    pool: list[int] = []
    for level in range(depth, -1, -1):
        pool.extend(by_level[level])
        free = tree.bucket(level, leaf).free_slots
        if free <= 0:
            continue
        chosen: list[Block] = []
        while pool and len(chosen) < free:
            block = stash.pop(pool.pop())
            if block is not None:
                chosen.append(block)
        if chosen:
            placement[level] = chosen
    return placement


def plan_batched_write_back(
    tree: "ArrayTreeStorage", stash: "ArrayStash", leaves: Sequence[int]
) -> tuple[list[int], list[int], list[int], list[int]]:
    """Plan the write-back of several paths over the union of their buckets.

    Returns ``(rows, slot_indices, buckets, occupancies)``: the stash rows
    selected for eviction, the flat tree slot each goes to, and the new
    occupancy of every bucket the plan touched.  The caller commits with
    :meth:`ArrayTreeStorage.commit_batch_write` and removes ``rows`` from
    the stash — one scatter each, regardless of how many paths the batch
    spans.

    The plan is bit-identical to writing the paths back sequentially (the
    per-path ``_commit_write_back`` loop) because each decision is replayed
    in the same order:

    * eligibility/grouping: one vectorized xor pass computes every (path,
      row) common level at once; a stable per-path argsort keeps ascending
      row order within a level, matching the sequential planner's
      tie-breaking.  Hole rows carry the stash's sentinel leaf whose xor bit
      length is ``depth + 2``, so they sort behind every real row and are
      never pooled.
    * shared bucket state: occupancies updated by an earlier path in the
      batch are carried forward to later paths (``occ`` cache), exactly as
      a sequential loop would observe them through the tree.
    * rows taken by an earlier path are lazily skipped when a later path
      pops them (``taken``), mirroring how a sequential planner would simply
      no longer see those rows in the stash; removal never reorders the
      remaining rows, so the surviving pool order is identical.
    """
    depth = tree.depth
    tail = stash.tail
    leaves_arr = np.asarray(leaves, dtype=np.int64)
    k = int(leaves_arr.size)
    # (k, tail) matrix of xor bit lengths: frexp's exponent IS the bit
    # length for non-negative ints (and 0 for 0), exact far below 2^53.
    xor = np.bitwise_xor(stash.leaf_rows[None, :tail], leaves_arr[:, None])
    bitlen = np.empty(xor.shape, dtype=np.intc)
    np.frexp(xor, np.empty(xor.shape, dtype=np.float64), bitlen)
    order = np.argsort(bitlen, axis=1, kind="stable")
    # Per-(path, bit length) group sizes via one offset bincount; bit
    # lengths stay below ``width`` (holes peak at depth + 2).
    width = depth + 3
    counts = np.bincount(
        (bitlen + np.arange(k, dtype=np.int64)[:, None] * width).ravel(),
        minlength=k * width,
    ).reshape(k, width)[:, : depth + 1]

    # Per-(path, level) bucket ids, starting occupancies, bucket capacities
    # and flat slot bases, all gathered in a handful of small vectorized
    # passes (k x (depth+1) each, deep-to-root column order) so the greedy
    # loop below touches no numpy scalars on its hot path.
    caps_arr = np.asarray(tree.bucket_capacities, dtype=np.int64)
    levels_desc = np.arange(depth, -1, -1, dtype=np.int64)
    node_matrix = leaves_arr[:, None] >> (depth - levels_desc)[None, :]
    bucket_matrix = ((np.int64(1) << levels_desc) - 1)[None, :] + node_matrix
    base_matrix = (
        np.asarray(tree.level_base, dtype=np.int64)[levels_desc][None, :]
        + node_matrix * caps_arr[levels_desc][None, :]
    )
    occ_matrix = tree.bucket_occupancies[bucket_matrix]
    caps_desc = caps_arr[levels_desc].tolist()
    bucket_rows = bucket_matrix.tolist()
    occ_rows = occ_matrix.tolist()
    base_rows = base_matrix.tolist()
    counts_rows = counts.tolist()

    occ: dict[int, int] = {}
    occ_get = occ.get
    taken = bytearray(tail)
    rows: list[int] = []
    slots: list[int] = []
    for i in range(k):
        sorted_rows = order[i]
        cnt = counts_rows[i]
        path_buckets = bucket_rows[i]
        path_occ = occ_rows[i]
        path_bases = base_rows[i]
        # The pool is kept as a stack of half-open ranges into this path's
        # sorted row order instead of materialized row lists: in steady
        # state most pooled rows are never popped (their buckets are full),
        # so only the rows actually popped pay for a scalar array read.
        # Popping from the end of the last-appended range replays the
        # reference planner's order exactly (current level's group first,
        # each group in reverse within-group order).
        pool_ranges: list[list[int]] = []
        cursor = 0
        for j in range(depth + 1):
            group_len = cnt[j]
            if group_len:
                end = cursor + group_len
                pool_ranges.append([cursor, end])
                cursor = end
            if not pool_ranges:
                continue
            cap = caps_desc[j]
            bucket = path_buckets[j]
            occupancy = occ_get(bucket)
            if occupancy is None:
                occupancy = path_occ[j]
            if occupancy >= cap:
                continue
            base = path_bases[j]
            while occupancy < cap and pool_ranges:
                top = pool_ranges[-1]
                if top[0] == top[1]:
                    pool_ranges.pop()
                    continue
                top[1] -= 1
                row = int(sorted_rows[top[1]])
                if taken[row]:
                    continue
                taken[row] = 1
                rows.append(row)
                slots.append(base + occupancy)
                occupancy += 1
            occ[bucket] = occupancy
    return rows, slots, list(occ.keys()), list(occ.values())


def fused_greedy_write_back(
    stash_map, groups, caps, level_base, node_base, slots, occ, depth, leaf
):
    """Greedy write-back from a dict stash mirror onto a freshly read path.

    The fused trace drivers' specialization of :func:`plan_greedy_write_back`
    for the one case they are always in: the path to ``leaf`` was just
    emptied by a full read, so every bucket on it has occupancy zero and the
    plan/commit split collapses into direct scalar slot writes.  Dict
    iteration order is insertion order — the same order the row stash
    enumerates — so grouping by xor bit length, LIFO pool selection and
    ascending slot assignment are all decision-identical to the reference
    planner; the scalar occupancy write per visited level equals the
    planner's full-path scatter because unvisited levels hold zero either
    way.  Chosen blocks are deleted from ``stash_map`` in place.  ``occ``
    may be ``None`` for drivers that defer occupancy bookkeeping entirely
    (they settle it per sync via ``rebuild_path_occupancies``).

    ``groups`` is caller-owned scratch (``depth + 1`` empty lists, left
    empty again on return via clear-on-consume) so the steady-state loop
    allocates nothing beyond one small pool list.  Every stash entry is
    eligible — both leaves live below ``2**depth`` so the xor bit length
    never exceeds ``depth`` — and the level walk only runs where there is
    work: it starts at the deepest non-empty group and, whenever the pool
    drains, jumps straight to the next non-empty group instead of
    stepping through levels that cannot place anything.
    """
    present = []
    for resident, resident_leaf in stash_map.items():
        bits = (resident_leaf ^ leaf).bit_length()
        group = groups[bits]
        if not group:
            present.append(bits)
        group.append(resident)
    if not present:
        return
    present.sort()
    pool = []
    gi = 0
    ng = len(present)
    level = depth - present[0]
    while level >= 0:
        if gi < ng and present[gi] == depth - level:
            group = groups[present[gi]]
            pool.extend(group)
            group.clear()
            gi += 1
        count = len(pool)
        if not count:
            if gi == ng:
                break
            level = depth - present[gi]
            continue
        cap = caps[level]
        take = cap if cap < count else count
        node = leaf >> (depth - level)
        slot = level_base[level] + node * cap
        for offset in range(take):
            victim = pool.pop()
            slots[slot + offset] = victim
            del stash_map[victim]
        if occ is not None:
            occ[node_base[level] + node] = take
        level -= 1
