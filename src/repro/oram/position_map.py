"""Position map: the trusted mapping from block id to its assigned path."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.oram.shm import DEFAULT_ALLOCATOR, ArrayAllocator


class PositionMap:
    """Maps every real block to the leaf (path) it is currently assigned to.

    Stored client-side (GPU HBM in the paper); lookups are therefore not
    visible to the adversary.  The map is a dense numpy array because block
    ids are contiguous embedding-row indices.
    """

    def __init__(
        self,
        num_blocks: int,
        num_leaves: int,
        rng: np.random.Generator,
        allocator: Optional[ArrayAllocator] = None,
    ):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if num_leaves < 2:
            raise ConfigurationError("num_leaves must be >= 2")
        self._num_leaves = num_leaves
        alloc = allocator if allocator is not None else DEFAULT_ALLOCATOR
        self._leaves = alloc.adopt(
            "posmap.leaves",
            rng.integers(0, num_leaves, size=num_blocks, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self._leaves.size)

    @property
    def num_leaves(self) -> int:
        """Number of distinct paths blocks can map to."""
        return self._num_leaves

    def get(self, block_id: int) -> int:
        """Current leaf of ``block_id``."""
        self._check(block_id)
        return int(self._leaves[block_id])

    def set(self, block_id: int, leaf: int) -> None:
        """Reassign ``block_id`` to ``leaf``."""
        self._check(block_id)
        if not 0 <= leaf < self._num_leaves:
            raise ConfigurationError(f"leaf {leaf} outside [0, {self._num_leaves})")
        self._leaves[block_id] = leaf

    def get_many(self, block_ids) -> np.ndarray:
        """Vectorised lookup of several block ids."""
        ids = np.asarray(block_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._leaves.size):
            raise BlockNotFoundError("block id outside position map range")
        return self._leaves[ids]

    def set_many(self, block_ids, leaves) -> None:
        """Vectorised reassignment of several block ids."""
        ids = np.asarray(block_ids, dtype=np.int64)
        new_leaves = np.asarray(leaves, dtype=np.int64)
        if ids.size != new_leaves.size:
            raise ConfigurationError("block_ids and leaves must have equal length")
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._leaves.size:
            raise BlockNotFoundError("block id outside position map range")
        if new_leaves.min() < 0 or new_leaves.max() >= self._num_leaves:
            raise ConfigurationError("leaf outside position map leaf range")
        self._leaves[ids] = new_leaves

    @property
    def leaves(self) -> np.ndarray:
        """The live leaf array (no copy) for vectorised engines.

        General callers must treat this as read-only and mutate through
        :meth:`set` / :meth:`set_many` so range checks stay in force.  The
        fused trace drivers are the one sanctioned exception: they write
        leaves drawn directly from ``integers(0, num_leaves)`` — range-safe
        by construction — straight into this array, because a checked
        :meth:`set` per access is most of the cost the fused path exists to
        remove.  The array identity is stable for the engine's lifetime, so
        drivers may cache the reference (and its bound ``item`` accessor).
        """
        return self._leaves

    def as_array(self) -> np.ndarray:
        """Copy of the full map (used by tests and diagnostics)."""
        return self._leaves.copy()

    def client_memory_bytes(self) -> int:
        """Approximate client memory used by the map."""
        return int(self._leaves.nbytes)

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < self._leaves.size:
            raise BlockNotFoundError(f"block {block_id} not in position map")
