"""Position map: the trusted mapping from block id to its assigned path."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.oram.shm import DEFAULT_ALLOCATOR, ArrayAllocator


def _as_int_array(values, label: str) -> np.ndarray:
    """Coerce ``values`` to int64, rejecting non-integer inputs.

    ``np.asarray(values, dtype=np.int64)`` on float input silently
    truncates, so a fractional leaf or id would pass the range checks with
    a corrupted value; lists are validated through the same dtype
    inspection (``np.asarray`` without a dtype infers float for mixed or
    fractional content).
    """
    array = np.asarray(values)
    if array.dtype.kind in ("i", "u"):
        return array.astype(np.int64, copy=False)
    if array.size == 0:
        # An empty Python list infers float64; nothing to truncate.
        return np.empty(array.shape, dtype=np.int64)
    raise ConfigurationError(
        f"{label} must be an integer array, got dtype {array.dtype} "
        "(non-integer input would be silently truncated)"
    )


class PositionMap:
    """Maps every real block to the leaf (path) it is currently assigned to.

    Stored client-side (GPU HBM in the paper); lookups are therefore not
    visible to the adversary.  The map is a dense numpy array because block
    ids are contiguous embedding-row indices.
    """

    def __init__(
        self,
        num_blocks: int,
        num_leaves: int,
        rng: np.random.Generator,
        allocator: Optional[ArrayAllocator] = None,
    ):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if num_leaves < 2:
            raise ConfigurationError("num_leaves must be >= 2")
        self._num_leaves = num_leaves
        alloc = allocator if allocator is not None else DEFAULT_ALLOCATOR
        self._leaves = alloc.adopt(
            "posmap.leaves",
            rng.integers(0, num_leaves, size=num_blocks, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self._leaves.size)

    @property
    def num_leaves(self) -> int:
        """Number of distinct paths blocks can map to."""
        return self._num_leaves

    def get(self, block_id: int) -> int:
        """Current leaf of ``block_id``."""
        self._check(block_id)
        return int(self._leaves[block_id])

    def set(self, block_id: int, leaf: int) -> None:
        """Reassign ``block_id`` to ``leaf``."""
        self._check(block_id)
        if not 0 <= leaf < self._num_leaves:
            raise ConfigurationError(f"leaf {leaf} outside [0, {self._num_leaves})")
        self._leaves[block_id] = leaf

    def get_many(self, block_ids) -> np.ndarray:
        """Vectorised lookup of several block ids.

        Raises the same exception types as the scalar :meth:`get`:
        :class:`~repro.exceptions.BlockNotFoundError` for out-of-range ids
        and :class:`~repro.exceptions.ConfigurationError` for inputs that
        are not integers (a float array would silently truncate).
        """
        ids = _as_int_array(block_ids, "block_ids")
        if ids.size and (ids.min() < 0 or ids.max() >= self._leaves.size):
            raise BlockNotFoundError("block id outside position map range")
        return self._leaves[ids]

    def set_many(self, block_ids, leaves) -> None:
        """Vectorised reassignment of several block ids.

        Mirrors the scalar :meth:`set`: non-integer inputs raise
        :class:`~repro.exceptions.ConfigurationError` instead of being
        truncated (``leaf * 0.5`` bugs used to pass the range checks after
        the implicit ``int64`` cast), ids outside the map raise
        :class:`~repro.exceptions.BlockNotFoundError`, and leaves outside
        ``[0, num_leaves)`` raise ``ConfigurationError``.
        """
        ids = _as_int_array(block_ids, "block_ids")
        new_leaves = _as_int_array(leaves, "leaves")
        if ids.size != new_leaves.size:
            raise ConfigurationError("block_ids and leaves must have equal length")
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._leaves.size:
            raise BlockNotFoundError("block id outside position map range")
        if new_leaves.min() < 0 or new_leaves.max() >= self._num_leaves:
            raise ConfigurationError("leaf outside position map leaf range")
        self._leaves[ids] = new_leaves

    # ------------------------------------------------------------------
    # Charge-free channel (shared with RecursivePositionMap)
    # ------------------------------------------------------------------
    def peek(self, block_id: int) -> int:
        """Leaf of ``block_id`` through the metadata channel (never charged).

        Blocks fetched from a path carry their (id, leaf) metadata with
        them, so the engine may read the label of an already-transferred
        block without touching the position map obliviously.  On the dense
        map this is :meth:`get`; the recursive map implements it without a
        recursion walk.  Only sanctioned for blocks the caller just moved
        (path fetches, stash reattach) and for trusted setup.
        """
        self._check(block_id)
        return int(self._leaves[block_id])

    def peek_many(self, block_ids) -> np.ndarray:
        """Vectorised :meth:`peek` (same sanction rules)."""
        ids = _as_int_array(block_ids, "block_ids")
        if ids.size and (ids.min() < 0 or ids.max() >= self._leaves.size):
            raise BlockNotFoundError("block id outside position map range")
        return self._leaves[ids]

    def load(self, block_id: int, leaf: int) -> None:
        """Trusted-setup assignment: :meth:`set` semantics, never charged."""
        self.set(block_id, leaf)

    def load_many(self, block_ids, leaves) -> None:
        """Trusted-setup bulk assignment (:meth:`set_many`, never charged).

        Initial placement and co-location run before the first
        adversary-visible access, under the same trust assumption as
        PathORAM's bulk load; routing them through ``load_many`` keeps
        them charge-free on the recursive map.
        """
        self.set_many(block_ids, leaves)

    @property
    def leaves(self) -> np.ndarray:
        """The live leaf array (no copy) for vectorised engines.

        General callers must treat this as read-only and mutate through
        :meth:`set` / :meth:`set_many` so range checks stay in force.  The
        fused trace drivers are the one sanctioned exception: they write
        leaves drawn directly from ``integers(0, num_leaves)`` — range-safe
        by construction — straight into this array, because a checked
        :meth:`set` per access is most of the cost the fused path exists to
        remove.  The array identity is stable for the engine's lifetime, so
        drivers may cache the reference (and its bound ``item`` accessor).
        """
        return self._leaves

    def as_array(self) -> np.ndarray:
        """Copy of the full map (used by tests and diagnostics)."""
        return self._leaves.copy()

    def client_memory_bytes(self) -> int:
        """Approximate client memory used by the map."""
        return int(self._leaves.nbytes)

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < self._leaves.size:
            raise BlockNotFoundError(f"block {block_id} not in position map")
