"""Binary-tree server storage for Path-ORAM style schemes.

Supports both the uniform-bucket ("normal") tree and the fat-tree
organisation of the paper, where bucket capacity grows from the leaves to
the root.  Byte accounting always charges full bucket capacity (real plus
dummy slots) because the server must transfer indistinguishable buckets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.memory.block import Block
from repro.oram.bucket import Bucket
from repro.utils.bits import node_index, num_nodes, path_node_indices


class TreeStorage:
    """Complete binary tree of buckets stored on the (untrusted) server."""

    def __init__(
        self,
        depth: int,
        bucket_capacities: Sequence[int],
        block_size_bytes: int,
        metadata_bytes_per_block: int = 16,
    ):
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if len(bucket_capacities) != depth + 1:
            raise ConfigurationError(
                f"need {depth + 1} per-level capacities, got {len(bucket_capacities)}"
            )
        if block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")
        self.depth = depth
        self.bucket_capacities = tuple(int(c) for c in bucket_capacities)
        self.block_size_bytes = block_size_bytes
        self.metadata_bytes_per_block = metadata_bytes_per_block
        self._buckets: list[Bucket] = []
        for index in range(num_nodes(depth)):
            level = (index + 1).bit_length() - 1
            self._buckets.append(Bucket(self.bucket_capacities[level]))

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaves (paths)."""
        return 1 << self.depth

    @property
    def num_buckets(self) -> int:
        """Total number of buckets."""
        return len(self._buckets)

    def capacity_at_level(self, level: int) -> int:
        """Bucket capacity at ``level`` (root is level 0)."""
        return self.bucket_capacities[level]

    def bucket(self, level: int, leaf: int) -> Bucket:
        """The bucket at ``level`` on the path to ``leaf``."""
        return self._buckets[node_index(level, leaf, self.depth)]

    def bucket_by_index(self, index: int) -> Bucket:
        """The bucket with breadth-first ``index``."""
        return self._buckets[index]

    @property
    def stored_block_bytes(self) -> int:
        """Bytes one slot occupies on the wire (payload + metadata)."""
        return self.block_size_bytes + self.metadata_bytes_per_block

    def path_cost(self, leaf: int) -> tuple[int, int]:
        """Return ``(num_buckets, num_bytes)`` for transferring one full path."""
        slots = sum(self.bucket_capacities)
        return self.depth + 1, slots * self.stored_block_bytes

    @property
    def total_slots(self) -> int:
        """Total number of slots (real + dummy) in the tree."""
        return sum(
            capacity * (1 << level)
            for level, capacity in enumerate(self.bucket_capacities)
        )

    @property
    def server_memory_bytes(self) -> int:
        """Total server footprint of the tree."""
        return self.total_slots * self.stored_block_bytes

    # ------------------------------------------------------------------
    # Path operations
    # ------------------------------------------------------------------
    def read_path(self, leaf: int) -> list[Block]:
        """Remove and return every real block on the path to ``leaf``."""
        blocks: list[Block] = []
        for index in path_node_indices(leaf, self.depth):
            blocks.extend(self._buckets[index].pop_all())
        return blocks

    def peek_path(self, leaf: int) -> list[Block]:
        """Return (without removing) every real block on the path to ``leaf``."""
        blocks: list[Block] = []
        for index in path_node_indices(leaf, self.depth):
            blocks.extend(self._buckets[index].blocks)
        return blocks

    def write_path(self, leaf: int, placement: dict[int, list[Block]]) -> None:
        """Write ``placement`` (level -> blocks) onto the path to ``leaf``.

        Buckets on the path are assumed to have been emptied by a prior
        :meth:`read_path`; writing more blocks than a bucket's capacity is an
        error, as it would correspond to losing data on a real server.
        """
        for level, blocks in placement.items():
            bucket = self.bucket(level, leaf)
            if len(bucket) + len(blocks) > bucket.capacity:
                raise ConfigurationError(
                    f"placement overflows bucket at level {level}: "
                    f"{len(bucket)} + {len(blocks)} > {bucket.capacity}"
                )
            bucket.extend(blocks)

    # ------------------------------------------------------------------
    # Bulk operations / diagnostics
    # ------------------------------------------------------------------
    def try_place_on_path(self, block: Block) -> bool:
        """Place ``block`` as deep as possible on its own path; False if full."""
        for level in range(self.depth, -1, -1):
            bucket = self.bucket(level, block.leaf)
            if bucket.has_space():
                bucket.add(block)
                return True
        return False

    def real_block_count(self) -> int:
        """Number of real blocks currently stored in the tree."""
        return sum(len(bucket) for bucket in self._buckets)

    def occupancy_by_level(self) -> list[float]:
        """Average bucket utilisation per level (diagnostic for fat-tree studies)."""
        totals = [0] * (self.depth + 1)
        counts = [0] * (self.depth + 1)
        for index, bucket in enumerate(self._buckets):
            level = (index + 1).bit_length() - 1
            totals[level] += len(bucket)
            counts[level] += 1
        return [
            totals[level] / (counts[level] * self.bucket_capacities[level])
            for level in range(self.depth + 1)
        ]

    def iter_blocks(self) -> Iterable[Block]:
        """Iterate over every real block in the tree."""
        for bucket in self._buckets:
            yield from bucket
