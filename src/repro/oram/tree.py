"""Binary-tree server storage for Path-ORAM style schemes.

Supports both the uniform-bucket ("normal") tree and the fat-tree
organisation of the paper, where bucket capacity grows from the leaves to
the root.  Byte accounting always charges full bucket capacity (real plus
dummy slots) because the server must transfer indistinguishable buckets.

Two backends share the same geometry: :class:`TreeStorage` keeps per-bucket
lists of :class:`~repro.memory.block.Block` objects (the reference engine),
and :class:`ArrayTreeStorage` keeps one ``(nodes, capacity)`` ``int64`` slot
array plus an occupancy vector per level, so path reads, write-backs and the
initial bulk placement are numpy operations instead of per-block Python.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.memory.block import Block
from repro.oram.bucket import Bucket
from repro.oram.shm import DEFAULT_ALLOCATOR, ArrayAllocator
from repro.utils.bits import node_index, num_nodes, path_node_indices


class TreeStorage:
    """Complete binary tree of buckets stored on the (untrusted) server."""

    def __init__(
        self,
        depth: int,
        bucket_capacities: Sequence[int],
        block_size_bytes: int,
        metadata_bytes_per_block: int = 16,
    ):
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if len(bucket_capacities) != depth + 1:
            raise ConfigurationError(
                f"need {depth + 1} per-level capacities, got {len(bucket_capacities)}"
            )
        if block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")
        self.depth = depth
        self.bucket_capacities = tuple(int(c) for c in bucket_capacities)
        self.block_size_bytes = block_size_bytes
        self.metadata_bytes_per_block = metadata_bytes_per_block
        self._buckets: list[Bucket] = []
        for index in range(num_nodes(depth)):
            level = (index + 1).bit_length() - 1
            self._buckets.append(Bucket(self.bucket_capacities[level]))

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaves (paths)."""
        return 1 << self.depth

    @property
    def num_buckets(self) -> int:
        """Total number of buckets."""
        return len(self._buckets)

    def capacity_at_level(self, level: int) -> int:
        """Bucket capacity at ``level`` (root is level 0)."""
        return self.bucket_capacities[level]

    def bucket(self, level: int, leaf: int) -> Bucket:
        """The bucket at ``level`` on the path to ``leaf``."""
        return self._buckets[node_index(level, leaf, self.depth)]

    def bucket_by_index(self, index: int) -> Bucket:
        """The bucket with breadth-first ``index``."""
        return self._buckets[index]

    def path_bucket_indices(self, leaf: int) -> list[int]:
        """Breadth-first bucket indices of the path to ``leaf``, root first."""
        return path_node_indices(leaf, self.depth)

    @property
    def stored_block_bytes(self) -> int:
        """Bytes one slot occupies on the wire (payload + metadata)."""
        return self.block_size_bytes + self.metadata_bytes_per_block

    def path_cost(self, leaf: int) -> tuple[int, int]:
        """Return ``(num_buckets, num_bytes)`` for transferring one full path."""
        slots = sum(self.bucket_capacities)
        return self.depth + 1, slots * self.stored_block_bytes

    @property
    def total_slots(self) -> int:
        """Total number of slots (real + dummy) in the tree."""
        return sum(
            capacity * (1 << level)
            for level, capacity in enumerate(self.bucket_capacities)
        )

    @property
    def server_memory_bytes(self) -> int:
        """Total server footprint of the tree."""
        return self.total_slots * self.stored_block_bytes

    # ------------------------------------------------------------------
    # Path operations
    # ------------------------------------------------------------------
    def read_path(self, leaf: int) -> list[Block]:
        """Remove and return every real block on the path to ``leaf``."""
        blocks: list[Block] = []
        for index in path_node_indices(leaf, self.depth):
            blocks.extend(self._buckets[index].pop_all())
        return blocks

    def peek_path(self, leaf: int) -> list[Block]:
        """Return (without removing) every real block on the path to ``leaf``."""
        blocks: list[Block] = []
        for index in path_node_indices(leaf, self.depth):
            blocks.extend(self._buckets[index].blocks)
        return blocks

    def write_path(self, leaf: int, placement: dict[int, list[Block]]) -> None:
        """Write ``placement`` (level -> blocks) onto the path to ``leaf``.

        Buckets on the path are assumed to have been emptied by a prior
        :meth:`read_path`; writing more blocks than a bucket's capacity is an
        error, as it would correspond to losing data on a real server.
        """
        for level, blocks in placement.items():
            bucket = self.bucket(level, leaf)
            if len(bucket) + len(blocks) > bucket.capacity:
                raise ConfigurationError(
                    f"placement overflows bucket at level {level}: "
                    f"{len(bucket)} + {len(blocks)} > {bucket.capacity}"
                )
            bucket.extend(blocks)

    # ------------------------------------------------------------------
    # Bulk operations / diagnostics
    # ------------------------------------------------------------------
    def try_place_on_path(self, block: Block) -> bool:
        """Place ``block`` as deep as possible on its own path; False if full."""
        for level in range(self.depth, -1, -1):
            bucket = self.bucket(level, block.leaf)
            if bucket.has_space():
                bucket.add(block)
                return True
        return False

    def real_block_count(self) -> int:
        """Number of real blocks currently stored in the tree."""
        return sum(len(bucket) for bucket in self._buckets)

    def occupancy_by_level(self) -> list[float]:
        """Average bucket utilisation per level (diagnostic for fat-tree studies)."""
        totals = [0] * (self.depth + 1)
        counts = [0] * (self.depth + 1)
        for index, bucket in enumerate(self._buckets):
            level = (index + 1).bit_length() - 1
            totals[level] += len(bucket)
            counts[level] += 1
        return [
            totals[level] / (counts[level] * self.bucket_capacities[level])
            for level in range(self.depth + 1)
        ]

    def iter_blocks(self) -> Iterable[Block]:
        """Iterate over every real block in the tree."""
        for bucket in self._buckets:
            yield from bucket


class ArrayTreeStorage:
    """Array-backed complete binary tree of buckets.

    All slots live in one flat ``int64`` array (``-1`` marks a dummy slot)
    laid out level by level, node by node, plus one occupancy counter per
    node; slots ``0..occ-1`` of a node hold real blocks in insertion order,
    matching the list order of the per-object :class:`TreeStorage` buckets.
    Precomputed per-slot templates turn a whole path read into four numpy
    operations instead of a per-level Python walk.  Only ids are stored: a
    block's leaf is authoritative in the position map, and the vectorized
    engine keeps payloads in a client-side store.
    """

    def __init__(
        self,
        depth: int,
        bucket_capacities: Sequence[int],
        block_size_bytes: int,
        metadata_bytes_per_block: int = 16,
        allocator: Optional[ArrayAllocator] = None,
    ):
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if len(bucket_capacities) != depth + 1:
            raise ConfigurationError(
                f"need {depth + 1} per-level capacities, got {len(bucket_capacities)}"
            )
        if block_size_bytes < 1:
            raise ConfigurationError("block_size_bytes must be >= 1")
        self.depth = depth
        self.bucket_capacities = tuple(int(c) for c in bucket_capacities)
        self.block_size_bytes = block_size_bytes
        self.metadata_bytes_per_block = metadata_bytes_per_block
        self._allocator = allocator if allocator is not None else DEFAULT_ALLOCATOR
        caps = self.bucket_capacities
        # Slot-region start of each level within the flat slot array.
        bases = [0]
        for level, capacity in enumerate(caps):
            bases.append(bases[-1] + (1 << level) * capacity)
        self._level_base = tuple(bases[:-1])
        self._slots = self._allocator.full("tree.slots", bases[-1], -1, np.int64)
        self._occ = self._allocator.zeros(
            "tree.occ", (1 << (depth + 1)) - 1, np.int64
        )
        self._path_slots = sum(caps)
        # Per-slot templates of one path: the slot indices of the path to
        # ``leaf`` are  tmpl_base + (leaf >> tmpl_shift) * tmpl_cap + tmpl_off.
        shift, base, cap_arr, off = [], [], [], []
        for level, capacity in enumerate(caps):
            shift.extend([depth - level] * capacity)
            base.extend([self._level_base[level]] * capacity)
            cap_arr.extend([capacity] * capacity)
            off.extend(range(capacity))
        self._tmpl_shift = np.asarray(shift, dtype=np.int64)
        self._tmpl_cap = np.asarray(cap_arr, dtype=np.int64)
        self._tmpl_level = np.asarray(
            [level for level, capacity in enumerate(caps) for _ in range(capacity)],
            dtype=np.int64,
        )
        # Python-int copy for scalar hot paths (remove_on_path).
        self._tmpl_level_list = self._tmpl_level.tolist()
        # base and offset are both per-slot constants: fold them into one.
        self._tmpl_const = np.asarray(base, dtype=np.int64) + np.asarray(
            off, dtype=np.int64
        )
        # Per-node templates: global bucket index of the path's node at each
        # level is  node_base + (leaf >> node_shift).
        self._node_shift = np.arange(depth, -1, -1, dtype=np.int64)
        self._node_base = (1 << np.arange(depth + 1, dtype=np.int64)) - 1
        # Every path has the same geometry, so its transfer cost is fixed.
        self._path_cost = (
            depth + 1,
            self._path_slots * (block_size_bytes + metadata_bytes_per_block),
        )
        # Hot-path scratch: per-path slot/gather/node work arrays reused by
        # every single-path operation so the steady-state access loop
        # performs no numpy allocations.  Each operation refills the scratch
        # at entry, so a returned scratch view is valid only until the next
        # path call on this tree.
        self._scratch_slot_idx = np.empty(self._path_slots, dtype=np.int64)
        self._scratch_gather = np.empty(self._path_slots, dtype=np.int64)
        self._scratch_mask = np.empty(self._path_slots, dtype=bool)
        self._scratch_nodes = np.empty(depth + 1, dtype=np.int64)
        self._scratch_occ = np.empty(depth + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Geometry helpers (same accounting as TreeStorage)
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaves (paths)."""
        return 1 << self.depth

    @property
    def num_buckets(self) -> int:
        """Total number of buckets."""
        return (1 << (self.depth + 1)) - 1

    def capacity_at_level(self, level: int) -> int:
        """Bucket capacity at ``level`` (root is level 0)."""
        return self.bucket_capacities[level]

    @property
    def stored_block_bytes(self) -> int:
        """Bytes one slot occupies on the wire (payload + metadata)."""
        return self.block_size_bytes + self.metadata_bytes_per_block

    def path_cost(self, leaf: int) -> tuple[int, int]:
        """Return ``(num_buckets, num_bytes)`` for transferring one full path."""
        return self._path_cost

    @property
    def total_slots(self) -> int:
        """Total number of slots (real + dummy) in the tree."""
        return sum(
            capacity * (1 << level)
            for level, capacity in enumerate(self.bucket_capacities)
        )

    @property
    def server_memory_bytes(self) -> int:
        """Total server footprint of the tree."""
        return self.total_slots * self.stored_block_bytes

    # ------------------------------------------------------------------
    # Path operations
    # ------------------------------------------------------------------
    def free_slots(self, level: int, node: int) -> int:
        """Free capacity of the bucket ``node`` at ``level``."""
        return self.bucket_capacities[level] - int(
            self._occ[((1 << level) - 1) + node]
        )

    def _fill_path_slots(self, leaf: int) -> np.ndarray:
        """Fill and return the scratch array of the path's flat slot indices.

        Incremental bit-shift fill into the preallocated template-shaped
        scratch (``(leaf >> tmpl_shift) * tmpl_cap + tmpl_const``) — three
        in-place ufunc calls, no allocation.
        """
        slot_idx = self._scratch_slot_idx
        np.right_shift(leaf, self._tmpl_shift, out=slot_idx)
        np.multiply(slot_idx, self._tmpl_cap, out=slot_idx)
        np.add(slot_idx, self._tmpl_const, out=slot_idx)
        return slot_idx

    def path_nodes(self, leaf: int) -> np.ndarray:
        """Bucket indices of the path to ``leaf`` (root first), in scratch.

        Same values as :meth:`path_bucket_indices` but written into the
        reusable node scratch: valid only until the next path call.
        """
        nodes = self._scratch_nodes
        np.right_shift(leaf, self._node_shift, out=nodes)
        np.add(nodes, self._node_base, out=nodes)
        return nodes

    def read_path_raw(self, leaf: int) -> np.ndarray:
        """Empty the path to ``leaf`` and return the raw per-slot gather.

        Returns the gather scratch (valid until the next path call): every
        slot of the path in template order — root to leaf, each bucket's
        insertion order preserved — with ``-1`` marking empty slots.  The
        fused trace driver consumes this directly (it filters the ``-1``
        entries while building its stash map), so a steady-state path read
        is five in-place numpy operations and zero allocations.
        """
        slot_idx = self._fill_path_slots(leaf)
        gathered = self._scratch_gather
        self._slots.take(slot_idx, out=gathered)
        self._slots[slot_idx] = -1
        self._occ[self.path_nodes(leaf)] = 0
        return gathered

    def read_path_ids(self, leaf: int) -> np.ndarray:
        """Remove and return every real block id on the path to ``leaf``.

        Ids come back in root-to-leaf order with each bucket's insertion
        order preserved, matching :meth:`TreeStorage.read_path`.  The
        intermediate slot-index/gather work runs in the preallocated
        scratch; only the compacted result array is allocated.
        """
        gathered = self.read_path_raw(leaf)
        mask = self._scratch_mask
        np.greater_equal(gathered, 0, out=mask)
        return gathered[mask]

    def read_path_ids_lazy(self, leaf: int) -> np.ndarray:
        """:meth:`read_path_ids` minus the occupancy bookkeeping.

        Empties the path's slots and returns its real block ids, but leaves
        ``bucket_occupancies`` stale.  For callers that never read occupancy
        between path operations: record the touched leaves and settle the
        books once with :meth:`rebuild_path_occupancies`.  The fused trace
        drivers tried this and went back to eager maintenance — the
        vectorized settle amortizes to ~4.5 us/access over a long trace,
        triple the per-read scatter it saves — but the pair remains correct
        and is the right shape for short bursts over few distinct paths.
        """
        slot_idx = self._fill_path_slots(leaf)
        gathered = self._scratch_gather
        self._slots.take(slot_idx, out=gathered)
        self._slots[slot_idx] = -1
        mask = self._scratch_mask
        np.greater_equal(gathered, 0, out=mask)
        return gathered[mask]

    def rebuild_path_occupancies(self, leaves: Sequence[int]) -> None:
        """Recompute occupancy for every bucket on the paths to ``leaves``.

        Settles the books after :meth:`read_path_ids_lazy` calls.  Greedy
        placement packs each bucket's real ids in front of its slot range,
        so a bucket's occupancy is exactly its real-slot count — the values
        written here are bit-identical to the per-path scatters they
        replace, computed in one vectorized pass over the touched buckets
        only (duplicate leaves collapse via ``np.unique``).
        """
        if not len(leaves):
            return
        arr = np.asarray(leaves, dtype=np.int64)
        nodes = (arr[:, None] >> self._node_shift) + self._node_base
        uniq = np.unique(nodes)
        # level(node) = bit_length(node + 1) - 1, via frexp's exponent
        # (exact far below 2^53, same trick as the batched planner).
        exp = np.empty(uniq.shape, dtype=np.intc)
        np.frexp(uniq + 1, np.empty(uniq.shape, dtype=np.float64), exp)
        lvl = exp.astype(np.int64) - 1
        caps = np.asarray(self.bucket_capacities, dtype=np.int64)[lvl]
        bases = np.asarray(self._level_base, dtype=np.int64)[lvl]
        start = bases + (uniq - ((np.int64(1) << lvl) - 1)) * caps
        width = int(caps.max())
        offsets = np.arange(width, dtype=np.int64)
        valid = offsets[None, :] < caps[:, None]
        grid = start[:, None] + offsets[None, :]
        vals = self._slots[np.where(valid, grid, 0)]
        self._occ[uniq] = ((vals >= 0) & valid).sum(axis=1)

    def read_paths_ids(self, leaves: np.ndarray) -> np.ndarray:
        """Remove and return every real block id on the paths to ``leaves``.

        One gather/scatter over the union of the paths' slots.  Buckets
        shared by several paths (the common tree prefix, or duplicate
        leaves) are read exactly once, at their first occurrence in leaf
        order — the same ids, in the same order, a sequential loop of
        :meth:`read_path_ids` over ``leaves`` would produce, because later
        reads of a shared bucket see it already emptied.
        """
        leaves = np.asarray(leaves, dtype=np.int64)
        slot_idx = (leaves[:, None] >> self._tmpl_shift) * self._tmpl_cap
        slot_idx += self._tmpl_const
        flat = slot_idx.ravel()
        uniq, first = np.unique(flat, return_index=True)
        ids = np.full(flat.size, -1, dtype=np.int64)
        ids[first] = self._slots[uniq]
        self._slots[uniq] = -1
        nodes = (self._node_base + (leaves[:, None] >> self._node_shift)).ravel()
        self._occ[nodes] = 0
        return ids[ids >= 0]

    @property
    def level_base(self) -> tuple[int, ...]:
        """Flat-slot start offset of each level's region."""
        return self._level_base

    @property
    def bucket_occupancies(self) -> np.ndarray:
        """Per-bucket occupancy counters, breadth-first (no copy).

        Read-only view for write-back planners; mutations must go through
        the commit methods so slots and counters stay in sync.
        """
        return self._occ

    def path_bucket_indices(self, leaf: int) -> np.ndarray:
        """Breadth-first bucket indices of the path to ``leaf``, root first."""
        return self._node_base + (leaf >> self._node_shift)

    def remove_on_path(self, leaf: int, block_id: int) -> bool:
        """Remove ``block_id`` from the first bucket holding it on the path.

        Matches :meth:`Bucket.remove` semantics: the bucket is scanned root
        to leaf, and removal shifts the later slots of the bucket down one
        position so insertion order is preserved.  Returns whether the block
        was found.  This is RingORAM's online read, so only one block is
        touched (the caller charges one slot per bucket, not full buckets).
        """
        slot_idx = self._fill_path_slots(leaf)
        gathered = self._scratch_gather
        self._slots.take(slot_idx, out=gathered)
        # list.index over the (small) gathered path beats a numpy
        # mask/any/argmax cascade here: one C-level scan, no ufunc
        # dispatch, and the temporary list is freed immediately.
        try:
            tmpl_pos = gathered.tolist().index(block_id)
        except ValueError:
            return False
        level = self._tmpl_level_list[tmpl_pos]
        capacity = self.bucket_capacities[level]
        node = leaf >> (self.depth - level)
        bucket = ((1 << level) - 1) + node
        occ = self._occ.item(bucket)
        start = self._level_base[level] + node * capacity
        pos = slot_idx.item(tmpl_pos)
        # Shift the bucket's later occupants down one slot; the block is
        # usually at or near the bucket's last occupied slot, so a scalar
        # loop (0-3 moves) beats the ufunc dispatch of a slice copy.
        slots = self._slots
        last = start + occ - 1
        for i in range(pos, last):
            slots[i] = slots[i + 1]
        slots[last] = -1
        self._occ[bucket] = occ - 1
        return True

    def try_place_id(self, block_id: int, leaf: int) -> bool:
        """Place ``block_id`` as deep as possible on its path; False if full.

        Scalar counterpart of :meth:`bulk_place` matching
        :meth:`TreeStorage.try_place_on_path` (used by trusted-setup
        relayouts that must replay a specific placement order).
        """
        for level in range(self.depth, -1, -1):
            capacity = self.bucket_capacities[level]
            node = leaf >> (self.depth - level)
            bucket = ((1 << level) - 1) + node
            occ = int(self._occ[bucket])
            if occ < capacity:
                self._slots[self._level_base[level] + node * capacity + occ] = block_id
                self._occ[bucket] = occ + 1
                return True
        return False

    def path_state(self, leaf: int) -> tuple[np.ndarray, list[int]]:
        """Bucket indices and current occupancies of the path to ``leaf``.

        Returns ``(buckets, occupancies)`` ordered root to leaf; callers that
        plan a whole-path write-back mutate the occupancy list and commit it
        with :meth:`commit_path_write`.  ``buckets`` is the node scratch
        (valid until the next path call); the occupancy list is gathered
        through the occupancy scratch so nothing but the list is allocated.
        """
        buckets = self.path_nodes(leaf)
        occ = self._scratch_occ
        np.take(self._occ, buckets, out=occ)
        return buckets, occ.tolist()

    @property
    def slot_array(self) -> np.ndarray:
        """The flat slot array (no copy), for the fused trace driver.

        Writes must preserve the commit invariants (occupied slots are the
        dense prefix of each bucket, ``occ`` in sync); everything else goes
        through the commit methods.
        """
        return self._slots

    def commit_path_write(
        self,
        buckets: np.ndarray,
        occupancies: Sequence[int],
        slot_indices: Sequence[int],
        values: np.ndarray,
    ) -> None:
        """Scatter a planned write-back in two vectorized assignments.

        ``slot_indices``/``values`` are the flat slot positions and block ids
        chosen by the caller (who guarantees they respect bucket capacity);
        ``occupancies`` is the path's updated per-bucket occupancy.
        """
        self._slots[slot_indices] = values
        self._occ[buckets] = occupancies

    def commit_batch_write(
        self,
        slot_indices: Sequence[int],
        values: np.ndarray,
        buckets: Sequence[int],
        occupancies: Sequence[int],
    ) -> None:
        """Scatter a write-back planned over the union of several paths.

        Same contract as :meth:`commit_path_write` but ``buckets`` /
        ``occupancies`` cover only the buckets the batched planner actually
        touched (they may span many paths), so one batch commits in two
        scatters regardless of how many paths it wrote.
        """
        self._slots[slot_indices] = values
        self._occ[buckets] = occupancies

    def write_level(self, level: int, node: int, block_ids: Sequence[int]) -> None:
        """Append ``block_ids`` to the bucket ``node`` at ``level``."""
        count = len(block_ids)
        if count == 0:
            return
        capacity = self.bucket_capacities[level]
        bucket = ((1 << level) - 1) + node
        occ = int(self._occ[bucket])
        if occ + count > capacity:
            raise ConfigurationError(
                f"placement overflows bucket at level {level}: "
                f"{occ} + {count} > {capacity}"
            )
        start = self._level_base[level] + node * capacity + occ
        self._slots[start : start + count] = block_ids
        self._occ[bucket] = occ + count

    # ------------------------------------------------------------------
    # Bulk operations / diagnostics
    # ------------------------------------------------------------------
    def bulk_place(self, position_leaves: np.ndarray) -> np.ndarray:
        """Greedily place blocks ``0..N-1`` as deep as possible, in id order.

        ``position_leaves[b]`` is block ``b``'s assigned path.  Returns the
        ids that found no free slot on their path (they belong in the
        stash), in ascending order.  Equivalent to calling
        :meth:`TreeStorage.try_place_on_path` for every id in ascending
        order (see :meth:`bulk_place_ordered`, which this delegates to with
        ascending-id priority).
        """
        leaves = np.asarray(position_leaves, dtype=np.int64)
        return self.bulk_place_ordered(
            np.arange(leaves.size, dtype=np.int64), leaves
        )

    def bulk_place_ordered(
        self, block_ids: np.ndarray, leaves: np.ndarray
    ) -> np.ndarray:
        """Greedily place ``block_ids`` as deep as possible, in sequence order.

        ``leaves[i]`` is ``block_ids[i]``'s assigned path; earlier sequence
        positions win contested slots.  Returns the ids that found no free
        slot on their path, in sequence order.  Equivalent to calling
        :meth:`try_place_id` for every id in sequence order, but runs one
        vectorized pass per level: at each level the surviving blocks are
        grouped by bucket and the first ``free`` (by priority) of each
        bucket claim its slots — placements at different levels never
        interact, so processing levels deep-to-root with priority preserved
        reproduces the scalar loop exactly.
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        leaves = np.asarray(leaves, dtype=np.int64)
        # ``remaining`` holds sequence positions (the priority order).
        remaining = np.arange(block_ids.size, dtype=np.int64)
        for level in range(self.depth, -1, -1):
            if remaining.size == 0:
                break
            capacity = self.bucket_capacities[level]
            level_ids = self._level_slots(level)
            level_occ = self._level_occ(level)
            nodes = leaves[remaining] >> (self.depth - level)
            order = np.argsort(nodes, kind="stable")
            sorted_pos = remaining[order]
            sorted_nodes = nodes[order]
            uniq, starts, counts = np.unique(
                sorted_nodes, return_index=True, return_counts=True
            )
            rank = np.arange(sorted_pos.size, dtype=np.int64) - np.repeat(
                starts, counts
            )
            slot = level_occ[sorted_nodes] + rank
            placed = slot < capacity
            level_ids[sorted_nodes[placed], slot[placed]] = block_ids[
                sorted_pos[placed]
            ]
            level_occ[uniq] = np.minimum(level_occ[uniq] + counts, capacity)
            remaining = np.sort(sorted_pos[~placed])
        return block_ids[remaining]

    def _level_slots(self, level: int) -> np.ndarray:
        """View of level ``level``'s slots shaped ``(nodes, capacity)``."""
        capacity = self.bucket_capacities[level]
        start = self._level_base[level]
        return self._slots[start : start + (1 << level) * capacity].reshape(
            1 << level, capacity
        )

    def _level_occ(self, level: int) -> np.ndarray:
        """View of level ``level``'s per-node occupancy counters."""
        return self._occ[(1 << level) - 1 : (1 << (level + 1)) - 1]

    def real_block_count(self) -> int:
        """Number of real blocks currently stored in the tree."""
        return int(self._occ.sum())

    def occupancy_by_level(self) -> list[float]:
        """Average bucket utilisation per level (diagnostic for fat-tree studies)."""
        return [
            float(self._level_occ(level).sum())
            / ((1 << level) * self.bucket_capacities[level])
            for level in range(self.depth + 1)
        ]

    def iter_node_ids(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(level, node, block_ids)`` for every non-empty bucket."""
        for level in range(self.depth + 1):
            level_ids = self._level_slots(level)
            level_occ = self._level_occ(level)
            for node in np.nonzero(level_occ)[0].tolist():
                yield level, node, level_ids[node, : int(level_occ[node])]

    def all_block_ids(self) -> np.ndarray:
        """Every real block id, in tree-iteration order (level, node, slot).

        Occupied slots are always the prefix of each bucket, so masking the
        flat per-level slot arrays yields exactly the order
        :meth:`iter_node_ids` walks, without the per-bucket Python loop.
        """
        chunks = []
        for level in range(self.depth + 1):
            flat = self._level_slots(level).ravel()
            chunks.append(flat[flat >= 0])
        return np.concatenate(chunks)
