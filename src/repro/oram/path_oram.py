"""PathORAM (Stefanov et al.) — the baseline protocol LAORAM builds on.

The implementation follows the access sequence described in Section II-C of
the paper:

1. look up the block's path in the position map (serve directly from the
   stash when the block is already there);
2. fetch every bucket on that path from the server into the stash;
3. perform the requested read/write on the block;
4. remap the block to a fresh, uniformly random path;
5. write blocks from the stash back onto the fetched path, as deep as the
   path-prefix rule allows (greedy eviction);
6. when the stash exceeds the background-eviction threshold, issue dummy
   reads of random paths until it drains to the target.

Traffic and simulated time are recorded through
:class:`~repro.memory.accounting.TrafficCounter` and
:class:`~repro.memory.timing.TimingModel`, which the evaluation harness turns
into the paper's speedup / dummy-read / traffic metrics.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import BlockNotFoundError
from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.block import Block
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage
from repro.oram.write_back import plan_greedy_write_back
from repro.utils.rng import make_rng


class PathORAM(ObliviousMemory):
    """Reference PathORAM client + simulated server storage."""

    def __init__(
        self,
        config: ORAMConfig,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        eviction: Optional[EvictionPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
    ):
        self.config = config
        self.timing = timing if timing is not None else TimingModel()
        self.counter = counter if counter is not None else TrafficCounter()
        self.rng = rng if rng is not None else make_rng(config.seed)
        self.eviction = eviction if eviction is not None else EvictionPolicy(
            enabled=config.background_eviction,
            trigger_threshold=config.eviction_threshold,
            drain_target=config.eviction_target,
        )
        self.observer = observer
        self.tree = TreeStorage(
            depth=config.depth,
            bucket_capacities=config.bucket_capacities(),
            block_size_bytes=config.block_size_bytes,
            metadata_bytes_per_block=config.metadata_bytes_per_block,
        )
        self.stash = Stash(capacity=config.stash_capacity)
        self.position_map = PositionMap(
            num_blocks=config.num_blocks,
            num_leaves=config.num_leaves,
            rng=self.rng,
        )
        self._stash_hits = 0
        self._bulk_load()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _bulk_load(self) -> None:
        """Place every block into the tree according to its initial path.

        Initial placement is a trusted setup step performed before the
        adversary starts observing, so it is not charged to the traffic
        counters.
        """
        for block_id in range(self.config.num_blocks):
            leaf = self.position_map.get(block_id)
            block = Block(block_id=block_id, leaf=leaf, payload=None)
            if not self.tree.try_place_on_path(block):
                self.stash.add(block)

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads for blocks during trusted setup (no traffic charged)."""
        remaining = dict(payloads)
        for block in self.stash:
            if block.block_id in remaining:
                block.payload = remaining.pop(block.block_id)
        if remaining:
            for block in self.tree.iter_blocks():
                if block.block_id in remaining:
                    block.payload = remaining.pop(block.block_id)
                    if not remaining:
                        break
        if remaining:
            raise BlockNotFoundError(
                f"{len(remaining)} payload block ids not present in the ORAM"
            )

    # ------------------------------------------------------------------
    # ObliviousMemory interface
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def statistics(self) -> TrafficSnapshot:
        return self.counter.snapshot()

    @property
    def simulated_time_s(self) -> float:
        return self.timing.elapsed_s

    @property
    def server_memory_bytes(self) -> int:
        return self.tree.server_memory_bytes

    @property
    def stash_occupancy(self) -> int:
        """Current number of blocks held in the client stash."""
        return len(self.stash)

    @property
    def stash_hits(self) -> int:
        """Accesses served directly from the stash without a path read."""
        return self._stash_hits

    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one oblivious access to ``block_id``."""
        self._check_block_id(block_id)
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        block = self.stash.get(block_id)
        if block is None:
            leaf = self.position_map.get(block_id)
            self._read_path_into_stash(leaf, dummy=False)
            block = self.stash.get(block_id)
            if block is None:
                raise BlockNotFoundError(
                    f"block {block_id} missing from both stash and its path"
                )
            payload = self._serve(block, op, new_payload)
            self._remap(block)
            self._write_back(leaf)
        else:
            self._stash_hits += 1
            payload = self._serve(block, op, new_payload)
            self._remap(block)

        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payload

    def access_many(self, block_ids: Sequence[int]) -> list[Optional[object]]:
        """Access blocks one at a time (PathORAM has no batching)."""
        return [self.access(int(block_id)) for block_id in block_ids]

    # ------------------------------------------------------------------
    # Internals shared with subclasses (PrORAM / LAORAM)
    # ------------------------------------------------------------------
    def _serve(
        self, block: Block, op: AccessOp, new_payload: Optional[object]
    ) -> Optional[object]:
        if op is AccessOp.WRITE:
            block.payload = new_payload
        return block.payload

    def _remap(self, block: Block) -> None:
        """Assign the block a fresh path and update the position map."""
        new_leaf = self._choose_new_leaf(block.block_id)
        block.leaf = new_leaf
        self.position_map.set(block.block_id, new_leaf)

    def _choose_new_leaf(self, block_id: int) -> int:
        """Uniformly random new path; LAORAM overrides this with its plan."""
        return int(self.rng.integers(0, self.config.num_leaves))

    def _read_path_into_stash(self, leaf: int, dummy: bool) -> None:
        """Fetch a full path from the server into the stash."""
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        for block in self.tree.read_path(leaf):
            self.stash.add(block)
        self.counter.record_path_read(num_buckets, num_bytes, dummy=dummy)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=dummy)

    def _write_back(self, leaf: int) -> None:
        """Greedily write stash blocks back onto the path to ``leaf``."""
        placement = self._plan_write_back(leaf)
        self.tree.write_path(leaf, placement)
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

    def _plan_write_back(self, leaf: int) -> dict[int, list[Block]]:
        """Choose which stash blocks go to which level of the accessed path."""
        return plan_greedy_write_back(self.tree, self.stash, leaf)

    def _maybe_background_evict(self) -> None:
        """Run the dummy-read eviction loop when the stash is too full."""
        if not self.eviction.should_trigger(len(self.stash)):
            return
        self.counter.record_background_eviction()
        dummy_reads = 0
        while self.eviction.should_continue(len(self.stash), dummy_reads):
            self.dummy_access()
            dummy_reads += 1

    def dummy_access(self) -> None:
        """Read and write back one random path without touching any block."""
        leaf = int(self.rng.integers(0, self.config.num_leaves))
        self._read_path_into_stash(leaf, dummy=True)
        self._write_back(leaf)

    def _check_block_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.config.num_blocks:
            raise BlockNotFoundError(
                f"block {block_id} outside [0, {self.config.num_blocks})"
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def total_real_blocks(self) -> int:
        """Blocks present across tree and stash (must equal ``num_blocks``)."""
        return self.tree.real_block_count() + len(self.stash)

    def client_memory_bytes(self) -> int:
        """Approximate client memory: position map plus stash payload slots."""
        stash_bytes = len(self.stash) * self.config.stored_block_bytes
        return self.position_map.client_memory_bytes() + stash_bytes
