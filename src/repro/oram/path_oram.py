"""PathORAM (Stefanov et al.) — the baseline protocol LAORAM builds on.

The implementation follows the access sequence described in Section II-C of
the paper:

1. look up the block's path in the position map (serve directly from the
   stash when the block is already there);
2. fetch every bucket on that path from the server into the stash;
3. perform the requested read/write on the block;
4. remap the block to a fresh, uniformly random path;
5. write blocks from the stash back onto the fetched path, as deep as the
   path-prefix rule allows (greedy eviction);
6. when the stash exceeds the background-eviction threshold, issue dummy
   reads of random paths until it drains to the target.

The whole sequence lives in :class:`~repro.oram.engine.TreeORAMEngine`
(shared with PrORAM, RingORAM and LAORAM); this class binds it to the
per-object :class:`~repro.oram.engine.ObjectStorageEngine` backend — Block
objects in list buckets and a dict stash.  Its vectorized twin is
:class:`~repro.oram.array_path_oram.ArrayPathORAM`.

Traffic and simulated time are recorded through
:class:`~repro.memory.accounting.TrafficCounter` and
:class:`~repro.memory.timing.TimingModel`, which the evaluation harness turns
into the paper's speedup / dummy-read / traffic metrics.
"""

from __future__ import annotations

from repro.oram.engine import ObjectStorageEngine


class PathORAM(ObjectStorageEngine):
    """Reference PathORAM client + simulated server storage.

    The access/eviction control flow and the storage backend both come from
    :mod:`repro.oram.engine`; PathORAM adds nothing on top — it *is* the
    base protocol.
    """
