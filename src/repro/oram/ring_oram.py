"""RingORAM (Ren et al.) — the bandwidth-optimised comparator of Section VIII-G.

RingORAM reduces online bandwidth by reading a single block from every bucket
on the accessed path (the target block where present, a fresh dummy
otherwise) instead of the whole bucket.  Buckets are reshuffled after their
dummies are exhausted, and a full evict-path is performed every ``evict_rate``
accesses following the reverse-lexicographic leaf order.

This is a faithful-but-simplified model: XOR-compression of the online read
and the exact metadata layout of the original paper are abstracted away, but
the quantities the comparison cares about — blocks moved per access, eviction
frequency, stash behaviour — follow the protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.block import Block
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage
from repro.oram.write_back import plan_greedy_write_back
from repro.utils.bits import path_node_indices
from repro.utils.rng import make_rng


def reverse_lexicographic_leaf(counter: int, depth: int) -> int:
    """Leaf visited at eviction number ``counter`` in reverse-lexicographic order."""
    leaf = 0
    value = counter % (1 << depth)
    for bit in range(depth):
        leaf |= ((value >> bit) & 1) << (depth - 1 - bit)
    return leaf


class RingORAM(ObliviousMemory):
    """Simplified RingORAM client and server model."""

    def __init__(
        self,
        config: ORAMConfig,
        dummies_per_bucket: int = 4,
        evict_rate: int = 4,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
    ):
        if dummies_per_bucket < 1:
            raise ConfigurationError("dummies_per_bucket must be >= 1")
        if evict_rate < 1:
            raise ConfigurationError("evict_rate must be >= 1")
        self.config = config
        self.dummies_per_bucket = dummies_per_bucket
        self.evict_rate = evict_rate
        self.timing = timing if timing is not None else TimingModel()
        self.counter = counter if counter is not None else TrafficCounter()
        self.rng = rng if rng is not None else make_rng(config.seed)
        self.observer = observer
        self.tree = TreeStorage(
            depth=config.depth,
            bucket_capacities=config.bucket_capacities(),
            block_size_bytes=config.block_size_bytes,
            metadata_bytes_per_block=config.metadata_bytes_per_block,
        )
        self.stash = Stash(capacity=config.stash_capacity)
        self.position_map = PositionMap(
            num_blocks=config.num_blocks,
            num_leaves=config.num_leaves,
            rng=self.rng,
        )
        # Number of single-block reads a bucket has served since its last
        # reshuffle; once it reaches ``dummies_per_bucket`` the bucket must be
        # reshuffled (read and rewritten in full).
        self._bucket_read_counts = np.zeros(self.tree.num_buckets, dtype=np.int64)
        self._access_count = 0
        self._evict_counter = 0
        self._bulk_load()

    # ------------------------------------------------------------------
    def _bulk_load(self) -> None:
        for block_id in range(self.config.num_blocks):
            leaf = self.position_map.get(block_id)
            block = Block(block_id=block_id, leaf=leaf, payload=None)
            if not self.tree.try_place_on_path(block):
                self.stash.add(block)

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads for blocks during trusted setup (no traffic charged)."""
        remaining = dict(payloads)
        for block in self.stash:
            if block.block_id in remaining:
                block.payload = remaining.pop(block.block_id)
        if remaining:
            for block in self.tree.iter_blocks():
                if block.block_id in remaining:
                    block.payload = remaining.pop(block.block_id)
                    if not remaining:
                        break
        if remaining:
            raise BlockNotFoundError(
                f"{len(remaining)} payload block ids not present in the ORAM"
            )

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def statistics(self) -> TrafficSnapshot:
        return self.counter.snapshot()

    @property
    def simulated_time_s(self) -> float:
        return self.timing.elapsed_s

    @property
    def server_memory_bytes(self) -> int:
        # Ring buckets carry extra dummy slots compared to the PathORAM tree.
        extra_slots = self.tree.num_buckets * self.dummies_per_bucket
        return self.tree.server_memory_bytes + extra_slots * self.tree.stored_block_bytes

    @property
    def stash_occupancy(self) -> int:
        """Current stash size in blocks."""
        return len(self.stash)

    # ------------------------------------------------------------------
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one RingORAM access (online read + scheduled evictions)."""
        if not 0 <= block_id < self.config.num_blocks:
            raise BlockNotFoundError(
                f"block {block_id} outside [0, {self.config.num_blocks})"
            )
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        block = self.stash.pop(block_id)
        leaf = self.position_map.get(block_id)
        if block is None:
            block = self._online_read(leaf, block_id)
        else:
            self._online_read(leaf, None)

        if op is AccessOp.WRITE:
            block.payload = new_payload
        payload = block.payload

        new_leaf = int(self.rng.integers(0, self.config.num_leaves))
        block.leaf = new_leaf
        self.position_map.set(block_id, new_leaf)
        self.stash.add(block)

        self._access_count += 1
        if self._access_count % self.evict_rate == 0:
            self._evict_path()
        self._reshuffle_exhausted_buckets(leaf)
        self.counter.observe_stash(len(self.stash))
        return payload

    # ------------------------------------------------------------------
    def _online_read(self, leaf: int, block_id: Optional[int]) -> Optional[Block]:
        """Read one block per bucket along the path; return the target if found."""
        found: Optional[Block] = None
        indices = path_node_indices(leaf, self.tree.depth)
        for index in indices:
            bucket = self.tree.bucket_by_index(index)
            if block_id is not None and found is None:
                candidate = bucket.remove(block_id)
                if candidate is not None:
                    found = candidate
            self._bucket_read_counts[index] += 1
        num_buckets = len(indices)
        num_bytes = num_buckets * self.tree.stored_block_bytes
        self.counter.record_path_read(num_buckets, num_bytes, dummy=block_id is None)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=block_id is None)
        if block_id is not None and found is None:
            raise BlockNotFoundError(f"block {block_id} missing from its path")
        return found

    def _reshuffle_exhausted_buckets(self, leaf: int) -> None:
        """Reshuffle buckets on the accessed path that ran out of dummies."""
        for index in path_node_indices(leaf, self.tree.depth):
            if self._bucket_read_counts[index] < self.dummies_per_bucket:
                continue
            bucket = self.tree.bucket_by_index(index)
            level = (index + 1).bit_length() - 1
            capacity = self.tree.capacity_at_level(level)
            slot_bytes = (capacity + self.dummies_per_bucket) * self.tree.stored_block_bytes
            # A reshuffle reads and rewrites the whole bucket.
            self.counter.record_path_read(1, slot_bytes, dummy=True)
            self.counter.record_path_write(1, slot_bytes)
            self.timing.charge_path_transfer(1, 2 * slot_bytes)
            self._bucket_read_counts[index] = 0
            # Contents stay in place; only dummies are refreshed.
            _ = bucket

    def _evict_path(self) -> None:
        """Full read-and-rewrite of one path in reverse-lexicographic order."""
        leaf = reverse_lexicographic_leaf(self._evict_counter, self.tree.depth)
        self._evict_counter += 1
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        for block in self.tree.read_path(leaf):
            self.stash.add(block)
        self.counter.record_path_read(num_buckets, num_bytes, dummy=True)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

        placement = self._plan_write_back(leaf)
        self.tree.write_path(leaf, placement)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        for index in path_node_indices(leaf, self.tree.depth):
            self._bucket_read_counts[index] = 0

    def _plan_write_back(self, leaf: int) -> dict[int, list[Block]]:
        return plan_greedy_write_back(self.tree, self.stash, leaf)

    # ------------------------------------------------------------------
    def total_real_blocks(self) -> int:
        """Blocks across tree and stash; invariant-checked in tests."""
        return self.tree.real_block_count() + len(self.stash)
