"""RingORAM (Ren et al.) — the bandwidth-optimised comparator of Section VIII-G.

RingORAM reduces online bandwidth by reading a single block from every bucket
on the accessed path (the target block where present, a fresh dummy
otherwise) instead of the whole bucket.  Buckets are reshuffled after their
dummies are exhausted, and a full evict-path is performed every ``evict_rate``
accesses following the reverse-lexicographic leaf order.

This is a faithful-but-simplified model: XOR-compression of the online read
and the exact metadata layout of the original paper are abstracted away, but
the quantities the comparison cares about — blocks moved per access, eviction
frequency, stash behaviour — follow the protocol.

The protocol lives in :class:`RingProtocolMixin`, written against the
storage hooks of :class:`~repro.oram.engine.TreeORAMEngine`, so the same
control flow runs on both backends: :class:`RingORAM` (per-object reference)
and :class:`ArrayRingORAM` (vectorized twin, bit-identical counters for a
fixed seed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import (
    BlockNotFoundError,
    ConfigurationError,
    StashOverflowError,
)
from repro.memory.accounting import TrafficCounter
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.engine import (
    ArrayStorageEngine,
    ObjectStorageEngine,
    TreeORAMEngine,
    _fused_fetch,
)
from repro.oram.position_map import PositionMap
from repro.oram.write_back import fused_greedy_write_back as _fused_write_back


def reverse_lexicographic_leaf(counter: int, depth: int) -> int:
    """Leaf visited at eviction number ``counter`` in reverse-lexicographic order."""
    leaf = 0
    value = counter % (1 << depth)
    for bit in range(depth):
        leaf |= ((value >> bit) & 1) << (depth - 1 - bit)
    return leaf


class RingProtocolMixin:
    """RingORAM control flow over the shared engine's storage hooks.

    The mixin owns every protocol decision — online single-block reads,
    the per-bucket dummy budget, scheduled reverse-lexicographic evictions —
    and all counter/timing charges.  Storage backends only move blocks, so
    the per-object and array engines are decision-identical by construction.
    """

    #: RingORAM's access is an online single-block read plus scheduled
    #: evictions; the generic batched access protocol would bypass it.
    SUPPORTS_BATCHED_ACCESS = False

    def __init__(
        self,
        config: ORAMConfig,
        dummies_per_bucket: int = 4,
        evict_rate: int = 4,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
        allocator=None,
    ):
        if dummies_per_bucket < 1:
            raise ConfigurationError("dummies_per_bucket must be >= 1")
        if evict_rate < 1:
            raise ConfigurationError("evict_rate must be >= 1")
        self.dummies_per_bucket = dummies_per_bucket
        self.evict_rate = evict_rate
        super().__init__(
            config,
            timing=timing,
            counter=counter,
            rng=rng,
            observer=observer,
            allocator=allocator,
        )
        # Number of single-block reads a bucket has served since its last
        # reshuffle; once it reaches ``dummies_per_bucket`` the bucket must be
        # reshuffled (read and rewritten in full).
        self._bucket_read_counts = np.zeros(self.tree.num_buckets, dtype=np.int64)
        self._access_count = 0
        self._evict_counter = 0

    # ------------------------------------------------------------------
    @property
    def server_memory_bytes(self) -> int:
        # Ring buckets carry extra dummy slots compared to the PathORAM tree.
        extra_slots = self.tree.num_buckets * self.dummies_per_bucket
        return self.tree.server_memory_bytes + extra_slots * self.tree.stored_block_bytes

    # ------------------------------------------------------------------
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one RingORAM access (online read + scheduled evictions)."""
        self._check_block_id(block_id)
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        handle = self._stash_detach(block_id)
        leaf = self.position_map.get(block_id)
        # oblivious: allow[OBL001] both arms issue byte-identical online reads
        # — the branch only selects which block is removed; this is RingORAM's
        # real/dummy read indistinguishability
        if handle is None:
            handle = self._online_read(leaf, block_id)
        else:
            self._online_read(leaf, None)

        payload = self._serve(handle, op, new_payload)

        new_leaf = self._draw_leaf()
        self.position_map.set(block_id, new_leaf)
        self._stash_insert(handle, new_leaf)

        self._access_count += 1
        if self._access_count % self.evict_rate == 0:
            self._evict_path()
        self._reshuffle_exhausted_buckets(leaf)
        self.counter.observe_stash(len(self.stash))
        return payload

    # ------------------------------------------------------------------
    def _online_read(self, leaf: int, block_id: Optional[int]):
        """Read one block per bucket along the path; return the target if found.

        A dummy online read (``block_id is None``) touches exactly the same
        number of buckets and moves exactly the same number of bytes as a
        real one — the indistinguishability RingORAM's security relies on.
        """
        found = None
        # oblivious: allow[OBL001] dummy and real online reads move identical
        # buckets and bytes (see docstring); only the removed block differs
        if block_id is not None:
            found = self._remove_from_path(leaf, block_id)
        indices = self.tree.path_bucket_indices(leaf)
        self._bucket_read_counts[indices] += 1
        num_buckets = self.tree.depth + 1
        num_bytes = num_buckets * self.tree.stored_block_bytes
        self.counter.record_path_read(num_buckets, num_bytes, dummy=block_id is None)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=block_id is None)
        # oblivious: allow[OBL001] integrity check; aborts the run loudly
        if block_id is not None and found is None:
            raise BlockNotFoundError(f"block {block_id} missing from its path")
        return found

    def _reshuffle_exhausted_buckets(self, leaf: int) -> None:
        """Reshuffle buckets on the accessed path that ran out of dummies."""
        indices = np.asarray(self.tree.path_bucket_indices(leaf), dtype=np.int64)
        exhausted = indices[
            self._bucket_read_counts[indices] >= self.dummies_per_bucket
        ]
        for index in exhausted.tolist():
            level = (index + 1).bit_length() - 1
            capacity = self.tree.capacity_at_level(level)
            slot_bytes = (
                capacity + self.dummies_per_bucket
            ) * self.tree.stored_block_bytes
            # A reshuffle reads and rewrites the whole bucket; contents stay
            # in place, only dummies are refreshed.
            self.counter.record_path_read(1, slot_bytes, dummy=True)
            self.counter.record_path_write(1, slot_bytes)
            self.timing.charge_path_transfer(1, 2 * slot_bytes)
            self._bucket_read_counts[index] = 0

    def _evict_path(self) -> None:
        """Full read-and-rewrite of one path in reverse-lexicographic order."""
        leaf = reverse_lexicographic_leaf(self._evict_counter, self.tree.depth)
        self._evict_counter += 1
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self._fetch_path(leaf)
        self.counter.record_path_read(num_buckets, num_bytes, dummy=True)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

        self._commit_write_back(leaf)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        self._bucket_read_counts[self.tree.path_bucket_indices(leaf)] = 0


class RingORAM(RingProtocolMixin, ObjectStorageEngine):
    """Simplified RingORAM client and server model (per-object reference)."""


class ArrayRingORAM(RingProtocolMixin, ArrayStorageEngine):
    """Vectorized RingORAM twin: slot-array buckets with shared control flow.

    Online reads gather the whole path's slots in one vectorized compare
    (:meth:`~repro.oram.tree.ArrayTreeStorage.remove_on_path`), evictions
    reuse the array engine's vectorized greedy write-back planner, and
    per-bucket read counts live in one numpy vector — while drawing from the
    RNG in exactly the per-object order, so a fixed seed gives bit-identical
    traffic counters.

    :meth:`run_trace` fuses the whole protocol — online reads, scheduled
    reverse-lexicographic evictions, bucket reshuffles — into one loop over
    a dict stash mirror with deferred counter/timing aggregation, the same
    discipline as :meth:`ArrayStorageEngine._run_trace_fused`.
    """

    def run_trace(
        self,
        block_ids,
        ops=None,
        payloads=None,
    ):
        """Fused RingORAM trace driver (sequential semantics)."""
        if (
            type(self).access is not RingProtocolMixin.access
            or type(self.position_map) is not PositionMap
        ):
            return TreeORAMEngine.run_trace(self, block_ids, ops, payloads)
        return self._run_trace_ring_fused(block_ids, ops, payloads)

    def _run_trace_ring_fused(
        self,
        block_ids,
        ops=None,
        payloads=None,
    ):
        """One-loop RingORAM execution over the dict stash mirror.

        Decision-identical to the per-access protocol: detach moves the
        target out of the mirror, a scheduled evict-path empties the path
        before its write-back (so the shared zero-occupancy write-back
        helper applies), and reshuffle checks run against the same bucket
        read counts in the same order.  All counter/timing charges accumulate
        in locals and flush on exit.
        """
        ids = block_ids.tolist() if isinstance(block_ids, np.ndarray) else block_ids
        n = len(ids)
        op_seq, payload_seq = self._normalize_trace_args(n, ops, payloads)
        results = [None] * n

        WRITE = AccessOp.WRITE
        num_blocks = self.config.num_blocks
        num_leaves = self._num_leaves
        tree = self.tree
        stash = self.stash
        counter = self.counter
        timing = self.timing
        observer = self.observer
        capacity = stash.capacity
        depth = self._depth
        evict_rate = self.evict_rate
        dummies_per_bucket = self.dummies_per_bucket
        read_counts = self._bucket_read_counts
        rc_item = read_counts.item
        counts_scratch = np.empty(self._depth + 1, dtype=read_counts.dtype)

        pm = self.position_map.leaves
        pm_item = pm.item
        payload_store = self._payloads
        payload_get = payload_store.get
        slots = tree.slot_array
        occ = tree.bucket_occupancies
        caps = tree.bucket_capacities
        level_base = tree.level_base
        node_base = [(1 << level) - 1 for level in range(depth + 1)]
        groups = [[] for _ in range(depth + 1)]
        read_ids = tree.read_path_ids
        path_nodes = tree.path_nodes
        remove_on_path = tree.remove_on_path
        fetch = _fused_fetch
        write_back = _fused_write_back

        # Per-charge deltas, memoised per geometry exactly as the live
        # protocol's charge_path_transfer calls would be.
        path_buckets, path_bytes = tree.path_cost(0)
        dt_path = timing.path_transfer_delta(path_buckets, path_bytes)
        dt_client = timing.client_overhead_us * 1e-6
        online_buckets = depth + 1
        online_bytes = online_buckets * tree.stored_block_bytes
        dt_online = timing.path_transfer_delta(online_buckets, online_bytes)
        reshuffle_bytes = [
            (caps[level] + dummies_per_bucket) * tree.stored_block_bytes
            for level in range(depth + 1)
        ]
        dt_reshuffle = [
            timing.path_transfer_delta(1, 2 * slot_bytes)
            for slot_bytes in reshuffle_bytes
        ]

        rng_integers = self.rng.integers
        draw_block = self.LEAF_DRAW_BLOCK or 512
        leaf_buf = self._leaf_buf
        leaf_pos = self._leaf_buf_pos
        access_count = self._access_count
        evict_counter = self._evict_counter

        stash_map = {}
        tail = stash.tail
        row_leaves = stash.leaf_rows[:tail].tolist()
        # oblivious: allow[OBL002] client-local mirror build over private
        # stash rows; no server traffic is issued here
        for row, resident in enumerate(stash.id_rows[:tail].tolist()):
            # oblivious: allow[OBL001] hole-skip in the client-local mirror
            if resident >= 0:
                stash_map[resident] = row_leaves[row]

        logical = path_reads = path_writes = dummy_reads = 0
        buckets_read = buckets_written = bytes_read = bytes_written = 0
        stash_peak = counter.stash_peak
        elapsed = timing.elapsed_s
        history = counter.stash_history if counter.record_stash_history else None

        try:
            for index in range(n):
                block_id = ids[index]
                # oblivious: allow[OBL001] bounds check against the public
                # num_blocks; invalid ids abort the run loudly
                if block_id < 0 or block_id >= num_blocks:
                    raise BlockNotFoundError(
                        f"block {block_id} outside [0, {num_blocks})"
                    )
                logical += 1
                elapsed += dt_client

                stashed = block_id in stash_map
                # oblivious: allow[OBL001] client-side stash detach; the online
                # read below is byte-identical on both arms (RingORAM's
                # real/dummy indistinguishability)
                if stashed:
                    del stash_map[block_id]
                leaf = pm_item(block_id)

                # Online read: one block per bucket on the path.
                # oblivious: allow[OBL001] selects which block is removed; the
                # read shape is identical either way (see above)
                found = True if stashed else remove_on_path(leaf, block_id)
                nodes = path_nodes(leaf)
                # One gather/add/scatter through the counts scratch both
                # bumps the path's read counts and yields the post-bump
                # values the reshuffle check needs — half the fancy-index
                # passes of a ``+= 1`` followed by a separate ``take``.
                read_counts.take(nodes, out=counts_scratch)
                counts_scratch += 1
                read_counts[nodes] = counts_scratch
                nodes_list = None
                # oblivious: allow[OBL001] dummy/real tally split for the
                # accounting mirror; buckets and bytes charged identically
                if stashed:
                    dummy_reads += 1
                else:
                    path_reads += 1
                buckets_read += online_buckets
                bytes_read += online_bytes
                elapsed += dt_online
                if observer is not None:
                    observer.observe_path(leaf, dummy=stashed)
                # oblivious: allow[OBL001] integrity check; aborts the run
                if not found:
                    raise BlockNotFoundError(
                        f"block {block_id} missing from its path"
                    )

                if op_seq is not None and op_seq[index] is WRITE:
                    payload = payload_seq[index]
                    payload_store[block_id] = payload
                    results[index] = payload
                else:
                    results[index] = payload_get(block_id)

                if leaf_pos == len(leaf_buf):
                    leaf_buf = rng_integers(0, num_leaves, size=draw_block).tolist()
                    leaf_pos = 0
                new_leaf = leaf_buf[leaf_pos]
                leaf_pos += 1
                pm[block_id] = new_leaf
                stash_map[block_id] = new_leaf
                # oblivious: allow[OBL001] stash-capacity check: overflow is
                # the protocol's stated failure event and aborts the run
                if capacity is not None and len(stash_map) > capacity:
                    raise StashOverflowError(
                        f"stash exceeded its capacity of {capacity} blocks"
                    )

                access_count += 1
                if access_count % evict_rate == 0:
                    # The evict fetch reuses the tree's path scratches, so
                    # materialise the accessed path's node ids first.
                    nodes_list = nodes.tolist()
                    evict_leaf = reverse_lexicographic_leaf(evict_counter, depth)
                    evict_counter += 1
                    fetch(read_ids, pm, stash_map, evict_leaf)
                    dummy_reads += 1
                    buckets_read += path_buckets
                    bytes_read += path_bytes
                    elapsed += dt_path
                    # oblivious: allow[OBL001] stash-capacity check: overflow
                    # aborts the run loudly
                    if capacity is not None and len(stash_map) > capacity:
                        raise StashOverflowError(
                            f"stash exceeded its capacity of {capacity} blocks"
                        )
                    write_back(
                        stash_map,
                        groups,
                        caps,
                        level_base,
                        node_base,
                        slots,
                        occ,
                        depth,
                        evict_leaf,
                    )
                    path_writes += 1
                    buckets_written += path_buckets
                    bytes_written += path_bytes
                    elapsed += dt_path
                    read_counts[path_nodes(evict_leaf)] = 0

                # Reshuffle any bucket on the accessed path whose dummies
                # ran out (post-eviction counts, as in the live protocol).
                # On non-evict accesses the post-bump counts scratch is
                # still current, and one vectorized max gates the level
                # scan — most accesses leave every bucket below threshold,
                # so they skip the scan (and its tolist) entirely.  An
                # eviction may have zeroed nodes the two paths share (the
                # root always), so evict accesses recompute per node from
                # the list materialised before the scratch was reused.
                if nodes_list is not None:
                    # oblivious: allow[ALLOC001] runs only on eviction accesses
                    # (1 in evict_rate); this amortized depth+1 list is inside
                    # the tracemalloc budget measured by tests/test_fused_trace
                    counts_list = [rc_item(node) for node in nodes_list]
                elif counts_scratch.max() >= dummies_per_bucket:
                    counts_list = counts_scratch.tolist()
                else:
                    counts_list = None
                if counts_list is not None:
                    for level, count in enumerate(counts_list):
                        if count >= dummies_per_bucket:
                            dummy_reads += 1
                            path_writes += 1
                            buckets_read += 1
                            buckets_written += 1
                            slot_bytes = reshuffle_bytes[level]
                            bytes_read += slot_bytes
                            bytes_written += slot_bytes
                            elapsed += dt_reshuffle[level]
                            node = (
                                nodes.item(level)
                                if nodes_list is None
                                else nodes_list[level]
                            )
                            read_counts[node] = 0

                occupancy = len(stash_map)
                # oblivious: allow[OBL001] client-side metrics (stash peak
                # tracking); no server traffic
                if occupancy > stash_peak:
                    stash_peak = occupancy
                if history is not None:
                    history.append(occupancy)
        finally:
            self._leaf_buf = leaf_buf
            self._leaf_buf_pos = leaf_pos
            self._access_count = access_count
            self._evict_counter = evict_counter
            stash.clear()
            # oblivious: allow[OBL001] client-local stash mirror write-back on
            # exit; no server traffic
            if stash_map:
                count = len(stash_map)
                stash.append_rows(
                    np.fromiter(stash_map.keys(), np.int64, count),
                    np.fromiter(stash_map.values(), np.int64, count),
                )
            counter.add_bulk(
                logical,
                path_reads,
                path_writes,
                dummy_reads,
                buckets_read,
                buckets_written,
                bytes_read,
                bytes_written,
                stash_peak,
                0,
            )
            timing.set_elapsed(elapsed)
        return results
