"""RingORAM (Ren et al.) — the bandwidth-optimised comparator of Section VIII-G.

RingORAM reduces online bandwidth by reading a single block from every bucket
on the accessed path (the target block where present, a fresh dummy
otherwise) instead of the whole bucket.  Buckets are reshuffled after their
dummies are exhausted, and a full evict-path is performed every ``evict_rate``
accesses following the reverse-lexicographic leaf order.

This is a faithful-but-simplified model: XOR-compression of the online read
and the exact metadata layout of the original paper are abstracted away, but
the quantities the comparison cares about — blocks moved per access, eviction
frequency, stash behaviour — follow the protocol.

The protocol lives in :class:`RingProtocolMixin`, written against the
storage hooks of :class:`~repro.oram.engine.TreeORAMEngine`, so the same
control flow runs on both backends: :class:`RingORAM` (per-object reference)
and :class:`ArrayRingORAM` (vectorized twin, bit-identical counters for a
fixed seed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.memory.accounting import TrafficCounter
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.engine import ArrayStorageEngine, ObjectStorageEngine


def reverse_lexicographic_leaf(counter: int, depth: int) -> int:
    """Leaf visited at eviction number ``counter`` in reverse-lexicographic order."""
    leaf = 0
    value = counter % (1 << depth)
    for bit in range(depth):
        leaf |= ((value >> bit) & 1) << (depth - 1 - bit)
    return leaf


class RingProtocolMixin:
    """RingORAM control flow over the shared engine's storage hooks.

    The mixin owns every protocol decision — online single-block reads,
    the per-bucket dummy budget, scheduled reverse-lexicographic evictions —
    and all counter/timing charges.  Storage backends only move blocks, so
    the per-object and array engines are decision-identical by construction.
    """

    #: RingORAM's access is an online single-block read plus scheduled
    #: evictions; the generic batched access protocol would bypass it.
    SUPPORTS_BATCHED_ACCESS = False

    def __init__(
        self,
        config: ORAMConfig,
        dummies_per_bucket: int = 4,
        evict_rate: int = 4,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
        allocator=None,
    ):
        if dummies_per_bucket < 1:
            raise ConfigurationError("dummies_per_bucket must be >= 1")
        if evict_rate < 1:
            raise ConfigurationError("evict_rate must be >= 1")
        self.dummies_per_bucket = dummies_per_bucket
        self.evict_rate = evict_rate
        super().__init__(
            config,
            timing=timing,
            counter=counter,
            rng=rng,
            observer=observer,
            allocator=allocator,
        )
        # Number of single-block reads a bucket has served since its last
        # reshuffle; once it reaches ``dummies_per_bucket`` the bucket must be
        # reshuffled (read and rewritten in full).
        self._bucket_read_counts = np.zeros(self.tree.num_buckets, dtype=np.int64)
        self._access_count = 0
        self._evict_counter = 0

    # ------------------------------------------------------------------
    @property
    def server_memory_bytes(self) -> int:
        # Ring buckets carry extra dummy slots compared to the PathORAM tree.
        extra_slots = self.tree.num_buckets * self.dummies_per_bucket
        return self.tree.server_memory_bytes + extra_slots * self.tree.stored_block_bytes

    # ------------------------------------------------------------------
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one RingORAM access (online read + scheduled evictions)."""
        self._check_block_id(block_id)
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        handle = self._stash_detach(block_id)
        leaf = self.position_map.get(block_id)
        if handle is None:
            handle = self._online_read(leaf, block_id)
        else:
            self._online_read(leaf, None)

        payload = self._serve(handle, op, new_payload)

        new_leaf = int(self.rng.integers(0, self._num_leaves))
        self.position_map.set(block_id, new_leaf)
        self._stash_insert(handle, new_leaf)

        self._access_count += 1
        if self._access_count % self.evict_rate == 0:
            self._evict_path()
        self._reshuffle_exhausted_buckets(leaf)
        self.counter.observe_stash(len(self.stash))
        return payload

    # ------------------------------------------------------------------
    def _online_read(self, leaf: int, block_id: Optional[int]):
        """Read one block per bucket along the path; return the target if found.

        A dummy online read (``block_id is None``) touches exactly the same
        number of buckets and moves exactly the same number of bytes as a
        real one — the indistinguishability RingORAM's security relies on.
        """
        found = None
        if block_id is not None:
            found = self._remove_from_path(leaf, block_id)
        indices = self.tree.path_bucket_indices(leaf)
        self._bucket_read_counts[indices] += 1
        num_buckets = self.tree.depth + 1
        num_bytes = num_buckets * self.tree.stored_block_bytes
        self.counter.record_path_read(num_buckets, num_bytes, dummy=block_id is None)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=block_id is None)
        if block_id is not None and found is None:
            raise BlockNotFoundError(f"block {block_id} missing from its path")
        return found

    def _reshuffle_exhausted_buckets(self, leaf: int) -> None:
        """Reshuffle buckets on the accessed path that ran out of dummies."""
        indices = np.asarray(self.tree.path_bucket_indices(leaf), dtype=np.int64)
        exhausted = indices[
            self._bucket_read_counts[indices] >= self.dummies_per_bucket
        ]
        for index in exhausted.tolist():
            level = (index + 1).bit_length() - 1
            capacity = self.tree.capacity_at_level(level)
            slot_bytes = (
                capacity + self.dummies_per_bucket
            ) * self.tree.stored_block_bytes
            # A reshuffle reads and rewrites the whole bucket; contents stay
            # in place, only dummies are refreshed.
            self.counter.record_path_read(1, slot_bytes, dummy=True)
            self.counter.record_path_write(1, slot_bytes)
            self.timing.charge_path_transfer(1, 2 * slot_bytes)
            self._bucket_read_counts[index] = 0

    def _evict_path(self) -> None:
        """Full read-and-rewrite of one path in reverse-lexicographic order."""
        leaf = reverse_lexicographic_leaf(self._evict_counter, self.tree.depth)
        self._evict_counter += 1
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self._fetch_path(leaf)
        self.counter.record_path_read(num_buckets, num_bytes, dummy=True)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

        self._commit_write_back(leaf)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        self._bucket_read_counts[self.tree.path_bucket_indices(leaf)] = 0


class RingORAM(RingProtocolMixin, ObjectStorageEngine):
    """Simplified RingORAM client and server model (per-object reference)."""


class ArrayRingORAM(RingProtocolMixin, ArrayStorageEngine):
    """Vectorized RingORAM twin: slot-array buckets with shared control flow.

    Online reads gather the whole path's slots in one vectorized compare
    (:meth:`~repro.oram.tree.ArrayTreeStorage.remove_on_path`), evictions
    reuse the array engine's vectorized greedy write-back planner, and
    per-bucket read counts live in one numpy vector — while drawing from the
    RNG in exactly the per-object order, so a fixed seed gives bit-identical
    traffic counters.
    """
