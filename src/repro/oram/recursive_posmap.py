"""Recursive ORAM-backed position map (standard PathORAM recursion).

The dense :class:`~repro.oram.position_map.PositionMap` keeps one 8-byte
leaf label per block in trusted client memory — hundreds of MB at the
paper's DLRM scale (8M–16M rows).  The recursive map closes that gap the
way the original PathORAM paper does: leaf labels are packed
``positions_per_block`` (χ) to a block and stored in a *smaller* tree
ORAM, whose own position map recurses the same way until the top-level
dense array fits under ``cutoff_bytes`` of client memory.

Geometry.  With ``n`` logical blocks, recursion level ``k`` (1-based)
holds ``m_k = ceil(m_{k-1} / χ)`` blocks (``m_0 = n``); level-``k`` block
``j`` packs the labels of level-``(k-1)`` blocks ``jχ .. jχ+χ-1`` (level 0
"blocks" are the logical ids, whose labels are main-tree leaves).  Levels
are added while the dense map of the previous level exceeds
``cutoff_bytes``; the labels of the final level's blocks form the dense
top map held in client memory.

Each recursion level is a real PathORAM instance in miniature: an
:class:`~repro.oram.tree.ArrayTreeStorage` with uniform bucket capacity,
a dict stash, and the classic read-remap-greedy-write-back access (no
background eviction — the greedy write-back after every miss keeps the
per-level stash at the usual O(log m) residue).  Per-level arrays are
always process-private: the shared-memory pool's logical names
("tree.slots", ...) belong to the main tree, and only the packed
level-1 entry array — the exact dense map content — is adopted under
"posmap.leaves" so parent-side snapshotting keeps working.

Traffic.  Every recursion path read/write is charged to the owning
engine's :class:`~repro.memory.accounting.TrafficCounter` under the
dedicated ``posmap_*`` category (and to the timing model), keeping the
main-tree counters directly comparable between dense and recursive runs.
A ``get`` performs one full top-down walk; the matching ``set`` of the
same block id rides the walk for free (the standard recursion folds the
label update into the access that read it), which the map models as a
*write entitlement*: ``get(b)`` records ``b``, and the next ``set(b, ...)``
consumes the entitlement without a second walk.  A ``set`` without an
entitlement (e.g. remapping a stash-hit block) is its own charged walk.

Determinism.  The constructor draws the initial logical labels with the
exact RNG call the dense map makes, so an engine built with either map
consumes the engine stream identically and makes bit-identical decisions.
All recursion-internal label draws come from independent generators
spawned off the seed (:func:`repro.utils.rng.spawn_rngs`), never from the
engine stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import (
    BlockNotFoundError,
    ConfigurationError,
    IntegrityError,
)
from repro.memory.accounting import TrafficCounter
from repro.oram.position_map import _as_int_array
from repro.oram.shm import DEFAULT_ALLOCATOR, ArrayAllocator
from repro.oram.tree import ArrayTreeStorage
from repro.oram.write_back import fused_greedy_write_back
from repro.utils.bits import required_depth
from repro.utils.rng import spawn_rngs


class _RecursionLevel:
    """One tree-ORAM level of the recursion (client + server state)."""

    __slots__ = (
        "tree",
        "stash",
        "labels",
        "rng",
        "num_leaves",
        "num_blocks",
        "path_buckets",
        "path_bytes",
        "depth",
        "slots",
        "occ",
        "caps",
        "level_base",
        "node_base",
        "groups",
        "read_stream",
    )

    def __init__(
        self,
        num_blocks: int,
        bucket_size: int,
        label_bytes: int,
        metadata_bytes_per_block: int,
        rng: np.random.Generator,
    ):
        depth = required_depth(num_blocks)
        self.tree = ArrayTreeStorage(
            depth=depth,
            bucket_capacities=tuple(bucket_size for _ in range(depth + 1)),
            block_size_bytes=label_bytes,
            metadata_bytes_per_block=metadata_bytes_per_block,
            allocator=None,
        )
        self.num_blocks = num_blocks
        self.num_leaves = self.tree.num_leaves
        self.depth = depth
        self.rng = rng
        self.path_buckets, self.path_bytes = self.tree.path_cost(0)
        # Server-side metadata mirror: a block's (id, leaf) tag travels with
        # it on the wire, so labels of path-fetched blocks are readable
        # without an oblivious lookup.  Not client memory.
        self.labels = rng.integers(
            0, self.num_leaves, size=num_blocks, dtype=np.int64
        )
        overflow = self.tree.bulk_place(self.labels)
        self.stash = {
            int(block): int(self.labels[block]) for block in overflow.tolist()
        }
        # Bound fused write-back operands (same shape the trace drivers use).
        self.slots = self.tree.slot_array
        self.occ = self.tree.bucket_occupancies
        self.caps = self.tree.bucket_capacities
        self.level_base = self.tree.level_base
        self.node_base = [(1 << level) - 1 for level in range(depth + 1)]
        self.groups = [[] for _ in range(depth + 1)]
        self.read_stream: Optional[list[int]] = None

    def client_memory_bytes(self, positions_per_block: int) -> int:
        """Stash residue: χ packed labels plus the id/leaf bookkeeping."""
        return len(self.stash) * (positions_per_block * 8 + 16)


class RecursivePositionMap:
    """Drop-in :class:`PositionMap` replacement backed by recursion ORAMs.

    Presents the same interface (``get``/``set``/``get_many``/``set_many``,
    the charge-free ``peek``/``load`` channel, ``as_array``,
    ``client_memory_bytes``) but holds only the recursion top map and the
    per-level stashes in client memory; everything else lives in the
    recursion trees and is reached through charged oblivious accesses.

    Not exposed: the dense map's live ``leaves`` array.  The fused trace
    drivers write that array directly and would silently bypass recursion
    charging, so engines gate their fused paths on the position-map type
    and fall back to the generic per-access protocol under recursion.
    """

    def __init__(
        self,
        num_blocks: int,
        num_leaves: int,
        rng: np.random.Generator,
        allocator: Optional[ArrayAllocator] = None,
        positions_per_block: int = 64,
        cutoff_bytes: int = 1 << 16,
        bucket_size: int = 4,
        metadata_bytes_per_block: int = 16,
        counter: Optional[TrafficCounter] = None,
        timing=None,
        seed: int = 0,
        record_streams: bool = False,
    ):
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if num_leaves < 2:
            raise ConfigurationError("num_leaves must be >= 2")
        if positions_per_block < 2:
            raise ConfigurationError("positions_per_block must be >= 2")
        if cutoff_bytes < 8:
            raise ConfigurationError("cutoff_bytes must be >= 8")
        if bucket_size < 1:
            raise ConfigurationError("bucket_size must be >= 1")
        self._num_blocks = num_blocks
        self._num_leaves = num_leaves
        self._chi = positions_per_block
        self._cutoff_bytes = cutoff_bytes
        self.counter = counter if counter is not None else TrafficCounter()
        self.timing = timing

        # Level sizes: recurse while the dense map of the previous level
        # would not fit under the cutoff.
        sizes: list[int] = []
        entries = num_blocks
        while entries * 8 > cutoff_bytes and entries > 1:
            entries = -(-entries // positions_per_block)
            sizes.append(entries)
        depth_count = len(sizes)

        # The *same* draw the dense map's constructor makes, so an engine
        # consumes its RNG stream identically with either map.
        initial = rng.integers(0, num_leaves, size=num_blocks, dtype=np.int64)

        # Packed level-1 entries (the logical labels).  Padded to a whole
        # number of χ-blocks; the pad cells are never addressed.  Adopted
        # under the dense map's logical name so shared-memory snapshotting
        # of shard position maps keeps working.
        alloc = allocator if allocator is not None else DEFAULT_ALLOCATOR
        if depth_count:
            padded = np.zeros(sizes[0] * positions_per_block, dtype=np.int64)
            padded[:num_blocks] = initial
        else:
            padded = initial
        self._entries = alloc.adopt("posmap.leaves", padded)

        rngs = spawn_rngs(seed, depth_count) if depth_count else []
        self._levels: list[_RecursionLevel] = []
        # values[k] packs the labels of the level below: for level k the
        # entry of child index i (an index at level k-1) is values[k][i].
        # Level 1's values are the logical entries themselves.
        self._values: list[np.ndarray] = [self._entries]
        label_bytes = positions_per_block * 8
        for index, size in enumerate(sizes):
            level = _RecursionLevel(
                num_blocks=size,
                bucket_size=bucket_size,
                label_bytes=label_bytes,
                metadata_bytes_per_block=metadata_bytes_per_block,
                rng=rngs[index],
            )
            if record_streams:
                level.read_stream = []
            self._levels.append(level)
            if index + 1 < depth_count:
                values = np.zeros(
                    sizes[index + 1] * positions_per_block, dtype=np.int64
                )
                values[:size] = level.labels
                self._values.append(values)
        # Dense top map: labels of the last level's blocks (client memory).
        if depth_count:
            self._top = self._levels[-1].labels.copy()
        else:
            self._top = self._entries
        self._chi_pows = [positions_per_block**k for k in range(depth_count + 1)]
        # Outstanding write entitlements: ids whose last charged walk has
        # not had its folded-in label update consumed yet.  A simulation
        # artifact of splitting the walk into get-then-set; the real client
        # state it stands for is the open transaction's path buffer.
        self._pending: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_blocks

    @property
    def num_leaves(self) -> int:
        """Number of distinct main-tree paths blocks can map to."""
        return self._num_leaves

    @property
    def num_levels(self) -> int:
        """Number of recursion tree levels (0 = degenerate dense map)."""
        return len(self._levels)

    @property
    def positions_per_block(self) -> int:
        """Labels packed per recursion block (χ)."""
        return self._chi

    def geometry(self) -> list[dict[str, int]]:
        """Per-level shape summary (docs, experiments, diagnostics)."""
        return [
            {
                "level": index + 1,
                "blocks": level.num_blocks,
                "tree_depth": level.depth,
                "path_bytes": level.path_bytes,
                "stash_blocks": len(level.stash),
            }
            for index, level in enumerate(self._levels)
        ]

    def client_memory_bytes(self) -> int:
        """Honest client footprint: top map, level stashes, open walks."""
        total = int(self._top.nbytes)
        for level in self._levels:
            total += level.client_memory_bytes(self._chi)
        total += 8 * len(self._pending)
        return total

    def server_memory_bytes(self) -> int:
        """Server footprint of every recursion tree."""
        return sum(level.tree.server_memory_bytes for level in self._levels)

    # ------------------------------------------------------------------
    # The recursion walk
    # ------------------------------------------------------------------
    def _walk(self, block_id: int) -> int:
        """One charged top-down recursion access; returns the old entry.

        At each level the block holding ``block_id``'s entry is fetched
        (path read unless it is a stash hit), remapped to the fresh label
        its parent already installed, has the child's label read and
        refreshed, and is greedily written back.  The level-1 child entry
        — ``block_id``'s main-tree leaf — is returned *without* refreshing
        it: the engine owns that draw and installs it via :meth:`set`.
        """
        counter = self.counter
        timing = self.timing
        chi_pows = self._chi_pows
        values = self._values
        levels = self._levels

        top_index = block_id // chi_pows[len(levels)]
        leaf = int(self._top[top_index])
        top_level = levels[-1]
        fresh = int(top_level.rng.integers(0, top_level.num_leaves))
        self._top[top_index] = fresh

        for k in range(len(levels), 0, -1):
            level = levels[k - 1]
            stash = level.stash
            block = block_id // chi_pows[k]
            hit = block in stash
            # oblivious: allow[OBL001] client-side stash-hit fast path, the
            # same modeled behaviour as the main engine's access(); misses
            # and hits both refresh the block's label
            if not hit:
                fetched = level.tree.read_path_ids(leaf)
                labels = level.labels
                # oblivious: allow[OBL002] client-local stash merge of the
                # just-fetched path; labels ride the wire as block metadata
                for fetched_id in fetched.tolist():
                    stash[fetched_id] = int(labels[fetched_id])
                counter.record_posmap_path_read(level.path_bytes)
                if timing is not None:
                    timing.charge_path_transfer(
                        level.path_buckets, level.path_bytes
                    )
                if level.read_stream is not None:
                    level.read_stream.append(leaf)
                # oblivious: allow[OBL001] integrity check; aborts loudly
                if block not in stash:
                    raise IntegrityError(
                        f"recursion level {k} block {block} missing from "
                        f"both stash and path {leaf}"
                    )
            stash[block] = fresh
            level.labels[block] = fresh

            child = block_id // chi_pows[k - 1]
            # oblivious: allow[OBL001] level-1 terminates the walk: the
            # engine draws and installs the logical label itself
            if k > 1:
                child_level = levels[k - 2]
                next_leaf = int(values[k - 1][child])
                next_fresh = int(
                    child_level.rng.integers(0, child_level.num_leaves)
                )
                values[k - 1][child] = next_fresh
            else:
                next_leaf = int(values[0][child])
                next_fresh = -1
            # oblivious: allow[OBL001] write-back only follows a real path
            # read (stash hits moved no data), mirroring the main engine
            if not hit:
                fused_greedy_write_back(
                    stash,
                    level.groups,
                    level.caps,
                    level.level_base,
                    level.node_base,
                    level.slots,
                    level.occ,
                    level.depth,
                    leaf,
                )
                counter.record_posmap_path_write(level.path_bytes)
                if timing is not None:
                    timing.charge_path_transfer(
                        level.path_buckets, level.path_bytes
                    )
            leaf = next_leaf
            fresh = next_fresh
        return leaf

    # ------------------------------------------------------------------
    # Charged interface (PositionMap-compatible)
    # ------------------------------------------------------------------
    def get(self, block_id: int) -> int:
        """Current leaf of ``block_id`` via one charged recursion walk."""
        self._check(block_id)
        if not self._levels:
            return int(self._entries[block_id])
        value = self._walk(block_id)
        self._pending.add(block_id)
        return value

    def set(self, block_id: int, leaf: int) -> None:
        """Reassign ``block_id`` to ``leaf``.

        Free when it consumes the write entitlement of a preceding
        :meth:`get` of the same id (the update rides that walk); otherwise
        the update is its own charged walk.
        """
        self._check(block_id)
        if not 0 <= leaf < self._num_leaves:
            raise ConfigurationError(
                f"leaf {leaf} outside [0, {self._num_leaves})"
            )
        if self._levels:
            # oblivious: allow[OBL001] entitlement bookkeeping is client
            # state; the walk below is charged iff no entitlement exists
            if block_id in self._pending:
                self._pending.discard(block_id)
            else:
                self._walk(block_id)
        self._entries[block_id] = leaf

    def get_many(self, block_ids) -> np.ndarray:
        """Vectorised :meth:`get` (one charged walk per id)."""
        ids = _as_int_array(block_ids, "block_ids")
        # oblivious: allow[OBL001] input validation; aborts loudly before
        # any observable access happens
        if ids.size and (ids.min() < 0 or ids.max() >= self._num_blocks):
            raise BlockNotFoundError("block id outside position map range")
        if not self._levels:
            return self._entries[ids]
        out = np.empty(ids.size, dtype=np.int64)
        flat = ids.reshape(-1)
        for index in range(flat.size):
            block_id = int(flat[index])
            out[index] = self._walk(block_id)
            self._pending.add(block_id)
        return out.reshape(ids.shape)

    def set_many(self, block_ids, leaves) -> None:
        """Vectorised :meth:`set` (entitlements consumed per id)."""
        ids = _as_int_array(block_ids, "block_ids")
        new_leaves = _as_int_array(leaves, "leaves")
        # oblivious: allow[OBL001] input validation; aborts loudly before
        # any observable access happens
        if ids.size != new_leaves.size:
            raise ConfigurationError(
                "block_ids and leaves must have equal length"
            )
        # oblivious: allow[OBL001] empty batch is public (the caller's
        # batch size is not a secret)
        if ids.size == 0:
            return
        # oblivious: allow[OBL001] input validation; aborts loudly before
        # any observable access happens
        if ids.min() < 0 or ids.max() >= self._num_blocks:
            raise BlockNotFoundError("block id outside position map range")
        if new_leaves.min() < 0 or new_leaves.max() >= self._num_leaves:
            raise ConfigurationError("leaf outside position map leaf range")
        flat_ids = ids.reshape(-1)
        flat_leaves = new_leaves.reshape(-1)
        for index in range(flat_ids.size):
            self.set(int(flat_ids[index]), int(flat_leaves[index]))

    # ------------------------------------------------------------------
    # Charge-free channel (metadata reads, trusted setup)
    # ------------------------------------------------------------------
    def peek(self, block_id: int) -> int:
        """Label of ``block_id`` through the metadata channel (no charge).

        Sanctioned only for blocks the caller just moved (their (id, leaf)
        tag travelled with them) and for trusted setup — the same contract
        as :meth:`PositionMap.peek`.
        """
        self._check(block_id)
        return int(self._entries[block_id])

    def peek_many(self, block_ids) -> np.ndarray:
        """Vectorised :meth:`peek` (same sanction rules)."""
        ids = _as_int_array(block_ids, "block_ids")
        if ids.size and (ids.min() < 0 or ids.max() >= self._num_blocks):
            raise BlockNotFoundError("block id outside position map range")
        return self._entries[ids]

    def load(self, block_id: int, leaf: int) -> None:
        """Trusted-setup assignment (never charged)."""
        self._check(block_id)
        if not 0 <= leaf < self._num_leaves:
            raise ConfigurationError(
                f"leaf {leaf} outside [0, {self._num_leaves})"
            )
        self._pending.discard(block_id)
        self._entries[block_id] = leaf

    def load_many(self, block_ids, leaves) -> None:
        """Trusted-setup bulk assignment (never charged)."""
        ids = _as_int_array(block_ids, "block_ids")
        new_leaves = _as_int_array(leaves, "leaves")
        if ids.size != new_leaves.size:
            raise ConfigurationError(
                "block_ids and leaves must have equal length"
            )
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._num_blocks:
            raise BlockNotFoundError("block id outside position map range")
        if new_leaves.min() < 0 or new_leaves.max() >= self._num_leaves:
            raise ConfigurationError("leaf outside position map leaf range")
        self._pending.difference_update(ids.reshape(-1).tolist())
        self._entries[ids] = new_leaves

    def as_array(self) -> np.ndarray:
        """Copy of the full logical map (tests, diagnostics, snapshots)."""
        return self._entries[: self._num_blocks].copy()

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < self._num_blocks:
            raise BlockNotFoundError(f"block {block_id} not in position map")
