"""Shared-memory array allocation for process-parallel shard execution.

The vectorized engines keep all hot state in a handful of flat numpy arrays
(tree slots/occupancies, stash id/leaf rows, the position map).  When a
shard engine runs inside a worker process, those arrays can be placed in
:mod:`multiprocessing.shared_memory` segments instead of private heap pages,
so the parent process can *snapshot* shard state — position maps, stash
rows, tree occupancy — by attaching to the segments and reading them
directly, without pickling megabytes through a pipe.

Two allocators implement one small protocol:

* :class:`ArrayAllocator` — the default: plain process-private numpy
  arrays, zero overhead, used everywhere outside the worker pool;
* :class:`SharedMemoryArrayPool` — one named ``SharedMemory`` segment per
  logical array.  The pool records a picklable :func:`registry` mapping
  logical names (``"tree.slots"``, ``"stash.ids"``, ``"posmap.leaves"``,
  ...) to ``(segment_name, shape, dtype)`` descriptors that the parent
  uses to attach.

Ownership and cleanup: the *worker* that created a pool owns its segments
and must call :meth:`SharedMemoryArrayPool.close` (unlinking them) before
exit — the executor's worker loop does this in a ``finally`` so even a
crashing shard leaves nothing behind.  The parent holds a belt-and-braces
sweep (:func:`unlink_registry`) for workers that died too hard to clean up.
Growth (the stash doubling its row arrays) allocates a fresh segment and
immediately unlinks the outgrown one; the old mapping stays valid for any
still-live view and disappears with the process.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

#: registry entry: logical name -> (segment name, shape, dtype string)
RegistryEntry = tuple[str, tuple[int, ...], str]
Registry = dict[str, RegistryEntry]


class ArrayAllocator:
    """Default array allocator: private numpy arrays, no shared segments.

    Every allocation carries a logical ``name`` so the shared-memory pool
    can expose it to the parent; the default allocator ignores the names.
    """

    #: Whether arrays from this allocator live in attachable shared memory.
    shared = False

    def full(self, name: str, size: int, fill_value: int, dtype) -> np.ndarray:
        """Allocate a 1-D array of ``size`` filled with ``fill_value``."""
        return np.full(size, fill_value, dtype=dtype)

    def zeros(self, name: str, size: int, dtype) -> np.ndarray:
        """Allocate a 1-D zero array of ``size``."""
        return np.zeros(size, dtype=dtype)

    def adopt(self, name: str, array: np.ndarray) -> np.ndarray:
        """Take ownership of an already-materialized array.

        The default allocator returns it unchanged; the pool copies it into
        a segment so callers that build content first (e.g. the position
        map's RNG draw) still end up shared.
        """
        return array

    def release(self, array: np.ndarray) -> None:
        """Drop an array this allocator handed out (growth/relayout)."""

    def registry(self) -> Registry:
        """Descriptors of the live shared arrays (empty when not shared)."""
        return {}

    def close(self, unlink: bool = True) -> None:
        """Release every live allocation (no-op for private arrays)."""


#: Module-default allocator used when none is passed to a constructor.
DEFAULT_ALLOCATOR = ArrayAllocator()


class SharedMemoryArrayPool(ArrayAllocator):
    """Allocator backing each named array with one ``SharedMemory`` segment.

    ``prefix`` namespaces the segment names (the executor uses one prefix
    per run and one suffix per shard, so a crashed run can be swept by
    prefix).  Re-allocating a logical name (stash growth, tree relayout)
    creates the new segment first, then unlinks the outgrown one — existing
    mappings stay readable until the process exits, but the name is gone,
    so nothing can leak past the worker's lifetime.
    """

    shared = True

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._seq = 0
        # logical name -> (SharedMemory, ndarray); insertion ordered.
        self._live: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        # Segments unlinked but not yet closeable because a numpy view still
        # exports their buffer; drained on close().
        self._zombies: list[shared_memory.SharedMemory] = []

    @property
    def prefix(self) -> str:
        """Segment-name prefix of every allocation from this pool."""
        return self._prefix

    # -- allocation ----------------------------------------------------
    def _allocate(self, name: str, size: int, dtype) -> np.ndarray:
        nbytes = max(1, int(size) * np.dtype(dtype).itemsize)
        self._seq += 1
        segment = shared_memory.SharedMemory(
            name=f"{self._prefix}.{self._seq}", create=True, size=nbytes
        )
        array = np.ndarray(int(size), dtype=dtype, buffer=segment.buf)
        previous = self._live.pop(name, None)
        self._live[name] = (segment, array)
        if previous is not None:
            self._discard(previous[0])
        return array

    def full(self, name: str, size: int, fill_value: int, dtype) -> np.ndarray:
        array = self._allocate(name, size, dtype)
        array[...] = fill_value
        return array

    def zeros(self, name: str, size: int, dtype) -> np.ndarray:
        return self.full(name, size, 0, dtype)

    def adopt(self, name: str, array: np.ndarray) -> np.ndarray:
        shared = self._allocate(name, array.size, array.dtype)
        shared[...] = array
        return shared

    def release(self, array: np.ndarray) -> None:
        for name, (segment, live_array) in list(self._live.items()):
            if live_array is array:
                del self._live[name]
                self._discard(segment)
                return

    def _discard(self, segment: shared_memory.SharedMemory) -> None:
        """Unlink a segment now; close it when its buffer is releasable."""
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        try:
            segment.close()
        except BufferError:
            # A numpy view still exports the buffer (the caller copies out
            # of the old array after allocating the new one); the mapping
            # dies with the process, the name is already gone.
            self._zombies.append(segment)

    # -- export / cleanup ----------------------------------------------
    def registry(self) -> Registry:
        return {
            name: (segment.name, array.shape, array.dtype.str)
            for name, (segment, array) in self._live.items()
        }

    def close(self, unlink: bool = True) -> None:
        for name, (segment, _array) in list(self._live.items()):
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            try:
                segment.close()
            except BufferError:
                self._zombies.append(segment)
        self._live.clear()
        for segment in list(self._zombies):
            try:
                segment.close()
                self._zombies.remove(segment)
            except BufferError:
                pass


# ----------------------------------------------------------------------
# Parent-side helpers
# ----------------------------------------------------------------------
def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop this process's resource_tracker registration for ``segment``.

    Attaching registers the name with the tracker (through Python 3.12),
    but ``close()`` never unregisters — so a parent that attaches to
    worker-owned segments accumulates stale entries and warns at shutdown
    about "leaked" segments the worker already unlinked.  Private API,
    hence the broad guard.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def detach_segments(segments: Iterable[shared_memory.SharedMemory]) -> None:
    """Close attached segments without unlinking (the worker owns them)."""
    for segment in segments:
        segment.close()
        _untrack(segment)


def attach_registry(
    registry: Registry,
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Attach to every segment of ``registry``; returns (views, segments).

    The views alias worker memory — zero copies.  The caller must drop all
    views, then release the segments with :func:`detach_segments` (a bare
    ``close()`` leaves a stale resource_tracker registration behind).
    """
    views: dict[str, np.ndarray] = {}
    segments: list[shared_memory.SharedMemory] = []
    for name, (segment_name, shape, dtype) in registry.items():
        segment = shared_memory.SharedMemory(name=segment_name)
        segments.append(segment)
        views[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    return views, segments


def read_registry(registry: Registry) -> dict[str, np.ndarray]:
    """Copy every array of ``registry`` out of shared memory.

    Used for snapshots that must outlive the worker; the transfer itself is
    a straight memcpy out of the segment (no pickling).
    """
    views, segments = attach_registry(registry)
    arrays = {name: np.array(view) for name, view in views.items()}
    del views
    detach_segments(segments)
    return arrays


def unlink_registry(registry: Registry) -> list[str]:
    """Force-unlink every segment of ``registry``; returns the names removed.

    Parent-side crash sweep: normally the worker unlinks its own segments
    (even on error, via the worker loop's ``finally``), so this finds
    nothing; after a hard kill it reclaims whatever the worker left.
    """
    removed: list[str] = []
    for _name, (segment_name, _shape, _dtype) in registry.items():
        try:
            segment = shared_memory.SharedMemory(name=segment_name)
        except FileNotFoundError:
            continue
        try:
            segment.unlink()
            removed.append(segment_name)
        except FileNotFoundError:
            # unlink() unregisters only on success; drop the registration
            # the attach above created so the tracker stays quiet.
            segment.close()
            _untrack(segment)
            continue
        segment.close()
    return removed


def leaked_segments(prefix: str, registries: Iterable[Registry] = ()) -> list[str]:
    """Names of segments under ``prefix`` that still exist (diagnostics).

    Checks every name recorded in ``registries`` plus, on platforms that
    expose POSIX shared memory as files (Linux ``/dev/shm``), any segment
    whose name starts with ``prefix``.
    """
    import os

    found: set[str] = set()
    for registry in registries:
        for _name, (segment_name, _shape, _dtype) in registry.items():
            try:
                segment = shared_memory.SharedMemory(name=segment_name)
            except FileNotFoundError:
                continue
            found.add(segment_name)
            segment.close()
            _untrack(segment)
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        for entry in os.listdir(shm_dir):
            if entry.startswith(prefix):
                found.add(entry)
    return sorted(found)
