"""ORAM substrates: PathORAM, PrORAM, RingORAM and the insecure baseline.

PathORAM ships in two decision-identical flavours: the per-object reference
:class:`PathORAM` (dict stash, Block objects) and the vectorized
:class:`ArrayPathORAM` (:class:`ArrayTreeStorage` slot arrays plus an
:class:`ArrayStash` of id/leaf rows), which produces bit-identical traffic
counters for a fixed seed.
"""

from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig, FatTreePolicy
from repro.oram.eviction import EvictionPolicy
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.position_map import PositionMap
from repro.oram.pr_oram import PrORAM, SuperblockMode
from repro.oram.ring_oram import RingORAM
from repro.oram.stash import ArrayStash, Stash
from repro.oram.tree import ArrayTreeStorage, TreeStorage

__all__ = [
    "AccessOp",
    "ObliviousMemory",
    "ORAMConfig",
    "FatTreePolicy",
    "EvictionPolicy",
    "InsecureMemory",
    "PathORAM",
    "ArrayPathORAM",
    "PositionMap",
    "PrORAM",
    "SuperblockMode",
    "RingORAM",
    "Stash",
    "ArrayStash",
    "TreeStorage",
    "ArrayTreeStorage",
]
