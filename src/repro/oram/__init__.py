"""ORAM substrates: PathORAM, PrORAM, RingORAM and the insecure baseline.

Every tree-based scheme ships in two decision-identical flavours built on
the shared :mod:`repro.oram.engine` core: a per-object reference (dict
stash, Block objects) and a vectorized array twin
(:class:`ArrayTreeStorage` slot arrays plus an :class:`ArrayStash` of
id/leaf rows) that produces bit-identical traffic counters for a fixed
seed — :class:`PathORAM`/:class:`ArrayPathORAM`,
:class:`RingORAM`/:class:`ArrayRingORAM`,
:class:`PrORAM`/:class:`ArrayPrORAM`.
"""

from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig, FatTreePolicy
from repro.oram.engine import ArrayStorageEngine, ObjectStorageEngine, TreeORAMEngine
from repro.oram.eviction import EvictionPolicy
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.position_map import PositionMap
from repro.oram.pr_oram import ArrayPrORAM, PrORAM, SuperblockMode
from repro.oram.recursive_posmap import RecursivePositionMap
from repro.oram.ring_oram import ArrayRingORAM, RingORAM
from repro.oram.stash import ArrayStash, Stash
from repro.oram.tree import ArrayTreeStorage, TreeStorage

__all__ = [
    "AccessOp",
    "ObliviousMemory",
    "ORAMConfig",
    "FatTreePolicy",
    "EvictionPolicy",
    "InsecureMemory",
    "TreeORAMEngine",
    "ObjectStorageEngine",
    "ArrayStorageEngine",
    "PathORAM",
    "ArrayPathORAM",
    "PositionMap",
    "RecursivePositionMap",
    "PrORAM",
    "ArrayPrORAM",
    "SuperblockMode",
    "RingORAM",
    "ArrayRingORAM",
    "Stash",
    "ArrayStash",
    "TreeStorage",
    "ArrayTreeStorage",
]
