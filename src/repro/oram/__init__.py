"""ORAM substrates: PathORAM, PrORAM, RingORAM and the insecure baseline."""

from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig, FatTreePolicy
from repro.oram.eviction import EvictionPolicy
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.position_map import PositionMap
from repro.oram.pr_oram import PrORAM, SuperblockMode
from repro.oram.ring_oram import RingORAM
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage

__all__ = [
    "AccessOp",
    "ObliviousMemory",
    "ORAMConfig",
    "FatTreePolicy",
    "EvictionPolicy",
    "InsecureMemory",
    "PathORAM",
    "PositionMap",
    "PrORAM",
    "SuperblockMode",
    "RingORAM",
    "Stash",
    "TreeStorage",
]
