"""Insecure (non-oblivious) memory baseline.

Serves accesses directly from a flat table.  Used for two purposes:

* Table I's "Insecure" memory-footprint column, and
* the attack demonstration: every access leaks its true address to any
  observer on the memory bus, which is exactly what ORAM prevents.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import BlockNotFoundError
from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig


class InsecureMemory(ObliviousMemory):
    """Flat, unprotected block store with the same interface as the ORAMs."""

    def __init__(
        self,
        config: ORAMConfig,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        observer=None,
    ):
        self.config = config
        self.timing = timing if timing is not None else TimingModel()
        self.counter = counter if counter is not None else TrafficCounter()
        self.observer = observer
        self._payloads: dict[int, object] = {}

    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def statistics(self) -> TrafficSnapshot:
        return self.counter.snapshot()

    @property
    def simulated_time_s(self) -> float:
        return self.timing.elapsed_s

    @property
    def server_memory_bytes(self) -> int:
        return self.config.insecure_memory_bytes

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install initial payloads (setup step, no traffic charged)."""
        for block_id, payload in payloads.items():
            self._check(block_id)
            self._payloads[block_id] = payload

    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Serve one access; the true address is visible to any observer."""
        self._check(block_id)
        self.counter.record_logical_access()
        num_bytes = self.config.block_size_bytes
        self.counter.record_path_read(1, num_bytes)
        self.timing.charge_path_transfer(1, num_bytes)
        if self.observer is not None:
            self.observer.observe_address(block_id)
        if op is AccessOp.WRITE:
            self._payloads[block_id] = new_payload
            self.counter.record_path_write(1, num_bytes)
            self.timing.charge_path_transfer(1, num_bytes)
        return self._payloads.get(block_id)

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < self.config.num_blocks:
            raise BlockNotFoundError(
                f"block {block_id} outside [0, {self.config.num_blocks})"
            )
