"""PrORAM — history-based superblock ORAM (Yu et al., ISCA'15).

PrORAM extends PathORAM with *superblocks*: groups of address-adjacent data
blocks that share a path, so one path fetch brings the whole group into the
stash and the following accesses to group members become stash hits.

Two variants from the paper are provided:

* **static** superblocks: every aligned group of ``superblock_size``
  consecutive addresses is always merged, and groups are co-located on a
  shared path at setup;
* **dynamic** superblocks: a per-group spatial-locality counter is increased
  when different members of a group are accessed close together and decreased
  otherwise; groups behave as superblocks only while their counter is above a
  threshold.

When a merged group is fetched, the partner blocks are *held* in the stash
across the write-back so that imminent accesses to them are stash hits; this
is the prefetch effect PrORAM's performance relies on.

On the near-random embedding-table traces of the LAORAM paper (Fig. 2),
dynamic PrORAM finds almost no mergeable locality and degrades to PathORAM,
which is why the paper uses plain PathORAM as its baseline.  This
implementation exists to reproduce that observation.

The superblock policy lives in :class:`SuperblockPolicyMixin`, written
against the storage hooks of :class:`~repro.oram.engine.TreeORAMEngine`, so
the same control flow runs on both backends: :class:`PrORAM` (per-object
reference) and :class:`ArrayPrORAM` (vectorized twin, bit-identical counters
for a fixed seed).
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from typing import Optional

import numpy as np

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.memory.accounting import TrafficCounter
from repro.memory.timing import TimingModel
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.engine import TreeORAMEngine
from repro.oram.eviction import EvictionPolicy
from repro.oram.path_oram import PathORAM
from repro.oram.position_map import PositionMap


class SuperblockMode(enum.Enum):
    """How PrORAM decides which adjacent blocks form a superblock."""

    STATIC = "static"
    DYNAMIC = "dynamic"


class SuperblockPolicyMixin:
    """PrORAM-style superblock policy over the shared engine's storage hooks.

    The mixin owns group bookkeeping (locality counters, merge set) and the
    merged-access control flow — fetch once, remap the whole group to one
    fresh path, hold the partners in the stash across the write-back.  All
    block movement goes through the backend-agnostic stash/tree hooks, so
    the per-object and array engines make identical decisions.
    """

    #: PrORAM's access carries the superblock merge/hold policy; the
    #: generic batched access protocol would bypass it.
    SUPPORTS_BATCHED_ACCESS = False

    def __init__(
        self,
        config: ORAMConfig,
        superblock_size: int = 2,
        mode: SuperblockMode = SuperblockMode.DYNAMIC,
        merge_threshold: int = 2,
        history_window: int = 64,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        eviction: Optional[EvictionPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
        allocator=None,
    ):
        if superblock_size < 1:
            raise ConfigurationError("superblock_size must be >= 1")
        if merge_threshold < 1:
            raise ConfigurationError("merge_threshold must be >= 1")
        if history_window < 1:
            raise ConfigurationError("history_window must be >= 1")
        super().__init__(
            config,
            timing=timing,
            counter=counter,
            eviction=eviction,
            rng=rng,
            observer=observer,
            allocator=allocator,
        )
        self.superblock_size = superblock_size
        self.mode = mode
        self.merge_threshold = merge_threshold
        self.history_window = history_window
        self._locality_counters: dict[int, int] = defaultdict(int)
        self._merged_groups: set[int] = set()
        self._recent_blocks: deque[int] = deque(maxlen=history_window)
        # Multiset views of the deque contents so the partners-recent test
        # is O(1) instead of an O(window) scan per access.
        self._recent_group_counts: dict[int, int] = {}
        self._recent_block_counts: dict[int, int] = {}
        if mode is SuperblockMode.STATIC and superblock_size > 1:
            self._merged_groups = set(range(self._num_groups()))
            self._colocate_groups()

    # ------------------------------------------------------------------
    # Superblock bookkeeping
    # ------------------------------------------------------------------
    def _num_groups(self) -> int:
        return -(-self.config.num_blocks // self.superblock_size)

    def group_of(self, block_id: int) -> int:
        """Aligned superblock group an address belongs to."""
        return block_id // self.superblock_size

    def group_members(self, group: int) -> list[int]:
        """Block ids belonging to ``group`` (the last group may be short)."""
        start = group * self.superblock_size
        end = min(start + self.superblock_size, self.config.num_blocks)
        return list(range(start, end))

    def is_merged(self, group: int) -> bool:
        """Whether ``group`` currently behaves as one superblock."""
        return group in self._merged_groups

    def _colocate_groups(self) -> None:
        """Trusted-setup relayout placing each group on one shared path."""
        for group in range(self._num_groups()):
            shared_leaf = int(self.rng.integers(0, self._num_leaves))
            for member in self.group_members(group):
                self.position_map.load(member, shared_leaf)
        self._relayout_tree()

    def _update_locality(self, block_id: int) -> None:
        """Dynamic-mode counter update based on recently accessed blocks.

        The window is tracked as two multisets (occurrences per group and
        per exact block), so "a *different* member of my group was accessed
        recently" is one subtraction — the same answer the original
        O(window) ``any`` scan gives, at O(1) per access.
        """
        if self.mode is not SuperblockMode.DYNAMIC or self.superblock_size == 1:
            return
        group = self.group_of(block_id)
        group_counts = self._recent_group_counts
        block_counts = self._recent_block_counts
        partners_recent = group_counts.get(group, 0) > block_counts.get(block_id, 0)
        if partners_recent:
            self._locality_counters[group] = min(
                self._locality_counters[group] + 1, 2 * self.merge_threshold
            )
        elif self._locality_counters[group] > 0:
            self._locality_counters[group] -= 1
        recent = self._recent_blocks
        if len(recent) == recent.maxlen:
            evicted = recent[0]
            evicted_group = evicted // self.superblock_size
            count = group_counts[evicted_group] - 1
            if count:
                group_counts[evicted_group] = count
            else:
                del group_counts[evicted_group]
            count = block_counts[evicted] - 1
            if count:
                block_counts[evicted] = count
            else:
                del block_counts[evicted]
        recent.append(block_id)
        group_counts[group] = group_counts.get(group, 0) + 1
        block_counts[block_id] = block_counts.get(block_id, 0) + 1
        if self._locality_counters[group] >= self.merge_threshold:
            self._merged_groups.add(group)
        else:
            self._merged_groups.discard(group)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Access ``block_id``, co-locating its superblock partners when merged."""
        self._check_block_id(block_id)
        self._update_locality(block_id)
        return self._policy_access(block_id, op, new_payload)

    def _policy_access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """The access body after locality tracking (fused drivers enter here).

        The fused trace driver replays :meth:`_update_locality` in its
        per-access hook and routes merged accesses to this method, so the
        update must not run twice — hence the split.
        """
        group = self.group_of(block_id)
        if not self.is_merged(group) or self.superblock_size == 1:
            return super().access(block_id, op, new_payload)

        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        handle = self._stash_lookup(block_id)
        read_leaf: Optional[int] = None
        if handle is None:
            read_leaf = self.position_map.get(block_id)
            self._read_path_into_stash(read_leaf, dummy=False)
            handle = self._stash_lookup(block_id)
            if handle is None:
                raise BlockNotFoundError(
                    f"block {block_id} missing from both stash and its path"
                )
        else:
            self._stash_hits += 1
        payload = self._serve(handle, op, new_payload)

        # All group members currently resident in the stash are remapped to a
        # single fresh path so they travel together from now on.
        shared_leaf = self._draw_leaf()
        members = self.group_members(group)
        for member in members:
            if member in self.stash:
                self._update_leaf(member, shared_leaf)

        if read_leaf is not None:
            # Hold the just-fetched partners in the stash across the
            # write-back: imminent accesses to them become stash hits, which
            # is where PrORAM's path-read savings come from.
            held = []
            for member in members:
                if member == block_id:
                    continue
                member_handle = self._stash_detach(member)
                if member_handle is not None:
                    held.append(member_handle)
            self._write_back(read_leaf)
            for member_handle in held:
                self._stash_reattach(member_handle)
        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payload

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def merged_group_count(self) -> int:
        """Number of groups currently treated as superblocks."""
        return len(self._merged_groups)


class PrORAM(SuperblockPolicyMixin, PathORAM):
    """PathORAM with history-based (PrORAM-style) superblocks (per-object)."""


class ArrayPrORAM(SuperblockPolicyMixin, ArrayPathORAM):
    """Vectorized PrORAM twin: superblock policy over the array backend.

    Path reads, write-back planning and the static-mode relayout all run on
    the array storage engine while the policy draws from the RNG in exactly
    the per-object order, so a fixed seed gives bit-identical traffic
    counters to :class:`PrORAM`.

    :meth:`run_trace` runs the shared fused driver with a per-access policy
    hook: unmerged accesses (the overwhelming majority on the near-random
    traces this comparison targets) stay on the fused PathORAM sequence,
    and merged superblock accesses drop back to the full policy method with
    engine state synced around the call.
    """

    def run_trace(
        self,
        block_ids,
        ops=None,
        payloads=None,
    ):
        """Fused PrORAM trace driver (sequential semantics)."""
        cls = type(self)
        if (
            cls.access is not SuperblockPolicyMixin.access
            or cls._choose_new_leaf is not TreeORAMEngine._choose_new_leaf
            or type(self.eviction) is not EvictionPolicy
            or type(self.position_map) is not PositionMap
        ):
            return TreeORAMEngine.run_trace(self, block_ids, ops, payloads)
        if self.superblock_size == 1:
            # Degenerate superblocks: pure PathORAM, no policy hook needed.
            return self._run_trace_fused(block_ids, ops, payloads)
        if self.mode is SuperblockMode.STATIC:
            # Every group is permanently merged, so every access takes the
            # policy path; there is no fused fast path to run.
            return TreeORAMEngine.run_trace(self, block_ids, ops, payloads)
        return self._run_trace_fused(
            block_ids,
            ops,
            payloads,
            before_access=self._make_trace_before_access(),
            fallback=self._policy_access,
        )

    def _make_trace_before_access(self):
        """Build the fused driver's per-access hook with bound locals.

        Decision-identical to ``_update_locality`` followed by a merged-set
        membership test, but with every piece of locality state (window
        multisets, counters, merged set) captured as a local once per trace
        instead of re-resolved through ``self`` on every access.  The hook's
        return value equals post-update merged membership of the accessed
        group: the counter-vs-threshold comparison that just decided the
        add/discard.
        """
        sb = self.superblock_size
        group_counts = self._recent_group_counts
        block_counts = self._recent_block_counts
        gc_get = group_counts.get
        bc_get = block_counts.get
        locality = self._locality_counters
        recent = self._recent_blocks
        window = recent.maxlen
        recent_append = recent.append
        threshold = self.merge_threshold
        ceiling = 2 * threshold
        merged_add = self._merged_groups.add
        merged_discard = self._merged_groups.discard

        def before_access(block_id: int) -> bool:
            group = block_id // sb
            if gc_get(group, 0) > bc_get(block_id, 0):
                bumped = locality[group] + 1
                locality[group] = ceiling if bumped > ceiling else bumped
            elif locality[group] > 0:
                locality[group] -= 1
            if len(recent) == window:
                evicted = recent[0]
                evicted_group = evicted // sb
                count = group_counts[evicted_group] - 1
                if count:
                    group_counts[evicted_group] = count
                else:
                    del group_counts[evicted_group]
                count = block_counts[evicted] - 1
                if count:
                    block_counts[evicted] = count
                else:
                    del block_counts[evicted]
            recent_append(block_id)
            group_counts[group] = gc_get(group, 0) + 1
            block_counts[block_id] = bc_get(block_id, 0) + 1
            if locality[group] >= threshold:
                merged_add(group)
                return True
            merged_discard(group)
            return False

        return before_access
