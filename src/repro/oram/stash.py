"""Client-side stash: trusted temporary storage for blocks awaiting eviction.

Two implementations share the same semantics: :class:`Stash` holds
:class:`~repro.memory.block.Block` objects in a dict (the reference
per-object engine) and :class:`ArrayStash` keeps parallel ``int64`` row
arrays of block ids and leaves plus a dense id->row index (the vectorized
engine, which keeps payloads in an engine-level store).  Both preserve
dict-like ordering: removal plus re-insertion moves an id to the end, and
iteration follows insertion order — the ordering the greedy write-back
planner uses for tie-breaking, so the two engines pick identical eviction
victims.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.exceptions import StashOverflowError
from repro.memory.block import Block
from repro.oram.shm import DEFAULT_ALLOCATOR, ArrayAllocator


class Stash:
    """Trusted client buffer holding blocks that could not be written back.

    The stash lives in the trainer GPU's HBM in the paper's setting, so its
    accesses are invisible to the adversary.  An optional hard capacity lets
    experiments detect configurations whose stash would overflow a realistic
    client memory budget.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("stash capacity must be >= 1 when set")
        self._capacity = capacity
        self._entries: dict[int, Block] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    def __iter__(self) -> Iterator[Block]:
        return iter(self._entries.values())

    @property
    def capacity(self) -> Optional[int]:
        """Hard limit on stash occupancy, or ``None`` for unbounded."""
        return self._capacity

    @property
    def block_ids(self) -> list[int]:
        """Identifiers of every stashed block."""
        return list(self._entries.keys())

    def add(self, block: Block) -> None:
        """Insert a block; replaces any existing entry with the same id."""
        if (
            self._capacity is not None
            and block.block_id not in self._entries
            and len(self._entries) >= self._capacity
        ):
            raise StashOverflowError(
                f"stash exceeded its capacity of {self._capacity} blocks"
            )
        self._entries[block.block_id] = block

    def get(self, block_id: int) -> Optional[Block]:
        """Return the stashed block with ``block_id`` without removing it."""
        return self._entries.get(block_id)

    def pop(self, block_id: int) -> Optional[Block]:
        """Remove and return the stashed block with ``block_id``."""
        return self._entries.pop(block_id, None)

    def clear(self) -> None:
        """Remove every entry (used only by tests)."""
        self._entries.clear()


class ArrayStash:
    """Row-array stash: ids and leaves in contiguous arrays, id->row index.

    The vectorized engine stores payloads in a client-side store, so the
    stash holds exactly what the write-back planner needs: per-resident-block
    the id and the assigned leaf, laid out as two parallel ``int64`` arrays
    in insertion order, plus a dense ``row_of`` index (one slot per block id,
    ``-1`` when absent) for O(1) membership and row lookup without any
    Python-dict churn.

    Removal marks a row as a hole (id ``-1``, leaf = the hole sentinel)
    instead of shifting rows; appends go at the tail, and the arrays are
    compacted — live rows shifted down, preserving order — only when the
    tail reaches the end, so per-operation cost stays a handful of
    vectorized assignments.  The hole sentinel is ``2 * num_leaves``: its
    xor with any real leaf has bit length ``depth + 2``, so holes sort
    *after* every real block in the write-back planner's common-level
    ordering and are never selected.

    Ordering matches the dict-backed :class:`Stash`: rows keep insertion
    order, and remove + re-add appends at the end (re-adding a resident id
    never happens — a block lives in exactly one of tree or stash).
    """

    #: Compact once this many hole rows accumulate: large enough that the
    #: per-append amortised compaction cost stays a fraction of a numpy op,
    #: small enough that the write-back scan stays close to the live count.
    COMPACT_SLACK = 128

    def __init__(
        self,
        num_blocks: int,
        num_leaves: int,
        capacity: Optional[int] = None,
        initial_rows: int = 256,
        allocator: Optional[ArrayAllocator] = None,
    ):
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        if capacity is not None and capacity < 1:
            raise ValueError("stash capacity must be >= 1 when set")
        self._capacity = capacity
        self._hole_leaf = 2 * num_leaves
        self._allocator = allocator if allocator is not None else DEFAULT_ALLOCATOR
        self._ids = self._allocator.full("stash.ids", initial_rows, -1, np.int64)
        self._leaves = self._allocator.full(
            "stash.leaves", initial_rows, self._hole_leaf, np.int64
        )
        self._row_of = np.full(num_blocks, -1, dtype=np.int64)
        # Row numbers 0..size-1, sliced on every append instead of allocating
        # a fresh arange; regenerated only when the row arrays grow.
        self._rows = np.arange(initial_rows, dtype=np.int64)
        self._tail = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __contains__(self, block_id: int) -> bool:
        return bool(self._row_of[block_id] >= 0)

    def __iter__(self) -> Iterator[int]:
        return iter(self.block_ids)

    @property
    def capacity(self) -> Optional[int]:
        """Hard limit on stash occupancy, or ``None`` for unbounded."""
        return self._capacity

    @property
    def block_ids(self) -> list[int]:
        """Identifiers of every stashed block, in insertion order."""
        ids = self._ids[: self._tail]
        return ids[ids >= 0].tolist()

    # -- hot-path array views ------------------------------------------
    # The engine reads these directly; every mutation must go through the
    # methods below (or the engine's remap, which updates ``leaf_rows`` and
    # the position map together) so the id->row index stays consistent.
    @property
    def tail(self) -> int:
        """Number of rows in use (live blocks plus not-yet-compacted holes)."""
        return self._tail

    @property
    def id_rows(self) -> np.ndarray:
        """Row array of block ids (``-1`` marks a hole)."""
        return self._ids

    @property
    def leaf_rows(self) -> np.ndarray:
        """Row array of assigned leaves (the hole sentinel marks a hole)."""
        return self._leaves

    @property
    def row_of(self) -> np.ndarray:
        """Dense id -> row index; ``-1`` for ids not in the stash."""
        return self._row_of

    @property
    def hole_leaf(self) -> int:
        """Leaf sentinel stored in hole rows (``2 * num_leaves``)."""
        return self._hole_leaf

    def live_ids(self) -> np.ndarray:
        """Stashed block ids as an ``int64`` array, in insertion order."""
        ids = self._ids[: self._tail]
        return ids[ids >= 0]

    def leaf_of(self, block_id: int) -> int:
        """Assigned leaf of a stashed block (diagnostics/tests)."""
        row = int(self._row_of[block_id])
        if row < 0:
            raise KeyError(f"block {block_id} not in stash")
        return int(self._leaves[row])

    # -- mutation ------------------------------------------------------
    def _ensure_room(self, count: int) -> None:
        """Make space for ``count`` appended rows, compacting/growing as needed.

        Compaction also triggers once :data:`COMPACT_SLACK` holes pile up,
        keeping the write-back scan (which walks ``[:tail]``) close to the
        live row count.
        """
        if (
            self._tail + count <= self._ids.size
            and self._tail - self._live <= self.COMPACT_SLACK
        ):
            return
        used_ids = self._ids[: self._tail]
        live_mask = used_ids >= 0
        live_ids = used_ids[live_mask]
        live_leaves = self._leaves[: self._tail][live_mask]
        n = int(live_ids.size)
        size = self._ids.size
        # Keep at least half the array as slack so compactions stay rare.
        while size < 2 * (n + count):
            size *= 2
        if size != self._ids.size:
            self._ids = self._allocator.full("stash.ids", size, -1, np.int64)
            self._leaves = self._allocator.full(
                "stash.leaves", size, self._hole_leaf, np.int64
            )
            self._rows = np.arange(size, dtype=np.int64)
        else:
            # Rows behind the new tail keep stale ids/leaves; mark them as
            # holes so the write-back scan cannot resurrect them.
            self._ids[n : self._tail] = -1
            self._leaves[n : self._tail] = self._hole_leaf
        self._ids[:n] = live_ids
        self._leaves[:n] = live_leaves
        self._row_of[live_ids] = self._rows[:n]
        self._tail = n

    def add(self, block_id: int, leaf: int) -> None:
        """Insert one id/leaf pair (must not already be present)."""
        if self._capacity is not None and self._live >= self._capacity:
            raise StashOverflowError(
                f"stash exceeded its capacity of {self._capacity} blocks"
            )
        self._ensure_room(1)
        row = self._tail
        self._ids[row] = block_id
        self._leaves[row] = leaf
        self._row_of[block_id] = row
        self._tail = row + 1
        self._live += 1

    def append_rows(self, block_ids: np.ndarray, leaves: np.ndarray) -> None:
        """Append several id/leaf pairs (callers guarantee they are absent)."""
        count = int(block_ids.size)
        if count == 0:
            return
        if self._capacity is not None and self._live + count > self._capacity:
            raise StashOverflowError(
                f"stash exceeded its capacity of {self._capacity} blocks"
            )
        self._ensure_room(count)
        tail = self._tail
        end = tail + count
        self._ids[tail:end] = block_ids
        self._leaves[tail:end] = leaves
        self._row_of[block_ids] = self._rows[tail:end]
        self._tail = end
        self._live += count

    def set_leaf(self, block_id: int, leaf: int) -> None:
        """Update the assigned leaf of a stashed block (remap)."""
        row = self._row_of[block_id]
        if row < 0:
            raise KeyError(f"block {block_id} not in stash")
        self._leaves[row] = leaf

    def pop(self, block_id: int) -> bool:
        """Remove ``block_id``; returns whether it was present."""
        row = int(self._row_of[block_id])
        if row < 0:
            return False
        self._ids[row] = -1
        self._leaves[row] = self._hole_leaf
        self._row_of[block_id] = -1
        self._live -= 1
        return True

    def remove_rows(self, rows, block_ids: np.ndarray) -> None:
        """Remove the blocks at ``rows`` (write-back victims), vectorized.

        ``rows`` may be an ``int64`` array or a plain list of row numbers;
        ``block_ids`` must be ``id_rows[rows]`` — the caller already gathered
        them for the tree commit, so they are passed in rather than re-read.
        """
        self._ids[rows] = -1
        self._leaves[rows] = self._hole_leaf
        self._row_of[block_ids] = -1
        self._live -= len(rows)

    def clear(self) -> None:
        """Remove every entry."""
        ids = self._ids[: self._tail]
        self._row_of[ids[ids >= 0]] = -1
        self._ids[: self._tail] = -1
        self._leaves[: self._tail] = self._hole_leaf
        self._tail = 0
        self._live = 0
