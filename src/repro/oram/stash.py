"""Client-side stash: trusted temporary storage for blocks awaiting eviction."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import StashOverflowError
from repro.memory.block import Block


class Stash:
    """Trusted client buffer holding blocks that could not be written back.

    The stash lives in the trainer GPU's HBM in the paper's setting, so its
    accesses are invisible to the adversary.  An optional hard capacity lets
    experiments detect configurations whose stash would overflow a realistic
    client memory budget.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("stash capacity must be >= 1 when set")
        self._capacity = capacity
        self._entries: dict[int, Block] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    def __iter__(self) -> Iterator[Block]:
        return iter(self._entries.values())

    @property
    def capacity(self) -> Optional[int]:
        """Hard limit on stash occupancy, or ``None`` for unbounded."""
        return self._capacity

    @property
    def block_ids(self) -> list[int]:
        """Identifiers of every stashed block."""
        return list(self._entries.keys())

    def add(self, block: Block) -> None:
        """Insert a block; replaces any existing entry with the same id."""
        if (
            self._capacity is not None
            and block.block_id not in self._entries
            and len(self._entries) >= self._capacity
        ):
            raise StashOverflowError(
                f"stash exceeded its capacity of {self._capacity} blocks"
            )
        self._entries[block.block_id] = block

    def get(self, block_id: int) -> Optional[Block]:
        """Return the stashed block with ``block_id`` without removing it."""
        return self._entries.get(block_id)

    def pop(self, block_id: int) -> Optional[Block]:
        """Remove and return the stashed block with ``block_id``."""
        return self._entries.pop(block_id, None)

    def clear(self) -> None:
        """Remove every entry (used only by tests)."""
        self._entries.clear()
