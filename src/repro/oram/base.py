"""Abstract interface implemented by every (oblivious or not) memory engine."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence

from repro.memory.accounting import TrafficSnapshot


class AccessOp(enum.Enum):
    """Kind of logical access issued by the application."""

    READ = "read"
    WRITE = "write"


class ObliviousMemory(ABC):
    """Common interface of the memory engines in this package.

    Implementations include the insecure baseline, PathORAM, PrORAM,
    RingORAM and the LAORAM client.  The interface is block oriented: the
    application addresses logical blocks (embedding rows) and receives the
    stored payload back.
    """

    @abstractmethod
    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one logical access and return the block's payload."""

    def read(self, block_id: int) -> Optional[object]:
        """Convenience wrapper for a read access."""
        return self.access(block_id, AccessOp.READ)

    def write(self, block_id: int, payload: object) -> None:
        """Convenience wrapper for a write access."""
        self.access(block_id, AccessOp.WRITE, new_payload=payload)

    def access_many(self, block_ids: Sequence[int] | Iterable[int]) -> list[Optional[object]]:
        """Access a sequence of blocks; subclasses may batch these."""
        return [self.access(int(block_id)) for block_id in block_ids]

    @property
    @abstractmethod
    def statistics(self) -> TrafficSnapshot:
        """Traffic counters accumulated so far."""

    @property
    @abstractmethod
    def simulated_time_s(self) -> float:
        """Simulated elapsed time according to the timing model."""

    @property
    @abstractmethod
    def num_blocks(self) -> int:
        """Number of logical blocks managed by this memory."""

    @property
    @abstractmethod
    def server_memory_bytes(self) -> int:
        """Server-side storage footprint."""
