"""Array-backed PathORAM engine: the vectorized twin of :class:`PathORAM`.

This engine executes the exact same protocol as the per-object
:class:`~repro.oram.path_oram.PathORAM` — the control flow is literally the
same code, :class:`~repro.oram.engine.TreeORAMEngine` — but binds it to the
:class:`~repro.oram.engine.ArrayStorageEngine` backend, which stores server
and client state as numpy arrays:

* the tree is an :class:`~repro.oram.tree.ArrayTreeStorage` (one ``int64``
  slot matrix + occupancy vector per level);
* the stash is an :class:`~repro.oram.stash.ArrayStash` (parallel id/leaf
  row arrays in insertion order with a dense id->row index, so the greedy
  write-back planner scans contiguous memory instead of rebuilding arrays
  from a dict on every path);
* the position map is the dense :class:`~repro.oram.position_map.PositionMap`
  array, the source of truth for every block's leaf; the stash mirrors the
  leaves of resident blocks so write-back planning needs no gather;
* payloads live in a client-side id->payload store (payload location never
  affects traffic, so keeping it out of the simulated server removes all
  per-block object churn from the hot path).

Because both engines follow the same decision procedure, a fixed seed
produces bit-identical :class:`~repro.memory.accounting.TrafficSnapshot`
counters on either backend — the equivalence the throughput benchmark and
``tests/test_engine_equivalence.py`` assert.
"""

from __future__ import annotations

from repro.oram.engine import ArrayStorageEngine


class ArrayPathORAM(ArrayStorageEngine):
    """Vectorized PathORAM client + simulated server storage.

    Control flow from :class:`~repro.oram.engine.TreeORAMEngine`, storage
    from :class:`~repro.oram.engine.ArrayStorageEngine`; like its per-object
    twin, PathORAM itself adds nothing on top of the shared engine.
    """
