"""Array-backed PathORAM engine: the vectorized twin of :class:`PathORAM`.

This engine executes the exact same protocol as the per-object
:class:`~repro.oram.path_oram.PathORAM` — same RNG draw sequence, same
greedy write-back selection, same counter and timing charges — but stores
server and client state as numpy arrays:

* the tree is an :class:`~repro.oram.tree.ArrayTreeStorage` (one ``int64``
  slot matrix + occupancy vector per level);
* the stash is an :class:`~repro.oram.stash.ArrayStash` (parallel id/leaf
  row arrays in insertion order with a dense id->row index, so the greedy
  write-back planner scans contiguous memory instead of rebuilding arrays
  from a dict on every path);
* the position map is the dense :class:`~repro.oram.position_map.PositionMap`
  array, the source of truth for every block's leaf; the stash mirrors the
  leaves of resident blocks so write-back planning needs no gather;
* payloads live in a client-side id->payload store (payload location never
  affects traffic, so keeping it out of the simulated server removes all
  per-block object churn from the hot path).

Because both engines follow the same decision procedure, a fixed seed
produces bit-identical :class:`~repro.memory.accounting.TrafficSnapshot`
counters on either backend — the equivalence the throughput benchmark and
the randomized invariant tests assert.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import BlockNotFoundError
from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.position_map import PositionMap
from repro.oram.stash import ArrayStash
from repro.oram.tree import ArrayTreeStorage
from repro.utils.rng import make_rng


class ArrayPathORAM(ObliviousMemory):
    """Vectorized PathORAM client + simulated server storage."""

    def __init__(
        self,
        config: ORAMConfig,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        eviction: Optional[EvictionPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
    ):
        self.config = config
        self.timing = timing if timing is not None else TimingModel()
        self.counter = counter if counter is not None else TrafficCounter()
        self.rng = rng if rng is not None else make_rng(config.seed)
        self.eviction = eviction if eviction is not None else EvictionPolicy(
            enabled=config.background_eviction,
            trigger_threshold=config.eviction_threshold,
            drain_target=config.eviction_target,
        )
        self.observer = observer
        self.tree = ArrayTreeStorage(
            depth=config.depth,
            bucket_capacities=config.bucket_capacities(),
            block_size_bytes=config.block_size_bytes,
            metadata_bytes_per_block=config.metadata_bytes_per_block,
        )
        self.stash = ArrayStash(
            num_blocks=config.num_blocks,
            num_leaves=config.num_leaves,
            capacity=config.stash_capacity,
        )
        self.position_map = PositionMap(
            num_blocks=config.num_blocks,
            num_leaves=config.num_leaves,
            rng=self.rng,
        )
        self._payloads: dict[int, object] = {}
        self._stash_hits = 0
        # Scratch buffers for the write-back planner (sized to the stash's
        # row count on demand) so the per-path xor/frexp pass allocates
        # nothing.
        self._wb_xor = np.empty(256, dtype=np.int64)
        self._wb_mant = np.empty(256, dtype=np.float64)
        self._wb_bitlen = np.empty(256, dtype=np.intc)
        self._bulk_load()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _bulk_load(self) -> None:
        """Place every block into the tree according to its initial path.

        One vectorized pass per level; overflow goes to the stash in
        ascending id order, exactly as the per-object bulk load does.
        """
        overflow = self.tree.bulk_place(self.position_map.leaves)
        self.stash.append_rows(overflow, self.position_map.leaves[overflow])

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads for blocks during trusted setup (no traffic charged)."""
        for block_id in payloads:
            if not 0 <= block_id < self.config.num_blocks:
                raise BlockNotFoundError(
                    f"payload block id {block_id} not present in the ORAM"
                )
        self._payloads.update(payloads)

    # ------------------------------------------------------------------
    # ObliviousMemory interface
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def statistics(self) -> TrafficSnapshot:
        return self.counter.snapshot()

    @property
    def simulated_time_s(self) -> float:
        return self.timing.elapsed_s

    @property
    def server_memory_bytes(self) -> int:
        return self.tree.server_memory_bytes

    @property
    def stash_occupancy(self) -> int:
        """Current number of blocks held in the client stash."""
        return len(self.stash)

    @property
    def stash_hits(self) -> int:
        """Accesses served directly from the stash without a path read."""
        return self._stash_hits

    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one oblivious access to ``block_id``."""
        self._check_block_id(block_id)
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        if block_id not in self.stash:
            leaf = self.position_map.get(block_id)
            self._read_path_into_stash(leaf, dummy=False)
            if block_id not in self.stash:
                raise BlockNotFoundError(
                    f"block {block_id} missing from both stash and its path"
                )
            payload = self._serve(block_id, op, new_payload)
            self._remap(block_id)
            self._write_back(leaf)
        else:
            self._stash_hits += 1
            payload = self._serve(block_id, op, new_payload)
            self._remap(block_id)

        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payload

    def access_many(self, block_ids: Sequence[int]) -> list[Optional[object]]:
        """Access blocks one at a time (PathORAM has no batching)."""
        return [self.access(int(block_id)) for block_id in block_ids]

    # ------------------------------------------------------------------
    # Internals shared with subclasses
    # ------------------------------------------------------------------
    def _serve(
        self, block_id: int, op: AccessOp, new_payload: Optional[object]
    ) -> Optional[object]:
        if op is AccessOp.WRITE:
            self._payloads[block_id] = new_payload
        return self._payloads.get(block_id)

    def _remap(self, block_id: int) -> None:
        """Assign the block a fresh path (position map + stash leaf mirror).

        Remap always happens while the block sits in the stash, so both the
        authoritative position-map entry and the stash's leaf row are
        updated together.
        """
        leaf = self._choose_new_leaf(block_id)
        self.position_map.set(block_id, leaf)
        self.stash.set_leaf(block_id, leaf)

    def _choose_new_leaf(self, block_id: int) -> int:
        """Uniformly random new path; LAORAM overrides this with its plan."""
        return int(self.rng.integers(0, self.config.num_leaves))

    def _read_path_into_stash(self, leaf: int, dummy: bool) -> None:
        """Fetch a full path from the server into the stash."""
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        ids = self.tree.read_path_ids(leaf)
        if ids.size:
            self.stash.append_rows(ids, self.position_map.leaves[ids])
        self.counter.record_path_read(num_buckets, num_bytes, dummy=dummy)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=dummy)

    def _write_back(self, leaf: int) -> None:
        """Greedily write stash blocks back onto the path to ``leaf``.

        The selection replicates ``plan_greedy_write_back`` exactly — same
        eligibility (path-prefix rule), same occupancy awareness and same
        tie-breaking order — but the per-block common-level computation is a
        single vectorized xor/frexp over the stash's contiguous leaf rows,
        with the LIFO candidate pool operating on positions of that sorted
        ordering.
        """
        tree = self.tree
        stash = self.stash
        live = len(stash)
        if live:
            depth = tree.depth
            tail = stash.tail
            n = self._wb_xor.size
            if n < tail:
                while n < tail:
                    n *= 2
                self._wb_xor = np.empty(n, dtype=np.int64)
                self._wb_mant = np.empty(n, dtype=np.float64)
                self._wb_bitlen = np.empty(n, dtype=np.intc)
            xor = self._wb_xor[:tail]
            bitlen = self._wb_bitlen[:tail]
            np.bitwise_xor(stash.leaf_rows[:tail], leaf, out=xor)
            # bit_length(leaf xor path) sorts deepest common level first
            # (xor == 0 -> bit length 0 -> common level == depth); frexp's
            # exponent IS the bit length for non-negative ints (and 0 for
            # 0), exact far below 2^53.  A stable sort keeps ascending
            # insertion (row) order within a level.  Holes (bit length
            # depth + 2) sort after every real row, so slicing the ordering
            # at the live count drops exactly the holes.
            np.frexp(xor, self._wb_mant[:tail], bitlen)
            grouped = np.argsort(bitlen, kind="stable")[:live].tolist()
            counts = np.bincount(bitlen, minlength=depth + 1).tolist()
            buckets, occupancies = tree.path_state(leaf)
            caps = tree.bucket_capacities
            level_base = tree.level_base
            pool: list[int] = []
            cursor = 0
            chosen_rows: list[int] = []
            chosen_slots: list[int] = []
            for level in range(depth, -1, -1):
                count = counts[depth - level]
                if count:
                    pool.extend(grouped[cursor : cursor + count])
                    cursor += count
                if not pool:
                    continue
                occupancy = occupancies[level]
                free = caps[level] - occupancy
                if free <= 0:
                    continue
                take = free if free < len(pool) else len(pool)
                # Popping one by one from the pool's tail == reversed slice.
                chosen_rows.extend(pool[: -take - 1 : -1])
                del pool[-take:]
                slot = (
                    level_base[level]
                    + (leaf >> (depth - level)) * caps[level]
                    + occupancy
                )
                chosen_slots.extend(range(slot, slot + take))
                occupancies[level] = occupancy + take
            if chosen_rows:
                # Capacity is respected by construction (take <= free), so
                # the whole path commits in two scatters.
                rows = np.asarray(chosen_rows, dtype=np.int64)
                chosen_ids = stash.id_rows[rows]
                tree.commit_path_write(
                    buckets, occupancies, chosen_slots, chosen_ids
                )
                stash.remove_rows(rows, chosen_ids)
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

    def _maybe_background_evict(self) -> None:
        """Run the dummy-read eviction loop when the stash is too full."""
        if not self.eviction.should_trigger(len(self.stash)):
            return
        self.counter.record_background_eviction()
        dummy_reads = 0
        while self.eviction.should_continue(len(self.stash), dummy_reads):
            self.dummy_access()
            dummy_reads += 1

    def dummy_access(self) -> None:
        """Read and write back one random path without touching any block."""
        leaf = int(self.rng.integers(0, self.config.num_leaves))
        self._read_path_into_stash(leaf, dummy=True)
        self._write_back(leaf)

    def _check_block_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.config.num_blocks:
            raise BlockNotFoundError(
                f"block {block_id} outside [0, {self.config.num_blocks})"
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def total_real_blocks(self) -> int:
        """Blocks present across tree and stash (must equal ``num_blocks``)."""
        return self.tree.real_block_count() + len(self.stash)

    def client_memory_bytes(self) -> int:
        """Approximate client memory: position map plus stash payload slots."""
        stash_bytes = len(self.stash) * self.config.stored_block_bytes
        return self.position_map.client_memory_bytes() + stash_bytes
