"""Shared tree-ORAM engine core: one control flow, two storage backends.

Every tree-based scheme in this package (PathORAM, PrORAM, RingORAM, LAORAM)
runs the same skeleton — position-map lookup, path read into the stash,
greedy occupancy-aware write-back, threshold-triggered background eviction —
over one of two storage representations:

* :class:`ObjectStorageEngine` keeps :class:`~repro.memory.block.Block`
  objects in per-bucket lists and a dict stash (the reference engines);
* :class:`ArrayStorageEngine` keeps block ids in
  :class:`~repro.oram.tree.ArrayTreeStorage` slot arrays and an
  :class:`~repro.oram.stash.ArrayStash` of id/leaf rows, with payloads in a
  client-side store (the vectorized engines).

:class:`TreeORAMEngine` owns the control flow and all counter/timing
charges; backends implement a small set of storage hooks (``_fetch_path``,
``_commit_write_back``, stash attach/detach/lookup).  Because the hooks are
decision-free — every choice (which leaf, which eviction victim) is made in
shared code or replicated exactly by the vectorized planner — a reference
engine and its array twin draw from the RNG in the same order and produce
bit-identical :class:`~repro.memory.accounting.TrafficSnapshot` counters for
a fixed seed.  That equivalence is enforced per family by
``tests/test_engine_equivalence.py`` and the CI throughput gate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import (
    BlockNotFoundError,
    ConfigurationError,
    StashOverflowError,
)
from repro.memory.accounting import TrafficCounter, TrafficSnapshot
from repro.memory.block import Block
from repro.memory.timing import TimingModel
from repro.oram.base import AccessOp, ObliviousMemory
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.position_map import PositionMap
from repro.oram.recursive_posmap import RecursivePositionMap
from repro.oram.shm import ArrayAllocator
from repro.oram.stash import ArrayStash, Stash
from repro.oram.tree import ArrayTreeStorage, TreeStorage
from repro.oram.write_back import (
    fused_greedy_write_back,
    plan_batched_write_back,
    plan_greedy_write_back,
)
from repro.utils.rng import make_rng


class TreeORAMEngine(ObliviousMemory):
    """Tree-ORAM access/eviction control flow over abstract storage hooks.

    Subclasses provide the storage representation (tree, stash, payloads)
    through the hooks in the "storage hooks" section; protocol variants
    (PrORAM superblocks, RingORAM online reads) override :meth:`access`
    while reusing the shared internals (`_read_path_into_stash`,
    `_write_back`, background eviction, counters).

    Batching: ``batch_size`` opts a PathORAM-protocol engine into the
    batched access protocol — :meth:`access_many` chunks requests into
    batches served by :meth:`_access_batch` (one stash sweep, one grouped
    multi-path read, one grouped write-back per batch).  Protocol variants
    whose ``access`` does more than the PathORAM sequence set
    ``SUPPORTS_BATCHED_ACCESS = False`` and always take the per-access
    loop, whatever ``batch_size`` says.
    """

    #: Whether the generic batched access protocol (:meth:`_access_batch`)
    #: is valid for this engine.  Protocol mixins that override ``access``
    #: (RingORAM online reads, PrORAM superblocks, LAORAM bins) disable it.
    SUPPORTS_BATCHED_ACCESS = True

    #: Leaf draws per vectorized RNG refill in :meth:`_draw_leaf`.  0 keeps
    #: scalar draws; the array backend prefetches in blocks.  A sized
    #: ``integers(0, n, size=k)`` call consumes the generator stream exactly
    #: like ``k`` scalar calls, so both settings yield the same leaf
    #: sequence for a seed — but engines whose protocol interleaves its own
    #: direct generator use after setup (LAORAM's lookahead planner) must
    #: pin this to 0 so those draws stay in stream order.
    LEAF_DRAW_BLOCK = 0

    def __init__(
        self,
        config: ORAMConfig,
        timing: Optional[TimingModel] = None,
        counter: Optional[TrafficCounter] = None,
        eviction: Optional[EvictionPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        observer=None,
        batch_size: Optional[int] = None,
        allocator: Optional[ArrayAllocator] = None,
    ):
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1 when set")
        self.config = config
        self.timing = timing if timing is not None else TimingModel()
        self.counter = counter if counter is not None else TrafficCounter()
        self.rng = rng if rng is not None else make_rng(config.seed)
        self.eviction = eviction if eviction is not None else EvictionPolicy(
            enabled=config.background_eviction,
            trigger_threshold=config.eviction_threshold,
            drain_target=config.eviction_target,
        )
        self.observer = observer
        self.batch_size = batch_size
        # Array allocation hook: a shared-memory pool here puts the tree
        # slots, stash rows and position map into attachable segments so a
        # parent process can snapshot shard state without serialization.
        self.allocator = allocator
        self.tree = self._make_tree()
        self.stash = self._make_stash()
        if config.recursive_posmap:
            # Both constructors make the identical initial-label draw from
            # the engine RNG, so dense and recursive engines consume the
            # stream identically and stay decision-identical.
            self.position_map = RecursivePositionMap(
                num_blocks=config.num_blocks,
                num_leaves=config.num_leaves,
                rng=self.rng,
                allocator=allocator,
                positions_per_block=config.posmap_positions_per_block,
                cutoff_bytes=config.posmap_cutoff_bytes,
                metadata_bytes_per_block=config.metadata_bytes_per_block,
                counter=self.counter,
                timing=self.timing,
                seed=config.seed,
            )
        else:
            self.position_map = PositionMap(
                num_blocks=config.num_blocks,
                num_leaves=config.num_leaves,
                rng=self.rng,
                allocator=allocator,
            )
        self._stash_hits = 0
        # Buffered leaf draws (see _draw_leaf); an exhausted position on an
        # empty buffer forces the first refill.
        self._leaf_buf: list[int] = []
        self._leaf_buf_pos = 0
        # Hot-path caches: ``ORAMConfig.depth``/``num_leaves`` are derived
        # properties recomputed on every read, which adds up at millions of
        # accesses (geometry is immutable, so caching is safe).
        self._depth = config.depth
        self._num_leaves = config.num_leaves

    # ------------------------------------------------------------------
    # ObliviousMemory interface
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def statistics(self) -> TrafficSnapshot:
        return self.counter.snapshot()

    @property
    def simulated_time_s(self) -> float:
        return self.timing.elapsed_s

    @property
    def server_memory_bytes(self) -> int:
        return self.tree.server_memory_bytes

    @property
    def stash_occupancy(self) -> int:
        """Current number of blocks held in the client stash."""
        return len(self.stash)

    @property
    def stash_hits(self) -> int:
        """Accesses served directly from the stash without a path read."""
        return self._stash_hits

    def access(
        self,
        block_id: int,
        op: AccessOp = AccessOp.READ,
        new_payload: Optional[object] = None,
    ) -> Optional[object]:
        """Perform one oblivious access to ``block_id`` (PathORAM sequence)."""
        self._check_block_id(block_id)
        self.counter.record_logical_access()
        self.timing.charge_client_overhead()

        handle = self._stash_lookup(block_id)
        # oblivious: allow[OBL001] stash-hit fast path is the engine's modeled
        # behaviour: hits are counted and charged, and callers needing uniform
        # traffic issue dummy_access explicitly (see docs/static_analysis.md)
        if handle is None:
            leaf = self.position_map.get(block_id)
            self._read_path_into_stash(leaf, dummy=False)
            handle = self._stash_lookup(block_id)
            # oblivious: allow[OBL001] integrity check; a missing block aborts
            # the whole simulation loudly rather than leaking via traffic
            if handle is None:
                raise BlockNotFoundError(
                    f"block {block_id} missing from both stash and its path"
                )
            payload = self._serve(handle, op, new_payload)
            self._remap(handle)
            self._write_back(leaf)
        else:
            self._stash_hits += 1
            payload = self._serve(handle, op, new_payload)
            self._remap(handle)

        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payload

    def run_trace(
        self,
        block_ids: Sequence[int],
        ops=None,
        payloads: Optional[Sequence[object]] = None,
    ) -> list[Optional[object]]:
        """Execute a whole access sequence in one call.

        Sequential semantics: identical results, counters, timing, RNG
        stream and stash state to calling :meth:`access` once per element.
        ``ops`` may be omitted (all reads), one :class:`AccessOp` applied to
        every access, or a per-access sequence; ``payloads`` requires
        ``ops`` and supplies the per-access write payloads.  Numpy integer
        arrays are accepted and drained with one bulk ``tolist``.

        Layers override this with fused drivers (the array backends) or a
        planning pipeline (LAORAM's lookahead preprocessor); the sequential
        contract is the same for all of them, so callers never need to know
        which they hold.
        """
        ids = block_ids.tolist() if isinstance(block_ids, np.ndarray) else block_ids
        op_seq, payload_seq = self._normalize_trace_args(len(ids), ops, payloads)
        access = self.access
        if op_seq is None:
            return [access(block_id) for block_id in ids]
        return [
            access(block_id, op, payload)
            for block_id, op, payload in zip(ids, op_seq, payload_seq)
        ]

    def _normalize_trace_args(self, n: int, ops, payloads):
        """Expand/validate ``run_trace``'s op and payload arguments.

        Returns ``(None, None)`` for the common all-reads case so drivers
        can keep a branch-free fast path, else two length-``n`` sequences.
        """
        if ops is None:
            if payloads is not None:
                raise ConfigurationError("run_trace payloads require ops")
            return None, None
        if isinstance(ops, AccessOp):
            op_seq: Sequence[AccessOp] = [ops] * n
        else:
            op_seq = list(ops)
            if len(op_seq) != n:
                raise ConfigurationError("ops must match block_ids in length")
        if payloads is None:
            payload_seq: Sequence[object] = [None] * n
        else:
            if len(payloads) != n:
                raise ConfigurationError("payloads must match block_ids in length")
            payload_seq = payloads
        return op_seq, payload_seq

    def access_many(
        self, block_ids: Sequence[int], batch_size: Optional[int] = None
    ) -> list[Optional[object]]:
        """Access several blocks, batching when the engine is configured to.

        Without an effective batch size (``batch_size`` argument, falling
        back to the engine's ``batch_size``), or on engines whose protocol
        does not admit the generic batch (``SUPPORTS_BATCHED_ACCESS`` is
        false), this delegates to :meth:`run_trace` — the sequential
        semantics, served by whatever driver the engine fuses it with.
        With one, requests are chunked and each chunk is served by
        :meth:`_access_batch`: one grouped multi-path read and one grouped
        write-back per chunk instead of a path pair per access.
        """
        size = batch_size if batch_size is not None else self.batch_size
        if size is None or size <= 1 or not self.SUPPORTS_BATCHED_ACCESS:
            return self.run_trace(block_ids)
        ids = self._coerce_id_list(block_ids)
        payloads: list[Optional[object]] = []
        for offset in range(0, len(ids), size):
            payloads.extend(self._access_batch(ids[offset : offset + size]))
        return payloads

    def write_many(
        self,
        block_ids: Sequence[int],
        payloads: Sequence[object],
        batch_size: Optional[int] = None,
    ) -> None:
        """Write several blocks; batched exactly like :meth:`access_many`.

        Duplicate ids within a batch keep the last payload, mirroring a
        sequential write stream.
        """
        if len(block_ids) != len(payloads):
            raise ConfigurationError("block_ids and payloads must have equal length")
        size = batch_size if batch_size is not None else self.batch_size
        if size is None or size <= 1 or not self.SUPPORTS_BATCHED_ACCESS:
            self.run_trace(block_ids, ops=AccessOp.WRITE, payloads=payloads)
            return
        ids = self._coerce_id_list(block_ids)
        for offset in range(0, len(ids), size):
            chunk = ids[offset : offset + size]
            updates = dict(zip(chunk, payloads[offset : offset + size]))
            self._access_batch(chunk, new_payloads=updates)

    @staticmethod
    def _coerce_id_list(block_ids: Sequence[int]) -> list[int]:
        """Plain-int id list; bulk ``tolist`` for arrays, no per-element int()."""
        if isinstance(block_ids, np.ndarray):
            return block_ids.tolist()
        return [int(block_id) for block_id in block_ids]

    def _access_batch(
        self,
        block_ids: list[int],
        new_payloads: Optional[dict[int, object]] = None,
    ) -> list[Optional[object]]:
        """Serve one batch of accesses with grouped reads and write-backs.

        The batched protocol mirrors LAORAM's superblock execution on a
        plan-free engine: blocks already in the stash are served for free,
        the rest are grouped by their current path (first-encounter order)
        and every distinct path is fetched once, each distinct block is
        remapped uniformly, and all fetched paths are written back together
        through :meth:`_write_back_many`.  Every step runs through the
        storage hooks, so the reference and array backends execute it
        decision-for-decision identically.
        """
        # oblivious: allow[OBL001] batch emptiness equals the public batch size
        if not block_ids:
            return []
        for block_id in block_ids:
            self._check_block_id(block_id)
        self.counter.record_logical_access(len(block_ids))
        self.timing.charge_client_overhead(len(block_ids))

        needed = list(dict.fromkeys(block_ids))
        # oblivious: allow[OBL001] the batched protocol fetches only the miss
        # set's distinct paths by design (LAORAM superblock-style grouped
        # read); the per-batch path count is the protocol's observable
        missing = [b for b in needed if self._stash_lookup(b) is None]
        self._stash_hits += len(needed) - len(missing)
        read_leaves: list[int] = []
        # oblivious: allow[OBL001] grouped fetch over the deduped miss set;
        # see the comprehension above
        if missing:
            distinct: dict[int, None] = {}
            # oblivious: allow[OBL002] iterates the miss set to collect its
            # distinct paths — the reveal sanctioned above
            for block_id in missing:
                distinct.setdefault(self.position_map.get(block_id), None)
            read_leaves = list(distinct)
            self._read_paths_into_stash(read_leaves, dummy=False)
            # oblivious: allow[OBL002] post-fetch integrity sweep of the same
            # miss set; failures abort the run loudly
            for block_id in missing:
                # oblivious: allow[OBL001] integrity check; aborts the run
                if self._stash_lookup(block_id) is None:
                    raise BlockNotFoundError(
                        f"block {block_id} missing from both stash and its path"
                    )

        payloads: list[Optional[object]] = []
        for block_id in block_ids:
            handle = self._stash_lookup(block_id)
            # oblivious: allow[OBL001] client-side payload routing; serving
            # from the stash handle touches no server-visible state
            if new_payloads is not None and block_id in new_payloads:
                payloads.append(self._serve(handle, AccessOp.WRITE, new_payloads[block_id]))
            else:
                payloads.append(self._serve(handle, AccessOp.READ, None))

        for block_id in needed:
            self._remap(self._stash_lookup(block_id))

        self._write_back_many(read_leaves)
        self._maybe_background_evict()
        self.counter.observe_stash(len(self.stash))
        return payloads

    # ------------------------------------------------------------------
    # Shared internals (counter/timing charges live here, not in backends)
    # ------------------------------------------------------------------
    def _draw_leaf(self) -> int:
        """Draw one uniform leaf from the engine's RNG.

        With :data:`LEAF_DRAW_BLOCK` set, draws are prefetched in blocks via
        one vectorized ``integers`` call and handed out one at a time —
        hundreds of scalar generator calls collapse into one dispatch plus a
        list index.  The stream consumption is identical either way (see the
        class attribute), so blocked and scalar engines make the same
        decisions for a seed.
        """
        block = self.LEAF_DRAW_BLOCK
        if not block:
            return int(self.rng.integers(0, self._num_leaves))
        pos = self._leaf_buf_pos
        buf = self._leaf_buf
        if pos == len(buf):
            buf = self.rng.integers(0, self._num_leaves, size=block).tolist()
            self._leaf_buf = buf
            pos = 0
        self._leaf_buf_pos = pos + 1
        return buf[pos]

    def _choose_new_leaf(self, block_id: int) -> int:
        """Uniformly random new path; LAORAM overrides this with its plan."""
        return self._draw_leaf()

    def _read_path_into_stash(self, leaf: int, dummy: bool) -> None:
        """Fetch a full path from the server into the stash."""
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self._fetch_path(leaf)
        self.counter.record_path_read(num_buckets, num_bytes, dummy=dummy)
        self.timing.charge_path_transfer(num_buckets, num_bytes)
        if self.observer is not None:
            self.observer.observe_path(leaf, dummy=dummy)

    def _read_paths_into_stash(
        self, leaves: Sequence[int], dummy: bool = False
    ) -> None:
        """Fetch several full paths into the stash.

        Default: one :meth:`_read_path_into_stash` per leaf, in order.  The
        array backend overrides this with a single deduplicated multi-path
        gather that yields the same stash contents in the same order (and
        identical per-path charges/observations).
        """
        for leaf in leaves:
            self._read_path_into_stash(leaf, dummy=dummy)

    def _write_back(self, leaf: int) -> None:
        """Greedily write stash blocks back onto the path to ``leaf``."""
        self._commit_write_back(leaf)
        num_buckets, num_bytes = self.tree.path_cost(leaf)
        self.counter.record_path_write(num_buckets, num_bytes)
        self.timing.charge_path_transfer(num_buckets, num_bytes)

    def _write_back_many(self, leaves: Sequence[int]) -> None:
        """Write back every path of one batch (superblock bin or access batch).

        Default: one :meth:`_write_back` per leaf, in order — the reference
        semantics.  The array backend overrides this with the cross-path
        batched planner, which commits a bit-identical placement in one
        scatter.
        """
        for leaf in leaves:
            self._write_back(leaf)

    def _maybe_background_evict(self) -> None:
        """Run the dummy-read eviction loop when the stash is too full.

        Always single-path episodes, even under the batched access protocol:
        a read-one-write-one dummy access drains the stash monotonically,
        whereas a grouped k-path episode floods the stash with every path's
        blocks before any write-back and — on deep trees, where random paths
        only share buckets near the root — leaves most of that flood behind,
        so the drain target recedes and every episode runs to the dummy cap.
        """
        # oblivious: allow[OBL001] occupancy-triggered background eviction is
        # the engine's documented policy; episodes are deliberately observable
        # (counted, charged, and studied by the multi-tenant experiments)
        if not self.eviction.should_trigger(len(self.stash)):
            return
        self.counter.record_background_eviction()
        dummy_reads = 0
        # oblivious: allow[OBL002] eviction episode length tracks occupancy by
        # design — same documented policy as the trigger above
        while self.eviction.should_continue(len(self.stash), dummy_reads):
            self.dummy_access()
            dummy_reads += 1

    def dummy_access(self) -> None:
        """Read and write back one random path without touching any block."""
        leaf = self._draw_leaf()
        self._read_path_into_stash(leaf, dummy=True)
        self._write_back(leaf)

    def _check_block_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.config.num_blocks:
            raise BlockNotFoundError(
                f"block {block_id} outside [0, {self.config.num_blocks})"
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def total_real_blocks(self) -> int:
        """Blocks present across tree and stash (must equal ``num_blocks``)."""
        return self.tree.real_block_count() + len(self.stash)

    #: Client-side bookkeeping per stashed block: the (id, leaf) pair the
    #: stash tracks alongside the payload (two int64 rows in ``ArrayStash``,
    #: the equivalent attributes on a per-object ``Block``).
    STASH_ENTRY_OVERHEAD_BYTES = 16

    def client_memory_bytes(self) -> int:
        """Client memory: position map (incl. recursion levels) plus stash.

        Stash entries are charged at ``block_size_bytes`` plus the id/leaf
        bookkeeping — *not* at ``stored_block_bytes``, whose
        ``metadata_bytes_per_block`` component (MACs) exists only on the
        server wire format and is never held by the client.  The position
        map term covers the dense array or, under ``recursive_posmap``,
        the recursion top map, per-level stash residue and open walks.
        """
        stash_bytes = len(self.stash) * (
            self.config.block_size_bytes + self.STASH_ENTRY_OVERHEAD_BYTES
        )
        return self.position_map.client_memory_bytes() + stash_bytes

    # ------------------------------------------------------------------
    # Storage hooks (implemented by the backends below)
    # ------------------------------------------------------------------
    def _make_tree(self):
        """Build the server-side tree storage for ``self.config``."""
        raise NotImplementedError

    def _make_stash(self):
        """Build the client-side stash."""
        raise NotImplementedError

    def _bulk_load(self) -> None:
        """Trusted-setup placement of every block onto its initial path."""
        raise NotImplementedError

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads during trusted setup (no traffic charged)."""
        raise NotImplementedError

    def _stash_lookup(self, block_id: int):
        """Handle of a stashed block (Block or id), or ``None`` if absent."""
        raise NotImplementedError

    def _stash_detach(self, block_id: int):
        """Remove a block from the stash, returning its handle (or ``None``)."""
        raise NotImplementedError

    def _stash_reattach(self, handle) -> None:
        """Re-insert a previously detached handle, keeping its current leaf."""
        raise NotImplementedError

    def _stash_insert(self, handle, leaf: int) -> None:
        """Insert a detached handle with a (possibly new) assigned leaf."""
        raise NotImplementedError

    def _update_leaf(self, block_id: int, leaf: int) -> None:
        """Reassign a *stashed* block's leaf in the position map and stash."""
        raise NotImplementedError

    def _serve(self, handle, op: AccessOp, new_payload: Optional[object]):
        """Apply the read/write to a stashed block and return its payload."""
        raise NotImplementedError

    def _remap(self, handle) -> None:
        """Assign a stashed block a fresh leaf via :meth:`_choose_new_leaf`."""
        raise NotImplementedError

    def _fetch_path(self, leaf: int) -> None:
        """Move every real block on the path to ``leaf`` into the stash."""
        raise NotImplementedError

    def _commit_write_back(self, leaf: int) -> None:
        """Plan and commit the greedy write-back onto the path to ``leaf``."""
        raise NotImplementedError

    def _remove_from_path(self, leaf: int, block_id: int):
        """Remove ``block_id`` from a bucket on the path (RingORAM online read)."""
        raise NotImplementedError

    def _relayout_tree(self) -> None:
        """Rebuild the tree layout under the current position map (setup only)."""
        raise NotImplementedError


class ObjectStorageEngine(TreeORAMEngine):
    """Per-object storage backend: Block objects, list buckets, dict stash."""

    def __init__(self, config: ORAMConfig, **kwargs):
        super().__init__(config, **kwargs)
        self._bulk_load()

    # -- construction ---------------------------------------------------
    def _make_tree(self) -> TreeStorage:
        return TreeStorage(
            depth=self.config.depth,
            bucket_capacities=self.config.bucket_capacities(),
            block_size_bytes=self.config.block_size_bytes,
            metadata_bytes_per_block=self.config.metadata_bytes_per_block,
        )

    def _make_stash(self) -> Stash:
        return Stash(capacity=self.config.stash_capacity)

    def _bulk_load(self) -> None:
        """Place every block on its initial path; overflow goes to the stash.

        Initial placement is a trusted setup step performed before the
        adversary starts observing, so it is not charged to the traffic
        counters.
        """
        for block_id in range(self.config.num_blocks):
            leaf = self.position_map.peek(block_id)
            block = Block(block_id=block_id, leaf=leaf, payload=None)
            if not self.tree.try_place_on_path(block):
                self.stash.add(block)

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads for blocks during trusted setup (no traffic charged)."""
        remaining = dict(payloads)
        for block in self.stash:
            if block.block_id in remaining:
                block.payload = remaining.pop(block.block_id)
        if remaining:
            for block in self.tree.iter_blocks():
                if block.block_id in remaining:
                    block.payload = remaining.pop(block.block_id)
                    if not remaining:
                        break
        if remaining:
            raise BlockNotFoundError(
                f"{len(remaining)} payload block ids not present in the ORAM"
            )

    # -- stash hooks ----------------------------------------------------
    def _stash_lookup(self, block_id: int) -> Optional[Block]:
        return self.stash.get(block_id)

    def _stash_detach(self, block_id: int) -> Optional[Block]:
        return self.stash.pop(block_id)

    def _stash_reattach(self, handle: Block) -> None:
        self.stash.add(handle)

    def _stash_insert(self, handle: Block, leaf: int) -> None:
        handle.leaf = leaf
        self.stash.add(handle)

    def _update_leaf(self, block_id: int, leaf: int) -> None:
        block = self.stash.get(block_id)
        block.leaf = leaf
        self.position_map.set(block_id, leaf)

    # -- access hooks ---------------------------------------------------
    def _serve(
        self, handle: Block, op: AccessOp, new_payload: Optional[object]
    ) -> Optional[object]:
        if op is AccessOp.WRITE:
            handle.payload = new_payload
        return handle.payload

    def _remap(self, handle: Block) -> None:
        """Assign the block a fresh path and update the position map."""
        new_leaf = self._choose_new_leaf(handle.block_id)
        handle.leaf = new_leaf
        self.position_map.set(handle.block_id, new_leaf)

    def _fetch_path(self, leaf: int) -> None:
        for block in self.tree.read_path(leaf):
            self.stash.add(block)

    def _commit_write_back(self, leaf: int) -> None:
        placement = self._plan_write_back(leaf)
        self.tree.write_path(leaf, placement)

    def _plan_write_back(self, leaf: int) -> dict[int, list[Block]]:
        """Choose which stash blocks go to which level of the accessed path."""
        return plan_greedy_write_back(self.tree, self.stash, leaf)

    def _remove_from_path(self, leaf: int, block_id: int) -> Optional[Block]:
        for index in self.tree.path_bucket_indices(leaf):
            block = self.tree.bucket_by_index(index).remove(block_id)
            if block is not None:
                return block
        return None

    def _relayout_tree(self) -> None:
        """Re-place every block under the current position map (trusted setup).

        Blocks are taken in tree-iteration order (bucket index, then slot)
        followed by stash insertion order, exactly the order the array
        backend replays, so both backends produce the same layout.
        """
        blocks = list(self.tree.iter_blocks()) + [
            self.stash.pop(block_id) for block_id in self.stash.block_ids
        ]
        self.tree = self._make_tree()
        self.stash.clear()
        for block in blocks:
            if block is None:
                continue
            block.leaf = self.position_map.peek(block.block_id)
            if not self.tree.try_place_on_path(block):
                self.stash.add(block)


def _fused_fetch(read_ids, pm, stash_map, leaf):
    """Read one path into a dict stash mirror (fused trace drivers).

    ``read_ids`` empties the path and returns its real block ids, compacted
    by one vectorized mask so only the real blocks a path carries are
    touched (not every slot).  Leaves come through one position-map
    ``take`` and the dict absorbs the pairs via C-level ``update(zip(...))``
    — marginally ahead of a per-id ``pm.item`` loop at PathORAM's ~9 real
    ids per path and clearly ahead on RingORAM evict paths, which carry
    several times that.  Compaction preserves root-to-leaf slot order, so
    dict insertion order is exactly the row order ``append_rows`` would
    have produced.
    """
    ids = read_ids(leaf)
    stash_map.update(zip(ids.tolist(), pm.take(ids).tolist()))


#: Shared by the fused drivers here and in ``ring_oram``; lives with the
#: other write-back planners (see ``repro.oram.write_back``).
_fused_write_back = fused_greedy_write_back


class ArrayStorageEngine(TreeORAMEngine):
    """Array storage backend: id slot arrays, row stash, client payload store.

    The handle for a stashed block is its integer id; payloads live in a
    client-side dict (payload location never affects traffic, so keeping it
    out of the simulated server removes all per-block object churn from the
    hot path).
    """

    #: The array backend prefetches leaf draws in blocks (see
    #: :meth:`TreeORAMEngine._draw_leaf`); stream-identical to scalar draws.
    LEAF_DRAW_BLOCK = 512

    def __init__(self, config: ORAMConfig, **kwargs):
        super().__init__(config, **kwargs)
        self._payloads: dict[int, object] = {}
        # Scratch buffers for the write-back planner (sized to the stash's
        # row count on demand) so the per-path xor/frexp pass allocates
        # nothing.
        self._wb_xor = np.empty(256, dtype=np.int64)
        self._wb_mant = np.empty(256, dtype=np.float64)
        self._wb_bitlen = np.empty(256, dtype=np.intc)
        self._bulk_load()

    # -- construction ---------------------------------------------------
    def _make_tree(self) -> ArrayTreeStorage:
        return ArrayTreeStorage(
            depth=self.config.depth,
            bucket_capacities=self.config.bucket_capacities(),
            block_size_bytes=self.config.block_size_bytes,
            metadata_bytes_per_block=self.config.metadata_bytes_per_block,
            allocator=self.allocator,
        )

    def _make_stash(self) -> ArrayStash:
        return ArrayStash(
            num_blocks=self.config.num_blocks,
            num_leaves=self.config.num_leaves,
            capacity=self.config.stash_capacity,
            allocator=self.allocator,
        )

    def _bulk_load(self) -> None:
        """Place every block into the tree according to its initial path.

        One vectorized pass per level; overflow goes to the stash in
        ascending id order, exactly as the per-object bulk load does.
        """
        initial_leaves = self.position_map.as_array()
        overflow = self.tree.bulk_place(initial_leaves)
        self.stash.append_rows(overflow, initial_leaves[overflow])

    def load_payloads(self, payloads: dict[int, object]) -> None:
        """Install payloads for blocks during trusted setup (no traffic charged)."""
        for block_id in payloads:
            if not 0 <= block_id < self.config.num_blocks:
                raise BlockNotFoundError(
                    f"payload block id {block_id} not present in the ORAM"
                )
        self._payloads.update(payloads)

    # -- stash hooks ----------------------------------------------------
    def _stash_lookup(self, block_id: int) -> Optional[int]:
        if block_id in self.stash:
            return block_id
        return None

    def _stash_detach(self, block_id: int) -> Optional[int]:
        if self.stash.pop(block_id):
            return block_id
        return None

    def _stash_reattach(self, handle: int) -> None:
        # peek: the block is in hand (just detached), so its leaf tag is
        # client-readable without an oblivious position-map access.
        self.stash.add(handle, self.position_map.peek(handle))

    def _stash_insert(self, handle: int, leaf: int) -> None:
        self.stash.add(handle, leaf)

    def _update_leaf(self, block_id: int, leaf: int) -> None:
        self.position_map.set(block_id, leaf)
        self.stash.set_leaf(block_id, leaf)

    # -- access hooks ---------------------------------------------------
    def _serve(
        self, handle: int, op: AccessOp, new_payload: Optional[object]
    ) -> Optional[object]:
        if op is AccessOp.WRITE:
            self._payloads[handle] = new_payload
        return self._payloads.get(handle)

    def _remap(self, handle: int) -> None:
        """Assign the block a fresh path (position map + stash leaf mirror).

        Remap always happens while the block sits in the stash, so both the
        authoritative position-map entry and the stash's leaf row are
        updated together.
        """
        leaf = self._choose_new_leaf(handle)
        self.position_map.set(handle, leaf)
        self.stash.set_leaf(handle, leaf)

    def _fetch_path(self, leaf: int) -> None:
        ids = self.tree.read_path_ids(leaf)
        if ids.size:
            # peek_many: fetched blocks carry their leaf tags on the wire.
            self.stash.append_rows(ids, self.position_map.peek_many(ids))

    def _read_paths_into_stash(
        self, leaves: Sequence[int], dummy: bool = False
    ) -> None:
        """Fetch several paths with one deduplicated multi-path gather.

        :meth:`ArrayTreeStorage.read_paths_ids` returns exactly the ids a
        sequential per-leaf loop would (shared buckets counted at their
        first path only), in the same order, so one ``append_rows`` leaves
        the stash bit-identical to the default implementation.  Per-path
        charges and observer events are preserved one per leaf.
        """
        if len(leaves) < 2:
            for leaf in leaves:
                self._read_path_into_stash(leaf, dummy=dummy)
            return
        ids = self.tree.read_paths_ids(np.asarray(leaves, dtype=np.int64))
        if ids.size:
            self.stash.append_rows(ids, self.position_map.peek_many(ids))
        observer = self.observer
        for leaf in leaves:
            num_buckets, num_bytes = self.tree.path_cost(leaf)
            self.counter.record_path_read(num_buckets, num_bytes, dummy=dummy)
            self.timing.charge_path_transfer(num_buckets, num_bytes)
            if observer is not None:
                observer.observe_path(leaf, dummy=dummy)

    # -- fused trace driver ---------------------------------------------
    def run_trace(
        self,
        block_ids: Sequence[int],
        ops=None,
        payloads: Optional[Sequence[object]] = None,
    ) -> list[Optional[object]]:
        """Fused sequential driver (see :meth:`TreeORAMEngine.run_trace`).

        Falls back to the generic per-access loop whenever this engine's
        decisions are not the plain PathORAM sequence the fused core
        replicates: an overridden ``access`` (protocol mixins ship their own
        fused drivers), a plan-driven ``_choose_new_leaf`` (LAORAM), a
        custom eviction policy class, or a non-dense position map (the
        fused core writes the dense leaf array directly, which would
        bypass recursion charging).
        """
        cls = type(self)
        if (
            cls.access is not TreeORAMEngine.access
            or cls._choose_new_leaf is not TreeORAMEngine._choose_new_leaf
            or type(self.eviction) is not EvictionPolicy
            or type(self.position_map) is not PositionMap
        ):
            return TreeORAMEngine.run_trace(self, block_ids, ops, payloads)
        return self._run_trace_fused(block_ids, ops, payloads)

    def _run_trace_fused(
        self,
        block_ids: Sequence[int],
        ops=None,
        payloads: Optional[Sequence[object]] = None,
        before_access=None,
        fallback=None,
    ) -> list[Optional[object]]:
        """One-loop execution of a whole trace with zero steady-state allocation.

        The driver mirrors the stash into a plain dict (id -> leaf; dict
        insertion order is exactly the row stash's insertion order, so every
        write-back decision is identical), runs the PathORAM access sequence
        with all attribute lookups hoisted to locals, accumulates counters
        and simulated time in plain Python scalars, and syncs everything
        back to the engine's structures on exit.  Steady-state work per
        access is a handful of in-place numpy calls on preallocated scratch
        plus pure-Python dict/list operations — no numpy allocation at all.

        ``before_access(block_id)`` is a per-access protocol hook (PrORAM
        locality tracking): returning truthy routes the access through
        ``fallback(block_id, op, payload)`` with the engine's real
        structures fully synced before and re-mirrored after, so arbitrary
        protocol code can interleave with the fused loop.

        Error paths diverge from the sequential loop in one documented way:
        the stash-capacity check runs after a path's blocks enter the
        mirror, whereas ``ArrayStash.append_rows`` raises before appending.
        State on that error path is synced back faithfully either way.
        """
        ids = block_ids.tolist() if isinstance(block_ids, np.ndarray) else block_ids
        n = len(ids)
        op_seq, payload_seq = self._normalize_trace_args(n, ops, payloads)
        if fallback is None:
            fallback = self.access
        results: list[Optional[object]] = [None] * n

        WRITE = AccessOp.WRITE
        num_blocks = self.config.num_blocks
        num_leaves = self._num_leaves
        tree = self.tree
        stash = self.stash
        counter = self.counter
        timing = self.timing
        eviction = self.eviction
        observer = self.observer
        capacity = stash.capacity
        depth = self._depth

        pm = self.position_map.leaves
        pm_item = pm.item
        payload_store = self._payloads
        payload_get = payload_store.get
        slots = tree.slot_array
        caps = tree.bucket_capacities
        level_base = tree.level_base
        node_base = [(1 << level) - 1 for level in range(depth + 1)]
        groups: list[list[int]] = [[] for _ in range(depth + 1)]
        # Occupancy is maintained eagerly: the path read zeroes its buckets'
        # occupancies in one scatter and the write-back writes each visited
        # level's count — ~1.5 us/access total.  Deferring it (lazy reads +
        # one vectorized rebuild per sync) measured ~4.5 us/access amortized
        # at 30k-access traces, so eager wins despite touching occupancy on
        # every single access.
        occ = tree.bucket_occupancies
        read_ids = tree.read_path_ids
        fetch = _fused_fetch
        write_back = _fused_write_back

        path_buckets, path_bytes = tree.path_cost(0)
        dt_path = timing.path_transfer_delta(path_buckets, path_bytes)
        dt_client = timing.client_overhead_us * 1e-6

        rng_integers = self.rng.integers
        draw_block = self.LEAF_DRAW_BLOCK or 512
        leaf_buf = self._leaf_buf
        leaf_pos = self._leaf_buf_pos

        evict_enabled = eviction.enabled
        trigger = eviction.trigger_threshold
        should_continue = eviction.should_continue

        # Stash mirror: id -> leaf in row (== insertion) order, skipping
        # holes.  All values are Python ints (bulk tolist), so xor/bit_length
        # in the write-back stay in C-speed small-int land.
        stash_map: dict[int, int] = {}
        tail = stash.tail
        row_leaves = stash.leaf_rows[:tail].tolist()
        # oblivious: allow[OBL002] client-local mirror build over private
        # stash rows; no server traffic is issued here
        for row, resident in enumerate(stash.id_rows[:tail].tolist()):
            # oblivious: allow[OBL001] hole-skip in the client-local mirror
            if resident >= 0:
                stash_map[resident] = row_leaves[row]

        # Deferred accumulators (flushed by _sync_out, exact under any
        # grouping for the ints; the float repeats the per-charge += order
        # so even simulated time is bit-identical).
        logical = path_reads = path_writes = dummy_reads = 0
        buckets_read = buckets_written = bytes_read = bytes_written = 0
        episodes = hits = 0
        stash_peak = counter.stash_peak
        elapsed = timing.elapsed_s
        history = counter.stash_history if counter.record_stash_history else None

        def sync_out():
            """Flush every accumulator and mirror back into engine state."""
            nonlocal logical, path_reads, path_writes, dummy_reads
            nonlocal buckets_read, buckets_written, bytes_read, bytes_written
            nonlocal episodes, hits
            self._leaf_buf = leaf_buf
            self._leaf_buf_pos = leaf_pos
            stash.clear()
            if stash_map:
                count = len(stash_map)
                stash.append_rows(
                    np.fromiter(stash_map.keys(), np.int64, count),
                    np.fromiter(stash_map.values(), np.int64, count),
                )
            counter.add_bulk(
                logical,
                path_reads,
                path_writes,
                dummy_reads,
                buckets_read,
                buckets_written,
                bytes_read,
                bytes_written,
                stash_peak,
                episodes,
            )
            logical = path_reads = path_writes = dummy_reads = 0
            buckets_read = buckets_written = bytes_read = bytes_written = 0
            episodes = 0
            timing.set_elapsed(elapsed)
            self._stash_hits += hits
            hits = 0

        def sync_in():
            """Re-mirror engine state after a fallback access ran on it."""
            nonlocal leaf_buf, leaf_pos, stash_peak, elapsed
            leaf_buf = self._leaf_buf
            leaf_pos = self._leaf_buf_pos
            stash_peak = counter.stash_peak
            elapsed = timing.elapsed_s
            stash_map.clear()
            tail = stash.tail
            row_leaves = stash.leaf_rows[:tail].tolist()
            for row, resident in enumerate(stash.id_rows[:tail].tolist()):
                if resident >= 0:
                    stash_map[resident] = row_leaves[row]

        try:
            for index in range(n):
                block_id = ids[index]
                # oblivious: allow[OBL001] bounds check against the public
                # num_blocks; invalid ids abort the run loudly
                if block_id < 0 or block_id >= num_blocks:
                    raise BlockNotFoundError(
                        f"block {block_id} outside [0, {num_blocks})"
                    )
                # oblivious: allow[OBL001] protocol hook: PrORAM's merge
                # trigger (declassified in pr_oram.py) routes through the
                # reference access, whose traffic is charged identically
                if before_access is not None and before_access(block_id):
                    sync_out()
                    try:
                        if op_seq is None:
                            results[index] = fallback(block_id, AccessOp.READ, None)
                        else:
                            results[index] = fallback(
                                block_id, op_seq[index], payload_seq[index]
                            )
                    finally:
                        sync_in()
                    continue
                logical += 1
                elapsed += dt_client

                # oblivious: allow[OBL001] fused replay of access()'s stash-hit
                # fast path — hits counted and charged the same way
                if block_id in stash_map:
                    hits += 1
                    leaf = None
                else:
                    leaf = pm_item(block_id)
                    fetch(read_ids, pm, stash_map, leaf)
                    path_reads += 1
                    buckets_read += path_buckets
                    bytes_read += path_bytes
                    elapsed += dt_path
                    if observer is not None:
                        observer.observe_path(leaf, dummy=False)
                    # oblivious: allow[OBL001] integrity check; aborts the run
                    if block_id not in stash_map:
                        raise BlockNotFoundError(
                            f"block {block_id} missing from both stash and its path"
                        )
                    # oblivious: allow[OBL001] stash-capacity check: overflow
                    # is PathORAM's stated failure event and aborts the run
                    if capacity is not None and len(stash_map) > capacity:
                        raise StashOverflowError(
                            f"stash exceeded its capacity of {capacity} blocks"
                        )

                # Serve from the client payload store, then remap.
                if op_seq is not None and op_seq[index] is WRITE:
                    payload = payload_seq[index]
                    payload_store[block_id] = payload
                    results[index] = payload
                else:
                    results[index] = payload_get(block_id)
                if leaf_pos == len(leaf_buf):
                    leaf_buf = rng_integers(0, num_leaves, size=draw_block).tolist()
                    leaf_pos = 0
                new_leaf = leaf_buf[leaf_pos]
                leaf_pos += 1
                pm[block_id] = new_leaf
                stash_map[block_id] = new_leaf

                if leaf is not None:
                    write_back(
                        stash_map,
                        groups,
                        caps,
                        level_base,
                        node_base,
                        slots,
                        occ,
                        depth,
                        leaf,
                    )
                    path_writes += 1
                    buckets_written += path_buckets
                    bytes_written += path_bytes
                    elapsed += dt_path

                occupancy = len(stash_map)
                # oblivious: allow[OBL001] fused replay of the documented
                # occupancy-triggered background eviction policy
                if evict_enabled and occupancy > trigger:
                    episodes += 1
                    dummies = 0
                    # oblivious: allow[OBL002] episode length tracks occupancy
                    # by design — same documented policy as the trigger
                    while should_continue(occupancy, dummies):
                        if leaf_pos == len(leaf_buf):
                            leaf_buf = rng_integers(
                                0, num_leaves, size=draw_block
                            ).tolist()
                            leaf_pos = 0
                        dummy_leaf = leaf_buf[leaf_pos]
                        leaf_pos += 1
                        fetch(read_ids, pm, stash_map, dummy_leaf)
                        dummy_reads += 1
                        buckets_read += path_buckets
                        bytes_read += path_bytes
                        elapsed += dt_path
                        if observer is not None:
                            observer.observe_path(dummy_leaf, dummy=True)
                        # oblivious: allow[OBL001] stash-capacity check:
                        # overflow aborts the run loudly
                        if capacity is not None and len(stash_map) > capacity:
                            raise StashOverflowError(
                                f"stash exceeded its capacity of {capacity} blocks"
                            )
                        write_back(
                            stash_map,
                            groups,
                            caps,
                            level_base,
                            node_base,
                            slots,
                            occ,
                            depth,
                            dummy_leaf,
                        )
                        path_writes += 1
                        buckets_written += path_buckets
                        bytes_written += path_bytes
                        elapsed += dt_path
                        dummies += 1
                        occupancy = len(stash_map)

                # oblivious: allow[OBL001] client-side metrics (stash peak
                # tracking); no server traffic
                if occupancy > stash_peak:
                    stash_peak = occupancy
                if history is not None:
                    history.append(occupancy)
        finally:
            sync_out()
        return results

    #: Whether :meth:`_write_back_many` uses the cross-path batched planner.
    #: The plan it commits is bit-identical to the sequential per-path loop
    #: (asserted by tests/test_batched_write_back.py and the equivalence
    #: harness), so this stays on by default; the differential tests and the
    #: benchmark's per-path mode flip it off per instance.
    batched_write_back = True

    #: Path count below which :meth:`_write_back_many` takes the per-path
    #: loop even with ``batched_write_back`` on.  The batched planner's
    #: fixed setup (a (k, tail) xor/frexp/argsort pass plus the per-path
    #: gather matrices) only amortizes across enough paths: measured on
    #: LAORAM superblock bins at 2^18 (30k-access Zipf trace), per-path wins
    #: ~4% at k=2, breaks even at k=3, and the planner wins from k=4 up
    #: (~11% at k=4, ~20% by k=6) — so k<4 falls back.  LAORAM bins with
    #: lookahead placement read 0-1 paths and never reach the planner;
    #: PathORAM's 64-access batches read ~40+ paths and always do.
    BATCHED_WB_MIN_PATHS = 4

    def _write_back_many(self, leaves: Sequence[int]) -> None:
        """Write back a batch of paths via the cross-path batched planner.

        Small batches (below :data:`BATCHED_WB_MIN_PATHS` — including the
        single-leaf case, the overwhelmingly common one for the
        single-access protocols) keep the tuned per-path planner; larger
        batches plan the union of paths in one vectorized pass and commit
        with one scatter into the tree.  Both routes commit bit-identical
        placements, so the threshold is purely a throughput choice.
        """
        if len(leaves) < self.BATCHED_WB_MIN_PATHS or not self.batched_write_back:
            for leaf in leaves:
                self._write_back(leaf)
            return
        # oblivious: allow[OBL001] client-side planner gate; the batch's paths
        # are written back and charged in full below regardless
        if len(self.stash):
            rows, slots, buckets, occupancies = plan_batched_write_back(
                self.tree, self.stash, leaves
            )
            # oblivious: allow[OBL001] client-side plan commit; same full-path
            # write-back cost either way
            if rows:
                chosen_ids = self.stash.id_rows[rows]
                self.tree.commit_batch_write(slots, chosen_ids, buckets, occupancies)
                self.stash.remove_rows(rows, chosen_ids)
        for leaf in leaves:
            num_buckets, num_bytes = self.tree.path_cost(leaf)
            self.counter.record_path_write(num_buckets, num_bytes)
            self.timing.charge_path_transfer(num_buckets, num_bytes)

    #: Row count below which the write-back planner runs its scalar path:
    #: one bulk ``tolist`` plus pure-Python grouping beats ~10 numpy
    #: dispatches on the tiny stashes the single-path protocols keep.
    SCALAR_WB_ROWS = 96

    def _commit_write_back(self, leaf: int) -> None:
        """Greedy write-back onto the path to ``leaf``.

        The selection replicates ``plan_greedy_write_back`` exactly — same
        eligibility (path-prefix rule), same occupancy awareness and same
        tie-breaking order.  Two implementations produce the identical
        choice: a scalar pass for small stashes (PathORAM/RingORAM/PrORAM
        keep a handful of live rows, where numpy dispatch overhead dominates)
        and a vectorized xor/frexp pass for large ones (LAORAM superblock
        bins under eviction pressure).
        """
        stash = self.stash
        if not len(stash):
            return
        if stash.tail <= self.SCALAR_WB_ROWS:
            self._commit_write_back_scalar(leaf)
        else:
            self._commit_write_back_vector(leaf)

    def _commit_write_back_scalar(self, leaf: int) -> None:
        """Pure-Python grouping over one bulk ``tolist`` of the stash rows.

        bit_length(leaf xor path) groups rows by deepest common level
        (xor == 0 -> bit length 0 -> common level == depth); appending in
        row order keeps ascending insertion order within a level, the
        stable-sort tie-breaking of the vectorized pass.  Holes carry the
        sentinel leaf whose xor bit length exceeds ``depth``, so they are
        skipped.
        """
        stash = self.stash
        depth = self._depth
        groups: list[list[int]] = [[] for _ in range(depth + 1)]
        for row, row_leaf in enumerate(stash.leaf_rows[: stash.tail].tolist()):
            bitlen = (row_leaf ^ leaf).bit_length()
            if bitlen <= depth:
                groups[bitlen].append(row)
        self._select_and_commit(leaf, groups)

    def _commit_write_back_vector(self, leaf: int) -> None:
        """Vectorized grouping: one xor/frexp pass over the stash's rows.

        frexp's exponent IS the bit length for non-negative ints (and 0 for
        0), exact far below 2^53; a stable argsort keeps ascending insertion
        (row) order within a level, and holes (bit length depth + 2) sort
        after every real row, so slicing the ordering at the live count
        drops exactly the holes.
        """
        stash = self.stash
        live = len(stash)
        depth = self._depth
        tail = stash.tail
        n = self._wb_xor.size
        if n < tail:
            while n < tail:
                n *= 2
            self._wb_xor = np.empty(n, dtype=np.int64)
            self._wb_mant = np.empty(n, dtype=np.float64)
            self._wb_bitlen = np.empty(n, dtype=np.intc)
        xor = self._wb_xor[:tail]
        bitlen = self._wb_bitlen[:tail]
        np.bitwise_xor(stash.leaf_rows[:tail], leaf, out=xor)
        np.frexp(xor, self._wb_mant[:tail], bitlen)
        grouped = np.argsort(bitlen, kind="stable")[:live].tolist()
        counts = np.bincount(bitlen, minlength=depth + 1).tolist()
        groups: list[list[int]] = []
        cursor = 0
        for count in counts[: depth + 1]:
            groups.append(grouped[cursor : cursor + count])
            cursor += count
        self._select_and_commit(leaf, groups)

    def _select_and_commit(self, leaf: int, groups: list[list[int]]) -> None:
        """Greedy LIFO selection shared by the scalar and vector planners.

        ``groups[b]`` holds the stash rows whose leaf-xor bit length is
        ``b`` (i.e. whose deepest common level with ``leaf`` is
        ``depth - b``), each in ascending insertion order.  The selection is
        the identical decision procedure either way, so the two grouping
        passes cannot drift apart.
        """
        tree = self.tree
        stash = self.stash
        depth = self._depth
        buckets, occupancies = tree.path_state(leaf)
        caps = tree.bucket_capacities
        level_base = tree.level_base
        pool: list[int] = []
        chosen_rows: list[int] = []
        chosen_slots: list[int] = []
        for level in range(depth, -1, -1):
            group = groups[depth - level]
            if group:
                pool.extend(group)
            if not pool:
                continue
            occupancy = occupancies[level]
            free = caps[level] - occupancy
            if free <= 0:
                continue
            take = free if free < len(pool) else len(pool)
            # Popping one by one from the pool's tail == reversed slice.
            chosen_rows.extend(pool[: -take - 1 : -1])
            del pool[-take:]
            slot = (
                level_base[level]
                + (leaf >> (depth - level)) * caps[level]
                + occupancy
            )
            chosen_slots.extend(range(slot, slot + take))
            occupancies[level] = occupancy + take
        if chosen_rows:
            # Capacity is respected by construction (take <= free), so
            # the whole path commits in two scatters.
            chosen_ids = stash.id_rows[chosen_rows]
            tree.commit_path_write(buckets, occupancies, chosen_slots, chosen_ids)
            stash.remove_rows(chosen_rows, chosen_ids)

    def _remove_from_path(self, leaf: int, block_id: int) -> Optional[int]:
        if self.tree.remove_on_path(leaf, block_id):
            return block_id
        return None

    def _relayout_tree(self) -> None:
        """Re-place every block under the current position map (trusted setup).

        Replays the per-object relayout exactly — blocks are taken in
        tree-iteration order (bucket index, then slot) followed by stash
        insertion order, and each is placed as deep as possible on its
        (updated) path — but runs it as one priority-ordered bulk placement
        (:meth:`ArrayTreeStorage.bulk_place_ordered`) instead of a scalar
        ``try_place_id`` per block, so PrORAM's static superblock relayout
        at setup is a handful of vectorized passes.  Overflow enters the
        stash in the same priority order the scalar loop would have used.
        """
        ordered = np.concatenate(
            [
                self.tree.all_block_ids(),
                np.asarray(self.stash.block_ids, dtype=np.int64),
            ]
        )
        self.tree = self._make_tree()
        self.stash.clear()
        if ordered.size == 0:
            return
        pm_leaves = self.position_map.as_array()
        overflow = self.tree.bulk_place_ordered(ordered, pm_leaves[ordered])
        if overflow.size:
            self.stash.append_rows(overflow, pm_leaves[overflow])
