"""A single ORAM tree node (bucket) holding up to ``capacity`` real blocks.

Dummy blocks are not materialised: the server is always charged for the full
bucket capacity when a path is transferred, so only real occupancy needs to
be tracked in memory.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.memory.block import Block


class Bucket:
    """Fixed-capacity container of real blocks at one tree node."""

    __slots__ = ("capacity", "_blocks")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("bucket capacity must be >= 1")
        self.capacity = capacity
        self._blocks: list[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    @property
    def blocks(self) -> tuple[Block, ...]:
        """Immutable view of the real blocks currently stored."""
        return tuple(self._blocks)

    @property
    def free_slots(self) -> int:
        """Number of slots currently holding dummy data."""
        return self.capacity - len(self._blocks)

    def has_space(self) -> bool:
        """Whether at least one more real block fits."""
        return len(self._blocks) < self.capacity

    def add(self, block: Block) -> None:
        """Insert a real block; raises if the bucket is full."""
        if not self.has_space():
            raise ValueError("bucket is full")
        self._blocks.append(block)

    def extend(self, blocks: Iterable[Block]) -> None:
        """Insert several blocks, respecting capacity."""
        for block in blocks:
            self.add(block)

    def pop_all(self) -> list[Block]:
        """Remove and return every real block (used by path reads)."""
        blocks = self._blocks
        self._blocks = []
        return blocks

    def remove(self, block_id: int) -> Optional[Block]:
        """Remove and return the block with ``block_id`` if present."""
        for index, block in enumerate(self._blocks):
            if block.block_id == block_id:
                return self._blocks.pop(index)
        return None

    def find(self, block_id: int) -> Optional[Block]:
        """Return the block with ``block_id`` without removing it."""
        for block in self._blocks:
            if block.block_id == block_id:
                return block
        return None
