"""Asyncio serving front-end over a :class:`ShardedRunner`.

A deployed ORAM-protected embedding service does not see one long trace; it
sees concurrent lookup requests arriving at arbitrary times.  This module
adds the online half: an :class:`AsyncShardedService` accepts
``await service.submit([ids...])`` calls from any number of concurrent
tasks, routes each request's ids to their shards, and **coalesces** whatever
is waiting for the same backend into one batched command so the engines run
their vectorized multi-access path instead of one round-trip per request.

Dispatch is one dedicated dispatcher task per backend unit — per worker
process when the runner is process-parallel, per shard engine when it is
sequential — so each engine only ever executes one batch at a time (engines
are not thread-safe) while distinct units serve concurrently.  A dispatcher
drains its queue each cycle: everything that queued while the previous batch
was executing forms the next batch, a natural feedback loop that grows
batches exactly when the system is saturated.

Latency is recorded per request (submit to completion, including queueing)
and summarized as p50/p95/p99 — the numbers a service operator actually
provisions against, as opposed to the modeled device time
(``simulated_time_s``) the offline experiments report.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.laoram import LookaheadClientMixin
from repro.exceptions import ConfigurationError
from repro.experiments.sharded import ShardedRunner


@dataclass(frozen=True)
class LatencyStats:
    """Request-latency summary of a serving run (milliseconds)."""

    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_batch_size: float

    def as_dict(self) -> dict:
        """Plain-dict form for JSON emission."""
        return {
            "count": self.count,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "mean_batch_size": self.mean_batch_size,
        }


def summarize_latencies(
    latencies_s: Sequence[float], batch_sizes: Sequence[int] = ()
) -> LatencyStats:
    """Percentile summary of per-request latencies (seconds in, ms out)."""
    if not latencies_s:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ms = np.asarray(latencies_s, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(ms, [50.0, 95.0, 99.0])
    mean_batch = float(np.mean(batch_sizes)) if len(batch_sizes) else 0.0
    return LatencyStats(
        count=int(ms.size),
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        mean_ms=float(ms.mean()),
        max_ms=float(ms.max()),
        mean_batch_size=mean_batch,
    )


class AsyncShardedService:
    """Coalescing asyncio front-end for sharded oblivious lookups.

    Wraps a :class:`~repro.experiments.sharded.ShardedRunner` (either
    backend).  Use as an async context manager::

        async with AsyncShardedService(runner) as service:
            await service.submit([3, 17, 42])
            print(service.latency_summary())

    ``max_batch_ids`` caps how many ids one dispatch cycle coalesces so a
    burst cannot build an unboundedly large batch (tail latency of the
    requests trapped behind it).  The service does not own the runner: the
    caller decides when to :meth:`ShardedRunner.close` it.
    """

    def __init__(self, runner: ShardedRunner, max_batch_ids: int = 4096):
        if max_batch_ids < 1:
            raise ConfigurationError("max_batch_ids must be >= 1")
        self.runner = runner
        self.max_batch_ids = max_batch_ids
        if runner.is_parallel:
            self._num_units = runner.executor.num_workers
        else:
            self._num_units = runner.num_shards
        self._queues: list[asyncio.Queue] = []
        self._dispatchers: list[asyncio.Task] = []
        self._started = False
        self._latencies_s: list[float] = []
        self._batch_sizes: list[int] = []
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start one dispatcher task per backend unit."""
        if self._started:
            return
        self._queues = [asyncio.Queue() for _ in range(self._num_units)]
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(unit))
            for unit in range(self._num_units)
        ]
        self._started = True

    async def close(self) -> None:
        """Stop dispatchers after letting queued work drain."""
        if not self._started:
            return
        for q in self._queues:
            await q.join()
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._started = False

    async def __aenter__(self) -> "AsyncShardedService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _unit_of(self, shard_id: int) -> int:
        if self.runner.is_parallel:
            return self.runner.executor.worker_of(shard_id)
        return shard_id

    async def submit(self, block_ids: Sequence[int]) -> float:
        """Obliviously access ``block_ids``; returns the request latency (s).

        The ids are split by shard, grouped by backend unit, and each group
        queued to that unit's dispatcher, where it coalesces with whatever
        other requests are in flight.  Completes when every shard touched by
        the request has served its part.
        """
        if not self._started:
            await self.start()
        if self._failure is not None:
            raise self._failure
        start = time.perf_counter()
        routed = self.runner.planner.split_ids(block_ids)
        by_unit: dict[int, dict[int, list[int]]] = {}
        for shard_id, local_ids in routed.items():
            by_unit.setdefault(self._unit_of(shard_id), {})[shard_id] = local_ids
        futures = []
        loop = asyncio.get_running_loop()
        for unit, unit_routed in by_unit.items():
            future: asyncio.Future = loop.create_future()
            self._queues[unit].put_nowait((unit_routed, future))
            futures.append(future)
        await asyncio.gather(*futures)
        latency = time.perf_counter() - start
        self._latencies_s.append(latency)
        return latency

    async def _dispatch_loop(self, unit: int) -> None:
        """Serve one backend unit: coalesce queued requests, execute, resolve."""
        q = self._queues[unit]
        while True:
            entries = [await q.get()]
            total = sum(len(ids) for ids in entries[0][0].values())
            # Everything that queued while the previous batch executed is
            # coalesced into this one, up to the id cap.
            while total < self.max_batch_ids and not q.empty():
                entry = q.get_nowait()
                entries.append(entry)
                total += sum(len(ids) for ids in entry[0].values())
            merged: dict[int, list[int]] = {}
            for unit_routed, _future in entries:
                for shard_id, local_ids in unit_routed.items():
                    merged.setdefault(shard_id, []).extend(local_ids)
            try:
                await asyncio.to_thread(self._serve_batch, unit, merged)
            except Exception as exc:
                self._failure = exc
                for _routed, future in entries:
                    if not future.done():
                        future.set_exception(exc)
                for _ in entries:
                    q.task_done()
                return
            self._batch_sizes.append(total)
            for _routed, future in entries:
                if not future.done():
                    future.set_result(None)
            for _ in entries:
                q.task_done()

    def _serve_batch(self, unit: int, merged: dict[int, list[int]]) -> None:
        """Execute one coalesced batch on the backend (worker thread).

        Sequential fallback: engines with a lookahead pipeline or a
        configured batch protocol keep their batched entry point; plain
        tree engines run the batch through the fused ``run_trace`` driver.
        """
        if self.runner.is_parallel:
            self.runner.executor.access_on_worker(unit, merged)
        else:
            for shard_id, local_ids in merged.items():
                engine = self.runner.engines[shard_id]
                if isinstance(engine, LookaheadClientMixin) or engine.batch_size:
                    engine.access_many(local_ids)
                else:
                    engine.run_trace(local_ids)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def latency_summary(self) -> LatencyStats:
        """p50/p95/p99 of every completed request so far."""
        return summarize_latencies(self._latencies_s, self._batch_sizes)

    @property
    def requests_served(self) -> int:
        """Number of completed ``submit`` calls."""
        return len(self._latencies_s)
