"""Online serving front-end for sharded oblivious lookups.

:mod:`repro.serving.service` — the coalescing asyncio service;
:mod:`repro.serving.workload` — bursty / open-loop Zipf request drivers.
"""

from repro.serving.service import (
    AsyncShardedService,
    LatencyStats,
    summarize_latencies,
)
from repro.serving.workload import WorkloadReport, run_zipf_workload

__all__ = [
    "AsyncShardedService",
    "LatencyStats",
    "WorkloadReport",
    "run_zipf_workload",
    "summarize_latencies",
]
