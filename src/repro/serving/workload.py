"""Synthetic serving workloads: bursty / open-loop Zipf request streams.

The offline experiments replay one long trace; a serving benchmark needs
*arrival times*.  This module drives an
:class:`~repro.serving.service.AsyncShardedService` with requests whose ids
follow the repo's standard Zipf popularity profile
(:class:`~repro.datasets.zipf.ZipfTraceGenerator`) and whose arrivals follow
one of two processes:

* ``"bursty"`` — requests arrive in bursts of ``burst_size`` with
  exponential (Poisson) gaps between bursts: the hardest pattern for a
  coalescing dispatcher, since a burst lands together and must be batched
  well to avoid queueing collapse;
* ``"open"`` — independent Poisson arrivals at ``rate_rps``: the classic
  open-loop load model where latency includes genuine queueing delay.

Both are open-loop: arrivals do not wait for completions, so the reported
percentiles honestly include queueing (a closed loop would self-throttle
and hide it).
"""

from __future__ import annotations

from dataclasses import dataclass

import asyncio


from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError
from repro.serving.service import AsyncShardedService, LatencyStats
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of one serving workload run."""

    arrival: str
    num_requests: int
    request_size: int
    duration_s: float
    throughput_rps: float
    throughput_ids_per_s: float
    latency: LatencyStats

    def as_dict(self) -> dict:
        """Plain-dict form for JSON emission."""
        return {
            "arrival": self.arrival,
            "num_requests": self.num_requests,
            "request_size": self.request_size,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "throughput_ids_per_s": self.throughput_ids_per_s,
            "latency": self.latency.as_dict(),
        }


async def run_zipf_workload(
    service: AsyncShardedService,
    num_requests: int,
    request_size: int = 16,
    arrival: str = "bursty",
    burst_size: int = 8,
    rate_rps: float = 200.0,
    zipf_exponent: float = 1.1,
    seed: int = 0,
) -> WorkloadReport:
    """Drive ``service`` with a Zipf-popularity request stream; report latency.

    Request ids are drawn once up front (deterministic for ``seed``), then
    submitted according to the arrival process.  ``rate_rps`` is the mean
    *request* rate; in bursty mode bursts of ``burst_size`` arrive at rate
    ``rate_rps / burst_size`` so the offered load matches the open-loop
    mode at equal ``rate_rps``.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if request_size < 1:
        raise ConfigurationError("request_size must be >= 1")
    if arrival not in ("bursty", "open"):
        raise ConfigurationError("arrival must be 'bursty' or 'open'")
    if rate_rps <= 0:
        raise ConfigurationError("rate_rps must be positive")
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")

    num_blocks = service.runner.num_blocks
    ids = (
        ZipfTraceGenerator(num_blocks, exponent=zipf_exponent, seed=seed)
        .generate(num_requests * request_size)
        .addresses.reshape(num_requests, request_size)
    )
    gap_rng = make_rng(seed + 1)

    await service.start()
    loop = asyncio.get_running_loop()
    started = loop.time()
    tasks: list[asyncio.Task] = []
    if arrival == "bursty":
        burst_rate = rate_rps / burst_size
        for first in range(0, num_requests, burst_size):
            for request in range(first, min(first + burst_size, num_requests)):
                tasks.append(
                    asyncio.create_task(service.submit(ids[request].tolist()))
                )
            await asyncio.sleep(float(gap_rng.exponential(1.0 / burst_rate)))
    else:
        for request in range(num_requests):
            tasks.append(asyncio.create_task(service.submit(ids[request].tolist())))
            await asyncio.sleep(float(gap_rng.exponential(1.0 / rate_rps)))
    await asyncio.gather(*tasks)
    duration = loop.time() - started
    return WorkloadReport(
        arrival=arrival,
        num_requests=num_requests,
        request_size=request_size,
        duration_s=duration,
        throughput_rps=num_requests / duration if duration > 0 else 0.0,
        throughput_ids_per_s=(
            num_requests * request_size / duration if duration > 0 else 0.0
        ),
        latency=service.latency_summary(),
    )
