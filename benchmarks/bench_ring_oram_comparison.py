"""Section VIII-G benchmark: PathORAM vs RingORAM vs LAORAM.

Paper discussion: RingORAM reduces online bandwidth (one block per bucket)
and is orthogonal to LAORAM; LAORAM's superblocks still deliver the larger
end-to-end improvement on embedding-training traces.
"""

from repro.experiments.ring_comparison import run_ring_comparison

from .conftest import BENCH_SCALE_SMALL, record


def test_ring_oram_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_ring_comparison(BENCH_SCALE_SMALL, laoram_label="Fat/S4", seed=6),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        dataset=result.dataset,
        pathoram_bytes_per_access=round(result.bytes_per_access("PathORAM")),
        ringoram_bytes_per_access=round(result.bytes_per_access("RingORAM")),
        laoram_bytes_per_access=round(result.bytes_per_access("Fat/S4")),
        ringoram_speedup=round(result.speedup_over_pathoram("RingORAM"), 2),
        laoram_speedup=round(result.speedup_over_pathoram("Fat/S4"), 2),
    )
    assert result.bytes_per_access("RingORAM") < result.bytes_per_access("PathORAM")
    assert result.speedup_over_pathoram("Fat/S4") > 1.5
