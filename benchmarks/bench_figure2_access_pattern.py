"""Figure 2 benchmark: Kaggle embedding-access pattern of 10k samples.

Paper claim: accesses look random over ~10.1M indices apart from a thin,
heavily repeated band at low indices.  The benchmark regenerates the data
and reports the hot-band fraction and unique-access fraction.
"""

from repro.experiments.figure2 import run_figure2

from .conftest import record


def test_figure2_access_pattern(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure2(num_accesses=10_000, seed=0), rounds=1, iterations=1
    )
    record(
        benchmark,
        accesses=len(result.indices),
        unique_fraction=round(result.unique_fraction, 3),
        hot_band_fraction=round(result.hot_band_fraction, 3),
        looks_random_with_hot_band=result.looks_random_with_hot_band,
    )
    assert result.looks_random_with_hot_band
