"""Per-family throughput benchmark: array twins vs the seed per-object engines.

Every tree-ORAM family ships a vectorized array-backed twin (PathORAM ->
ArrayPathORAM, LAORAM -> FastLAORAMClient, RingORAM -> ArrayRingORAM,
PrORAM -> ArrayPrORAM).  For each requested family this benchmark runs the
same Zipf trace through both engines and checks:

* the two engines produce **identical** ``TrafficSnapshot`` counters — each
  twin is decision-for-decision the same protocol; and
* the vectorized engine sustains the family's required speedup over the seed
  engine.  The gates reflect where vectorization actually pays: LAORAM's
  batched superblock bins reach 3-12x (>= 5x gated at 2^20, PR 1's gate),
  while the single-access protocols (pathoram/ringoram/proram) are bounded
  by per-access numpy dispatch at ~1.2-2x, so their ratio gates are
  non-regression bounds (see ROADMAP: batching write-back planning across
  paths is the next order-of-magnitude lever).

Modes::

    --smoke           small instance: counter equivalence only (CI test job)
    --mode ratio      default; reference-vs-fast ratio gate (2^17 blocks by
                      default — the largest size where the per-object
                      baseline is still tractable for every family)
    --mode absolute   fast engines only at DLRM scale (2^20 blocks by
                      default; the paper's tables hold 8M-16M rows) gated on
                      absolute accesses/second, since the per-object
                      baseline is too slow to compare at this size
    --mode batched    the cross-path batched write-back planner (2^20 blocks
                      by default): under PathORAM's batched access protocol
                      the planner must beat the sequential per-path
                      write-back by ``--min-batched-speedup``, and flipping
                      it off (``batched_write_back=False``) must leave
                      counters bit-identical — for PathORAM batches and
                      LAORAM bins alike
    --mode recursion  dense vs recursive position map over the same trace
                      (2^20 blocks by default; ``--smoke`` drops to 2^18):
                      main-tree decisions must be bit-identical (core
                      counters and final leaf assignment), the recursion's
                      own traffic lands in the ``posmap_*`` counters, and
                      the per-family lookahead amortization (posmap paths
                      per logical access) is reported alongside the honest
                      client-memory reduction; ``--max-recursion-slowdown``
                      optionally gates the wall-clock cost (CI smoke does)
    --mode parallel   wall-clock scaling of the process-parallel
                      ``ShardedRunner``: the same trace is executed
                      sequentially and at each ``--workers`` count over a
                      fixed ``--num-shards`` partition; merged snapshots
                      must be bit-identical across every backend, and an
                      asyncio serving run reports p50/p95/p99 request
                      latency.  Wall-clock speedup needs physical cores, so
                      the ``--min-parallel-speedup`` gate only applies when
                      passed explicitly (CI does; a laptop sweep records
                      honest numbers ungated) — every run records
                      ``host_cpus`` so readers can judge the curve

``--emit-json PATH`` **appends** every measured run (rates, speedups, gate
outcomes) to a ``runs`` list in the JSON document, committed as
``BENCH_engine_throughput.json`` so perf history accumulates a trajectory
across machines and commits instead of overwriting itself.  Legacy
single-document files are wrapped into the list form on first append.

Exits non-zero when a check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import gc
import json
import os
import platform
import subprocess
import sys
import time

import numpy as np

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.experiments.configs import build_engine
from repro.experiments.sharded import ShardedRunner
from repro.oram.config import ORAMConfig
from repro.serving import AsyncShardedService, run_zipf_workload

#: family -> (configuration label, required fast/seed speedup in ratio mode).
#: Measured locally at the 2^17 ratio default with the fused trace drivers:
#: pathoram ~2.3-3.3x, ringoram ~2.4-4x, proram ~2-4.7x, laoram ~3x
#: (6-12x at 2^20).  The gates lock in the fused-hot-path speedups with
#: margin for allocator/GC noise on shared runners (run ratio mode with
#: ``--trials 2`` so best-of-2 filters the noise, as CI does); equivalence
#: is always gated.
FAMILY_GATES: dict[str, tuple[str, float]] = {
    "pathoram": ("PathORAM", 2.0),
    "laoram": ("Normal/S4", 2.0),
    "ringoram": ("RingORAM", 2.5),
    "proram": ("PrORAM-dynamic/S2", 2.0),
}


def run_engine(
    label: str,
    oram_config: ORAMConfig,
    addresses,
    fast: bool,
    batched: bool = False,
    batch_size: int = 64,
    batched_write_back: bool | None = None,
):
    """Run one engine over the trace; returns (wall seconds, snapshot)."""
    # Collect the previous engine's object graph up front so one engine's
    # garbage does not inflate the next engine's GC pauses mid-measurement.
    gc.collect()
    engine = build_engine(
        label, oram_config, fast=fast, batched=batched, batch_size=batch_size
    )
    if batched_write_back is not None:
        engine.batched_write_back = batched_write_back
    start = time.perf_counter()
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(addresses)
    elif engine.batch_size:
        engine.access_many(addresses)
    else:
        engine.run_trace(addresses)
    elapsed = time.perf_counter() - start
    assert engine.total_real_blocks() == oram_config.num_blocks, (
        "block conservation violated"
    )
    return elapsed, engine.statistics


#: profile-mode phase -> engine/counter attributes wrapped with a timer.
#: Each name is wrapped where it exists; outermost-call accounting keeps a
#: phase from double-counting when one wrapped hook calls another (e.g.
#: ``_write_back`` -> ``_commit_write_back``).
PROFILE_PHASES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("posmap_lookup", ("position_map.get",)),
    (
        "path_read",
        ("_read_path_into_stash", "_online_read", "_read_paths_into_stash"),
    ),
    ("serve_remap", ("_serve", "_update_leaf")),
    ("write_back", ("_write_back", "_commit_write_back", "_write_back_many")),
    (
        "counters",
        (
            "counter.record_logical_access",
            "counter.record_path_read",
            "counter.record_path_write",
            "counter.record_dummy_read",
            "counter.observe_stash",
            "timing.charge_path_transfer",
            "timing.charge_client_overhead",
        ),
    ),
)


def _instrument_phases(engine) -> dict[str, float]:
    """Wrap the engine's per-access protocol hooks with phase timers.

    Returns the live ``phase -> seconds`` dict; wrappers accumulate into it
    as the engine runs.  Only the outermost wrapped call of a phase is
    counted, so nested hooks of the same phase don't double-bill.
    """
    phases: dict[str, float] = {}
    for phase, names in PROFILE_PHASES:
        phases[phase] = 0.0
        depth = [0]
        for name in names:
            owner = engine
            attr = name
            if "." in name:
                prefix, attr = name.split(".", 1)
                owner = getattr(engine, prefix, None)
            func = getattr(owner, attr, None)
            if func is None:
                continue

            def wrapper(*a, _func=func, _phase=phase, _depth=depth, **k):
                if _depth[0]:
                    return _func(*a, **k)
                _depth[0] = 1
                t0 = time.perf_counter()
                try:
                    return _func(*a, **k)
                finally:
                    phases[_phase] += time.perf_counter() - t0
                    _depth[0] = 0

            setattr(owner, attr, wrapper)
    return phases


def bench_profile(family, label, oram_config, trace, args):
    """Per-phase wall-time breakdown of one family's per-access protocol.

    The fast engine runs the trace through its *per-access* loop with the
    protocol hooks wrapped in timers — the fused driver inlines these
    phases, so the breakdown shows where a non-fused access spends its
    time.  The fused ``run_trace`` rate over the same trace is measured
    unwrapped for contrast.  Never gates: the entry is diagnostic.
    """
    gc.collect()
    engine = build_engine(label, oram_config, fast=True)
    addresses = trace.addresses
    phases = _instrument_phases(engine)
    start = time.perf_counter()
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(addresses)
    else:
        for block_id in addresses.tolist():
            engine.access(block_id)
    total = time.perf_counter() - start
    fused_s, _snapshot = run_engine(label, oram_config, addresses, fast=True)
    accounted = sum(phases.values())
    num_accesses = len(addresses)
    print(f"[{family:9s}] per-access {total:7.2f}s "
          f"({num_accesses / total:9.0f} acc/s) | "
          f"fused {fused_s:6.2f}s ({num_accesses / fused_s:9.0f} acc/s)")
    for phase, seconds in phases.items():
        print(f"    {phase:14s} {seconds:7.2f}s  {100 * seconds / total:5.1f}%")
    print(f"    {'other':14s} {total - accounted:7.2f}s  "
          f"{100 * (total - accounted) / total:5.1f}%")
    return {
        "family": family,
        "mode": "profile",
        "total_s": total,
        "per_access_rate": num_accesses / total,
        "fused_rate": num_accesses / fused_s,
        "phases_s": {phase: seconds for phase, seconds in phases.items()},
        "other_s": total - accounted,
        "passed": True,
    }


def bench_batched(family, label, oram_config, trace, args):
    """One family's batched-mode measurements and gates.

    PathORAM exercises the batched access protocol: batched vs sequential
    (per-path) write-back under the same chunked protocol, gated on
    ``--min-batched-speedup`` plus counter bit-identity, with the
    per-access fast engine's rate reported for context.  LAORAM's
    superblock bins already batch, so it is gated only on planner
    bit-identity (batched vs per-path write-back) with the throughput
    delta reported.  Other families have no batched protocol.

    Every configuration is measured ``--trials`` times and rates are
    best-of: the engines are deterministic, so any run-to-run spread is
    allocator/GC/runner noise and the fastest run is the least polluted.
    """
    num_accesses = len(trace.addresses)

    def best_rate(**kwargs):
        seconds, snapshot = min(
            (run_engine(label, oram_config, trace.addresses, **kwargs)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        return num_accesses / seconds, snapshot

    if family == "pathoram":
        per_rate, _ = best_rate(fast=True)
        bat_rate, bat_snapshot = best_rate(
            fast=True, batched=True, batch_size=args.batch_size
        )
        seq_rate, seq_snapshot = best_rate(
            fast=True,
            batched=True,
            batch_size=args.batch_size,
            batched_write_back=False,
        )
        speedup = bat_rate / seq_rate
        print(
            f"[{family:9s}] per-access: {per_rate:9.0f} acc/s | "
            f"batched-WB(B={args.batch_size}): {bat_rate:9.0f} acc/s | "
            f"per-path-WB: {seq_rate:9.0f} acc/s | {speedup:5.2f}x"
        )
        passed = True
        if bat_snapshot != seq_snapshot:
            print(
                f"[{family:9s}] FAIL: batched write-back diverges from "
                "sequential write-back"
            )
            print(f"  batched:    {bat_snapshot}")
            print(f"  sequential: {seq_snapshot}")
            passed = False
        if speedup < args.min_batched_speedup:
            print(
                f"[{family:9s}] FAIL: batched write-back speedup "
                f"{speedup:.2f}x below required {args.min_batched_speedup}x"
            )
            passed = False
        return {
            "family": family,
            "mode": "batched",
            "batch_size": args.batch_size,
            "trials": args.trials,
            "per_access_rate": per_rate,
            "batched_wb_rate": bat_rate,
            "sequential_wb_rate": seq_rate,
            "write_back_speedup": speedup,
            "min_batched_speedup": args.min_batched_speedup,
            "write_back_bit_identical": bat_snapshot == seq_snapshot,
            "snapshot": dataclasses.asdict(bat_snapshot),
            "passed": passed,
        }
    if family == "laoram":
        # With lookahead initial placement LAORAM's superblock bins read 0-1
        # distinct paths, below the engine's BATCHED_WB_MIN_PATHS fallback
        # threshold, so both arms execute the per-path route and the ratio
        # is ~1.0 modulo runner noise; the gate is a non-regression floor
        # (the planner must never be *engaged* where it loses).
        bat_rate, bat_snapshot = best_rate(fast=True)
        seq_rate, seq_snapshot = best_rate(fast=True, batched_write_back=False)
        delta = bat_rate / seq_rate
        print(
            f"[{family:9s}] batched-WB: {bat_rate:9.0f} acc/s | "
            f"per-path-WB: {seq_rate:9.0f} acc/s | {delta:5.2f}x "
            f"(floor {args.min_laoram_wb_speedup}x)"
        )
        passed = True
        if bat_snapshot != seq_snapshot:
            print(
                f"[{family:9s}] FAIL: batched write-back diverges from "
                "sequential write-back"
            )
            print(f"  batched:    {bat_snapshot}")
            print(f"  sequential: {seq_snapshot}")
            passed = False
        if delta < args.min_laoram_wb_speedup:
            print(
                f"[{family:9s}] FAIL: batched-WB throughput {delta:.2f}x of "
                f"per-path below the {args.min_laoram_wb_speedup}x "
                "non-regression floor"
            )
            passed = False
        return {
            "family": family,
            "mode": "batched",
            "trials": args.trials,
            "batched_wb_rate": bat_rate,
            "sequential_wb_rate": seq_rate,
            "write_back_speedup": delta,
            "min_laoram_wb_speedup": args.min_laoram_wb_speedup,
            "write_back_bit_identical": bat_snapshot == seq_snapshot,
            "snapshot": dataclasses.asdict(bat_snapshot),
            "passed": passed,
        }
    print(f"[{family:9s}] skipped: no batched access protocol")
    return None


#: Snapshot fields that describe the *main tree* only — the recursion gate
#: requires these to be bit-identical between dense and recursive runs
#: (the posmap_* fields necessarily differ: that is the recursion's cost).
CORE_SNAPSHOT_FIELDS: tuple[str, ...] = (
    "logical_accesses",
    "path_reads",
    "path_writes",
    "dummy_reads",
    "buckets_read",
    "buckets_written",
    "bytes_read",
    "bytes_written",
    "stash_peak",
    "background_evictions",
)


def bench_recursion(family, label, oram_config, trace, args):
    """Dense vs recursive position map over the same trace, one family.

    Both engines replay the identical trace with the identical seed; the
    recursive map's constructor draws the initial labels with the exact
    RNG call the dense map makes, so every main-tree decision must be
    bit-identical — gated on the core counter fields and the final leaf
    assignment.  The recursion's own path traffic lands in the dedicated
    ``posmap_*`` counters; the headline number is posmap paths per
    logical access — the lookahead amortization LAORAM banks on (one
    charged walk remaps a whole superblock, so S4 pays ~1/4 of
    PathORAM's per-access walk rate) — next to the honest client-memory
    reduction the recursion buys.  Wall-clock slowdown (the recursive
    map also forfeits the fused trace drivers) is gated only when
    ``--max-recursion-slowdown`` is passed, as the CI smoke does.
    """
    num_accesses = len(trace.addresses)

    def measure(recursive):
        best_seconds, best_engine = None, None
        for _ in range(max(1, args.trials)):
            gc.collect()
            engine = build_engine(
                label,
                oram_config,
                fast=True,
                recursive_posmap=recursive,
                posmap_positions_per_block=args.posmap_positions_per_block,
                posmap_cutoff_bytes=args.posmap_cutoff_bytes,
            )
            start = time.perf_counter()
            engine.run_trace(trace.addresses)
            seconds = time.perf_counter() - start
            if best_seconds is None or seconds < best_seconds:
                best_seconds, best_engine = seconds, engine
        return best_seconds, best_engine

    dense_s, dense_engine = measure(False)
    dense_snapshot = dense_engine.statistics
    dense_leaves = dense_engine.position_map.as_array()
    dense_cmb = dense_engine.client_memory_bytes()
    del dense_engine
    rec_s, rec_engine = measure(True)
    rec_snapshot = rec_engine.statistics
    rec_leaves = rec_engine.position_map.as_array()
    rec_cmb = rec_engine.client_memory_bytes()
    posmap = rec_engine.position_map
    geometry = posmap.geometry()

    dense_rate = num_accesses / dense_s
    rec_rate = num_accesses / rec_s
    slowdown = rec_s / dense_s
    paths_per_access = rec_snapshot.posmap_paths_per_access
    posmap_bytes_per_access = (
        rec_snapshot.posmap_total_bytes / max(1, rec_snapshot.logical_accesses)
    )
    print(
        f"[{family:9s}] dense: {dense_s:7.2f}s {dense_rate:9.0f} acc/s | "
        f"recursive: {rec_s:7.2f}s {rec_rate:9.0f} acc/s | "
        f"{slowdown:5.2f}x slower"
    )
    print(
        f"[{family:9s}] levels={posmap.num_levels} "
        f"chi={args.posmap_positions_per_block} | "
        f"posmap paths/access {paths_per_access:.3f} | "
        f"posmap bytes/access {posmap_bytes_per_access:.0f} | "
        f"client mem {dense_cmb:,}B -> {rec_cmb:,}B"
    )

    passed = True
    leaves_identical = bool(np.array_equal(dense_leaves, rec_leaves))
    core_identical = all(
        getattr(dense_snapshot, name) == getattr(rec_snapshot, name)
        for name in CORE_SNAPSHOT_FIELDS
    )
    if not leaves_identical:
        print(
            f"[{family:9s}] FAIL: final leaf assignments diverge between "
            "dense and recursive maps"
        )
        passed = False
    if not core_identical:
        print(
            f"[{family:9s}] FAIL: main-tree counters diverge between dense "
            "and recursive maps"
        )
        print(f"  dense:     {dense_snapshot}")
        print(f"  recursive: {rec_snapshot}")
        passed = False
    if rec_snapshot.posmap_path_reads == 0:
        print(
            f"[{family:9s}] FAIL: recursive run recorded no posmap path "
            "reads (recursion traffic is not being charged)"
        )
        passed = False
    if dense_snapshot.posmap_path_reads != 0:
        print(
            f"[{family:9s}] FAIL: dense run recorded posmap path reads "
            "(the dense map must never charge the posmap category)"
        )
        passed = False
    if (
        args.max_recursion_slowdown is not None
        and slowdown > args.max_recursion_slowdown
    ):
        print(
            f"[{family:9s}] FAIL: recursive slowdown {slowdown:.2f}x above "
            f"the {args.max_recursion_slowdown}x bound"
        )
        passed = False

    return {
        "family": family,
        "mode": "recursion",
        "trials": args.trials,
        "positions_per_block": args.posmap_positions_per_block,
        "cutoff_bytes": args.posmap_cutoff_bytes,
        "num_levels": posmap.num_levels,
        "geometry": geometry,
        "dense_rate": dense_rate,
        "recursive_rate": rec_rate,
        "slowdown": slowdown,
        "max_recursion_slowdown": args.max_recursion_slowdown,
        "posmap_paths_per_access": paths_per_access,
        "posmap_bytes_per_access": posmap_bytes_per_access,
        "client_memory_dense_bytes": dense_cmb,
        "client_memory_recursive_bytes": rec_cmb,
        "leaves_bit_identical": leaves_identical,
        "core_counters_bit_identical": core_identical,
        "snapshot": dataclasses.asdict(rec_snapshot),
        "passed": passed,
    }


def bench_parallel(family, trace, args):
    """Wall-clock scaling of the process-parallel ShardedRunner for one family.

    The same trace runs through the sequential backend and through the
    process backend at each ``--workers`` count over a fixed
    ``--num-shards`` partition (fixed partition = fixed per-shard work, so
    the curve measures parallelism, not a different problem).  Wall-clock
    is best-of ``--trials`` per configuration with engine construction and
    worker startup excluded; the modeled ``simulated_time_s`` rides along
    so readers can see where real scheduling diverges from the device
    model.  Merged snapshots must be bit-identical across every backend.
    Afterwards a bursty Zipf serving workload runs against the widest
    worker count and reports request-latency percentiles.
    """
    addresses = trace.addresses
    num_accesses = len(addresses)
    num_shards = args.num_shards
    worker_counts = sorted({w for w in args.workers if 1 <= w <= num_shards})
    if not worker_counts:
        print(f"[{family:9s}] skipped: no --workers value fits {num_shards} shards")
        return None
    host_cpus = os.cpu_count() or 1

    def runner_kwargs(num_workers):
        return dict(
            num_blocks=args.num_blocks_resolved,
            num_shards=num_shards,
            family=family,
            seed=args.seed,
            num_workers=num_workers,
        )

    def best_run(num_workers):
        best_seconds, snapshot, simulated = None, None, None
        for _ in range(max(1, args.trials)):
            gc.collect()
            runner = ShardedRunner(**runner_kwargs(num_workers))
            try:
                start = time.perf_counter()
                snap = runner.run_trace(addresses)
                seconds = time.perf_counter() - start
                if best_seconds is None or seconds < best_seconds:
                    best_seconds, snapshot = seconds, snap
                    simulated = runner.simulated_time_parallel_s
            finally:
                runner.close()
        return best_seconds, snapshot, simulated

    seq_seconds, seq_snapshot, seq_simulated = best_run(None)
    seq_rate = num_accesses / seq_seconds
    print(
        f"[{family:9s}] sequential: {seq_seconds:7.2f}s {seq_rate:9.0f} acc/s "
        f"(simulated {seq_simulated:.3f}s, host_cpus={host_cpus})"
    )

    passed = True
    scaling = []
    rate_at: dict[int, float] = {}
    for workers in worker_counts:
        seconds, snapshot, simulated = best_run(workers)
        rate = num_accesses / seconds
        rate_at[workers] = rate
        identical = snapshot == seq_snapshot
        speedup_vs_one = rate / rate_at[worker_counts[0]]
        print(
            f"[{family:9s}] workers={workers}: {seconds:7.2f}s {rate:9.0f} acc/s "
            f"| {rate / seq_rate:5.2f}x vs sequential, "
            f"{speedup_vs_one:5.2f}x vs w={worker_counts[0]} "
            f"| identical={identical}"
        )
        if not identical:
            print(
                f"[{family:9s}] FAIL: merged snapshot at {workers} workers "
                "diverges from sequential"
            )
            print(f"  sequential: {seq_snapshot}")
            print(f"  parallel:   {snapshot}")
            passed = False
        scaling.append(
            {
                "workers": workers,
                "wall_seconds": seconds,
                "rate": rate,
                "speedup_vs_sequential": rate / seq_rate,
                "speedup_vs_one_worker": speedup_vs_one,
                "simulated_time_s": simulated,
                "bit_identical": identical,
            }
        )

    gate_speedup = None
    if args.min_parallel_speedup is not None:
        if args.gate_workers in rate_at and 1 in rate_at:
            gate_speedup = rate_at[args.gate_workers] / rate_at[1]
            if gate_speedup < args.min_parallel_speedup:
                print(
                    f"[{family:9s}] FAIL: {gate_speedup:.2f}x wall-clock at "
                    f"{args.gate_workers} workers below required "
                    f"{args.min_parallel_speedup}x"
                )
                passed = False
        else:
            print(
                f"[{family:9s}] FAIL: speedup gate needs both 1 and "
                f"{args.gate_workers} in --workers"
            )
            passed = False

    serving = None
    if not args.skip_serving:
        serving_workers = worker_counts[-1]
        runner = ShardedRunner(**runner_kwargs(serving_workers))
        try:
            async def _serve():
                async with AsyncShardedService(runner) as service:
                    return await run_zipf_workload(
                        service,
                        num_requests=args.serving_requests,
                        request_size=args.serving_request_size,
                        arrival="bursty",
                        burst_size=16,
                        rate_rps=args.serving_rate_rps,
                        zipf_exponent=args.exponent,
                        seed=args.seed + 11,
                    )

            report = asyncio.run(_serve())
        finally:
            runner.close()
        latency = report.latency
        print(
            f"[{family:9s}] serving(w={serving_workers}): "
            f"{report.throughput_rps:7.0f} req/s | p50 {latency.p50_ms:6.2f}ms "
            f"p95 {latency.p95_ms:6.2f}ms p99 {latency.p99_ms:6.2f}ms "
            f"(mean batch {latency.mean_batch_size:.1f})"
        )
        serving = {"workers": serving_workers, **report.as_dict()}

    return {
        "family": family,
        "mode": "parallel",
        "trials": args.trials,
        "num_shards": num_shards,
        "host_cpus": host_cpus,
        "sequential_wall_seconds": seq_seconds,
        "sequential_rate": seq_rate,
        "simulated_time_s": seq_simulated,
        "scaling": scaling,
        "gate_workers": args.gate_workers,
        "gate_speedup": gate_speedup,
        "min_parallel_speedup": args.min_parallel_speedup,
        "serving": serving,
        "passed": passed,
    }


def _provenance() -> dict:
    """Commit/toolchain stamp so trajectory entries are attributable."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance: check counter equivalence only (CI gate)",
    )
    parser.add_argument(
        "--mode",
        choices=("ratio", "absolute", "batched", "recursion", "parallel", "profile"),
        default="ratio",
        help="ratio: reference-vs-fast speedup gate; absolute: fast engines "
        "only, gated on accesses/second; batched: batched-access protocol "
        "vs per-access, plus batched-vs-sequential write-back equivalence; "
        "recursion: dense vs recursive position map, gated on main-tree "
        "bit-identity with the lookahead amortization reported; "
        "parallel: wall-clock scaling of the process-parallel ShardedRunner "
        "plus serving latency percentiles; profile: ungated per-phase "
        "wall-time breakdown of the per-access protocol vs the fused rate",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        choices=sorted(FAMILY_GATES),
        default=None,
        help="engine families to benchmark (default: all; parallel mode "
        "defaults to laoram alone because each family's sweep runs the "
        "trace once per worker count)",
    )
    parser.add_argument("--num-blocks", type=int, default=None)
    parser.add_argument("--num-accesses", type=int, default=None)
    parser.add_argument("--block-size-bytes", type=int, default=64)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="override the per-family fast/seed throughput gates (ratio mode)",
    )
    parser.add_argument(
        "--min-rate",
        type=float,
        default=2_000.0,
        help="required fast-engine accesses/second (absolute mode)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="accesses per chunk for the batched protocol (batched mode)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=1.1,
        help="required batched-vs-per-path write-back throughput ratio "
        "(batched mode; measured 1.2-1.3x at 2^20 on quiet machines, gated "
        "with margin for shared runners like the other ratio gates)",
    )
    parser.add_argument(
        "--min-laoram-wb-speedup",
        type=float,
        default=0.9,
        help="non-regression floor for LAORAM batched-vs-per-path write-back "
        "throughput (batched mode); the engine's BATCHED_WB_MIN_PATHS "
        "fallback keeps the planner out of the sub-break-even bin sizes, so "
        "the ratio is ~1.0 and the floor only allows for runner noise",
    )
    parser.add_argument(
        "--posmap-positions-per-block",
        type=int,
        default=64,
        help="leaf labels packed per recursion block (recursion mode)",
    )
    parser.add_argument(
        "--posmap-cutoff-bytes",
        type=int,
        default=1 << 16,
        help="client-memory budget the recursion shrinks the top-level "
        "dense map under (recursion mode)",
    )
    parser.add_argument(
        "--max-recursion-slowdown",
        type=float,
        default=None,
        help="gate the recursive/dense wall-clock slowdown (recursion "
        "mode); omit to record the cost ungated — the recursive map "
        "forfeits the fused drivers, so CI smoke passes an explicit bound "
        "instead of hard-coding one for every machine",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=8,
        help="fixed shard count for the parallel-mode partition (worker "
        "counts sweep within it, so per-shard work stays constant)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="worker-process counts to sweep in parallel mode (values above "
        "--num-shards are dropped: workers own whole shards)",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        help="required wall-clock speedup at --gate-workers workers vs 1 "
        "worker (parallel mode); omit to record the curve ungated — the "
        "gate needs physical cores, so only CI (4-vCPU runners) passes it",
    )
    parser.add_argument(
        "--gate-workers",
        type=int,
        default=4,
        help="worker count the --min-parallel-speedup gate applies to",
    )
    parser.add_argument(
        "--skip-serving",
        action="store_true",
        help="skip the serving-latency section of parallel mode",
    )
    parser.add_argument(
        "--serving-requests",
        type=int,
        default=300,
        help="requests in the parallel-mode serving workload",
    )
    parser.add_argument(
        "--serving-request-size",
        type=int,
        default=16,
        help="block ids per serving request",
    )
    parser.add_argument(
        "--serving-rate-rps",
        type=float,
        default=2000.0,
        help="offered request rate of the serving workload",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="measurement repetitions per configuration; rates are best-of "
        "(engines are deterministic, so spread is runner noise) — raise "
        "this where a ratio gate is tight",
    )
    parser.add_argument(
        "--emit-json",
        type=str,
        default=None,
        metavar="PATH",
        help="append measured rates and gate outcomes to the 'runs' list of "
        "the JSON document at PATH (created, or legacy single-run files "
        "wrapped, as needed)",
    )
    args = parser.parse_args(argv)
    if args.families is None:
        if args.mode == "parallel":
            args.families = ["laoram"]
        elif args.mode == "recursion":
            # The amortization table's families: one charged walk per
            # access (pathoram/ringoram) vs one per superblock (laoram).
            args.families = ["laoram", "pathoram", "ringoram"]
        else:
            args.families = sorted(FAMILY_GATES)

    if args.smoke:
        num_blocks = args.num_blocks or (
            (1 << 18) if args.mode == "recursion" else (1 << 12)
        )
        num_accesses = args.num_accesses or 10_000
    elif args.mode == "recursion":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 20_000
    elif args.mode == "absolute":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 100_000
    elif args.mode == "batched":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 30_000
    elif args.mode == "parallel":
        num_blocks = args.num_blocks or (1 << 16)
        num_accesses = args.num_accesses or (1 << 16)
    else:
        num_blocks = args.num_blocks or (1 << 17)
        num_accesses = args.num_accesses or 30_000
    args.num_blocks_resolved = num_blocks

    trace = ZipfTraceGenerator(
        num_blocks, exponent=args.exponent, seed=7
    ).generate(num_accesses)
    oram_config = ORAMConfig(
        num_blocks=num_blocks,
        block_size_bytes=args.block_size_bytes,
        seed=args.seed,
    )
    print(
        f"zipf trace: {num_accesses} accesses over {num_blocks} blocks "
        f"(depth {oram_config.depth}), families: {', '.join(args.families)}"
    )

    failed = False
    results: list[dict] = []
    for family in args.families:
        label, family_min = FAMILY_GATES[family]
        min_speedup = args.min_speedup if args.min_speedup is not None else family_min

        if args.mode == "recursion":
            entry = bench_recursion(family, label, oram_config, trace, args)
            results.append(entry)
            failed = failed or not entry["passed"]
            continue

        if args.mode == "batched" and not args.smoke:
            entry = bench_batched(family, label, oram_config, trace, args)
            if entry is not None:
                results.append(entry)
                failed = failed or not entry["passed"]
            continue

        if args.mode == "parallel" and not args.smoke:
            entry = bench_parallel(family, trace, args)
            if entry is not None:
                results.append(entry)
                failed = failed or not entry["passed"]
            continue

        if args.mode == "profile" and not args.smoke:
            results.append(bench_profile(family, label, oram_config, trace, args))
            continue

        fast_s, fast_snapshot = min(
            (run_engine(label, oram_config, trace.addresses, fast=True)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        fast_rate = num_accesses / fast_s
        if args.mode == "absolute" and not args.smoke:
            print(
                f"[{family:9s}] fast: {fast_s:8.2f}s  {fast_rate:10.0f} acc/s "
                f"(gate >= {args.min_rate:.0f})"
            )
            rate_ok = fast_rate >= args.min_rate
            if not rate_ok:
                print(
                    f"[{family:9s}] FAIL: {fast_rate:.0f} acc/s below "
                    f"required {args.min_rate:.0f}"
                )
                failed = True
            results.append(
                {
                    "family": family,
                    "mode": "absolute",
                    "fast_rate": fast_rate,
                    "min_rate": args.min_rate,
                    "passed": rate_ok,
                }
            )
            continue

        seed_s, seed_snapshot = min(
            (run_engine(label, oram_config, trace.addresses, fast=False)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        seed_rate = num_accesses / seed_s
        speedup = fast_rate / seed_rate
        print(
            f"[{family:9s}] seed: {seed_s:7.2f}s {seed_rate:9.0f} acc/s | "
            f"fast: {fast_s:7.2f}s {fast_rate:9.0f} acc/s | {speedup:5.2f}x"
        )
        entry_passed = True
        if fast_snapshot != seed_snapshot:
            print(f"[{family:9s}] FAIL: traffic snapshots differ between engines")
            print(f"  seed: {seed_snapshot}")
            print(f"  fast: {fast_snapshot}")
            failed = True
            entry_passed = False
        if not args.smoke and speedup < min_speedup:
            print(
                f"[{family:9s}] FAIL: speedup {speedup:.2f}x below "
                f"required {min_speedup}x"
            )
            failed = True
            entry_passed = False
        results.append(
            {
                "family": family,
                "mode": "smoke" if args.smoke else "ratio",
                "seed_rate": seed_rate,
                "fast_rate": fast_rate,
                "speedup": speedup,
                "min_speedup": None if args.smoke else min_speedup,
                "snapshot": dataclasses.asdict(fast_snapshot),
                "passed": entry_passed,
            }
        )

    if args.emit_json:
        run_document = {
            "mode": "smoke" if args.smoke else args.mode,
            "num_blocks": num_blocks,
            "num_accesses": num_accesses,
            "depth": oram_config.depth,
            "zipf_exponent": args.exponent,
            "batch_size": args.batch_size if args.mode == "batched" else None,
            "host_cpus": os.cpu_count() or 1,
            "provenance": _provenance(),
            "results": results,
            "all_passed": not failed,
        }
        document = {"benchmark": "engine_throughput", "runs": []}
        try:
            with open(args.emit_json) as handle:
                existing = json.load(handle)
            if isinstance(existing.get("runs"), list):
                document["runs"] = existing["runs"]
            elif "results" in existing:
                # Legacy single-run document: its top level *is* one run.
                existing.pop("benchmark", None)
                document["runs"] = [existing]
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        document["runs"].append(run_document)
        with open(args.emit_json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"appended run {len(document['runs'])} to {args.emit_json}")

    if not failed:
        print("all gates passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
