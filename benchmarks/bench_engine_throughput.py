"""Throughput benchmark: array-backed engine vs. the seed per-object engine.

Runs the same 100k-access Zipf trace through the reference
``LAORAMClient`` and the vectorized ``FastLAORAMClient`` at a DLRM-scale
table size (2^20 rows by default; the paper's tables hold 8M-16M), then
checks two properties:

* the two engines produce **identical** ``TrafficSnapshot`` counters — the
  vectorized engine is decision-for-decision the same protocol; and
* the vectorized engine sustains **>= 5x** the accesses/second of the seed
  engine (asserted only at full scale; ``--smoke`` runs a small instance
  that checks equivalence and prints the ratio without gating on it, since
  the vectorized engine's advantage grows with tree depth).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke  # CI

Exits non-zero when a check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient
from repro.datasets.zipf import ZipfTraceGenerator
from repro.oram.config import ORAMConfig


def run_engine(engine_cls, config: LAORAMConfig, addresses) -> tuple[float, object]:
    """Run one engine over the trace; returns (wall seconds, snapshot)."""
    engine = engine_cls(config)
    start = time.perf_counter()
    engine.run_trace(addresses)
    elapsed = time.perf_counter() - start
    assert engine.total_real_blocks() == config.oram.num_blocks, (
        "block conservation violated"
    )
    return elapsed, engine.statistics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance: check counter equivalence only (CI gate)",
    )
    parser.add_argument("--num-blocks", type=int, default=None)
    parser.add_argument("--num-accesses", type=int, default=None)
    parser.add_argument("--superblock-size", type=int, default=4)
    parser.add_argument("--block-size-bytes", type=int, default=64)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required fast/seed throughput ratio at full scale",
    )
    args = parser.parse_args(argv)

    num_blocks = args.num_blocks or ((1 << 12) if args.smoke else (1 << 20))
    num_accesses = args.num_accesses or (20_000 if args.smoke else 100_000)

    trace = ZipfTraceGenerator(
        num_blocks, exponent=args.exponent, seed=7
    ).generate(num_accesses)
    config = LAORAMConfig(
        oram=ORAMConfig(
            num_blocks=num_blocks,
            block_size_bytes=args.block_size_bytes,
            seed=args.seed,
        ),
        superblock_size=args.superblock_size,
    )
    print(
        f"zipf trace: {num_accesses} accesses over {num_blocks} blocks "
        f"(depth {config.oram.depth}, superblock {args.superblock_size})"
    )

    seed_s, seed_snapshot = run_engine(LAORAMClient, config, trace.addresses)
    fast_s, fast_snapshot = run_engine(FastLAORAMClient, config, trace.addresses)

    seed_rate = num_accesses / seed_s
    fast_rate = num_accesses / fast_s
    speedup = fast_rate / seed_rate
    print(f"seed engine (LAORAMClient):     {seed_s:8.2f}s  {seed_rate:10.0f} acc/s")
    print(f"fast engine (FastLAORAMClient): {fast_s:8.2f}s  {fast_rate:10.0f} acc/s")
    print(f"speedup: {speedup:.2f}x")

    failed = False
    if fast_snapshot != seed_snapshot:
        print("FAIL: traffic snapshots differ between engines")
        print(f"  seed: {seed_snapshot}")
        print(f"  fast: {fast_snapshot}")
        failed = True
    else:
        print("traffic snapshots identical")
    if not args.smoke and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
