"""Per-family throughput benchmark: array twins vs the seed per-object engines.

Every tree-ORAM family ships a vectorized array-backed twin (PathORAM ->
ArrayPathORAM, LAORAM -> FastLAORAMClient, RingORAM -> ArrayRingORAM,
PrORAM -> ArrayPrORAM).  For each requested family this benchmark runs the
same Zipf trace through both engines and checks:

* the two engines produce **identical** ``TrafficSnapshot`` counters — each
  twin is decision-for-decision the same protocol; and
* the vectorized engine sustains the family's required speedup over the seed
  engine.  The gates reflect where vectorization actually pays: LAORAM's
  batched superblock bins reach 3-12x (>= 5x gated at 2^20, PR 1's gate),
  while the single-access protocols (pathoram/ringoram/proram) are bounded
  by per-access numpy dispatch at ~1.2-2x, so their ratio gates are
  non-regression bounds (see ROADMAP: batching write-back planning across
  paths is the next order-of-magnitude lever).

Modes::

    --smoke           small instance: counter equivalence only (CI test job)
    --mode ratio      default; reference-vs-fast ratio gate (2^17 blocks by
                      default — the largest size where the per-object
                      baseline is still tractable for every family)
    --mode absolute   fast engines only at DLRM scale (2^20 blocks by
                      default; the paper's tables hold 8M-16M rows) gated on
                      absolute accesses/second, since the per-object
                      baseline is too slow to compare at this size
    --mode batched    the cross-path batched write-back planner (2^20 blocks
                      by default): under PathORAM's batched access protocol
                      the planner must beat the sequential per-path
                      write-back by ``--min-batched-speedup``, and flipping
                      it off (``batched_write_back=False``) must leave
                      counters bit-identical — for PathORAM batches and
                      LAORAM bins alike

``--emit-json PATH`` writes every measured run (rates, speedups, gate
outcomes) as a JSON document, committed as ``BENCH_engine_throughput.json``
so perf history travels with the repo.

Exits non-zero when a check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import sys
import time

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.experiments.configs import build_engine
from repro.oram.config import ORAMConfig

#: family -> (configuration label, required fast/seed speedup in ratio mode).
#: Measured locally at the 2^17 ratio default: laoram ~3x (6-12x at 2^20),
#: ringoram ~1.6x, pathoram ~1.2x, proram ~1.3-2x.  The single-access
#: protocols' ratios swing with allocator/GC state on shared runners, so
#: their gates are non-regression bounds (1.0) and the hard perf gates are
#: laoram's ratio plus the absolute-rate mode; equivalence is always gated.
FAMILY_GATES: dict[str, tuple[str, float]] = {
    "pathoram": ("PathORAM", 1.0),
    "laoram": ("Normal/S4", 2.0),
    "ringoram": ("RingORAM", 1.0),
    "proram": ("PrORAM-dynamic/S2", 1.0),
}


def run_engine(
    label: str,
    oram_config: ORAMConfig,
    addresses,
    fast: bool,
    batched: bool = False,
    batch_size: int = 64,
    batched_write_back: bool | None = None,
):
    """Run one engine over the trace; returns (wall seconds, snapshot)."""
    # Collect the previous engine's object graph up front so one engine's
    # garbage does not inflate the next engine's GC pauses mid-measurement.
    gc.collect()
    engine = build_engine(
        label, oram_config, fast=fast, batched=batched, batch_size=batch_size
    )
    if batched_write_back is not None:
        engine.batched_write_back = batched_write_back
    start = time.perf_counter()
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(addresses)
    else:
        engine.access_many(addresses)
    elapsed = time.perf_counter() - start
    assert engine.total_real_blocks() == oram_config.num_blocks, (
        "block conservation violated"
    )
    return elapsed, engine.statistics


def bench_batched(family, label, oram_config, trace, args):
    """One family's batched-mode measurements and gates.

    PathORAM exercises the batched access protocol: batched vs sequential
    (per-path) write-back under the same chunked protocol, gated on
    ``--min-batched-speedup`` plus counter bit-identity, with the
    per-access fast engine's rate reported for context.  LAORAM's
    superblock bins already batch, so it is gated only on planner
    bit-identity (batched vs per-path write-back) with the throughput
    delta reported.  Other families have no batched protocol.

    Every configuration is measured ``--trials`` times and rates are
    best-of: the engines are deterministic, so any run-to-run spread is
    allocator/GC/runner noise and the fastest run is the least polluted.
    """
    num_accesses = len(trace.addresses)

    def best_rate(**kwargs):
        seconds, snapshot = min(
            (run_engine(label, oram_config, trace.addresses, **kwargs)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        return num_accesses / seconds, snapshot

    if family == "pathoram":
        per_rate, _ = best_rate(fast=True)
        bat_rate, bat_snapshot = best_rate(
            fast=True, batched=True, batch_size=args.batch_size
        )
        seq_rate, seq_snapshot = best_rate(
            fast=True,
            batched=True,
            batch_size=args.batch_size,
            batched_write_back=False,
        )
        speedup = bat_rate / seq_rate
        print(
            f"[{family:9s}] per-access: {per_rate:9.0f} acc/s | "
            f"batched-WB(B={args.batch_size}): {bat_rate:9.0f} acc/s | "
            f"per-path-WB: {seq_rate:9.0f} acc/s | {speedup:5.2f}x"
        )
        passed = True
        if bat_snapshot != seq_snapshot:
            print(
                f"[{family:9s}] FAIL: batched write-back diverges from "
                "sequential write-back"
            )
            print(f"  batched:    {bat_snapshot}")
            print(f"  sequential: {seq_snapshot}")
            passed = False
        if speedup < args.min_batched_speedup:
            print(
                f"[{family:9s}] FAIL: batched write-back speedup "
                f"{speedup:.2f}x below required {args.min_batched_speedup}x"
            )
            passed = False
        return {
            "family": family,
            "mode": "batched",
            "batch_size": args.batch_size,
            "trials": args.trials,
            "per_access_rate": per_rate,
            "batched_wb_rate": bat_rate,
            "sequential_wb_rate": seq_rate,
            "write_back_speedup": speedup,
            "min_batched_speedup": args.min_batched_speedup,
            "write_back_bit_identical": bat_snapshot == seq_snapshot,
            "snapshot": dataclasses.asdict(bat_snapshot),
            "passed": passed,
        }
    if family == "laoram":
        bat_rate, bat_snapshot = best_rate(fast=True)
        seq_rate, seq_snapshot = best_rate(fast=True, batched_write_back=False)
        delta = bat_rate / seq_rate
        print(
            f"[{family:9s}] batched-WB: {bat_rate:9.0f} acc/s | "
            f"per-path-WB: {seq_rate:9.0f} acc/s | {delta:5.2f}x"
        )
        passed = bat_snapshot == seq_snapshot
        if not passed:
            print(
                f"[{family:9s}] FAIL: batched write-back diverges from "
                "sequential write-back"
            )
            print(f"  batched:    {bat_snapshot}")
            print(f"  sequential: {seq_snapshot}")
        return {
            "family": family,
            "mode": "batched",
            "trials": args.trials,
            "batched_wb_rate": bat_rate,
            "sequential_wb_rate": seq_rate,
            "write_back_speedup": delta,
            "write_back_bit_identical": bat_snapshot == seq_snapshot,
            "snapshot": dataclasses.asdict(bat_snapshot),
            "passed": passed,
        }
    print(f"[{family:9s}] skipped: no batched access protocol")
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance: check counter equivalence only (CI gate)",
    )
    parser.add_argument(
        "--mode",
        choices=("ratio", "absolute", "batched"),
        default="ratio",
        help="ratio: reference-vs-fast speedup gate; absolute: fast engines "
        "only, gated on accesses/second; batched: batched-access protocol "
        "vs per-access, plus batched-vs-sequential write-back equivalence",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        choices=sorted(FAMILY_GATES),
        default=sorted(FAMILY_GATES),
        help="engine families to benchmark (default: all)",
    )
    parser.add_argument("--num-blocks", type=int, default=None)
    parser.add_argument("--num-accesses", type=int, default=None)
    parser.add_argument("--block-size-bytes", type=int, default=64)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="override the per-family fast/seed throughput gates (ratio mode)",
    )
    parser.add_argument(
        "--min-rate",
        type=float,
        default=2_000.0,
        help="required fast-engine accesses/second (absolute mode)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="accesses per chunk for the batched protocol (batched mode)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=1.1,
        help="required batched-vs-per-path write-back throughput ratio "
        "(batched mode; measured 1.2-1.3x at 2^20 on quiet machines, gated "
        "with margin for shared runners like the other ratio gates)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="measurement repetitions per configuration; rates are best-of "
        "(engines are deterministic, so spread is runner noise) — raise "
        "this where a ratio gate is tight",
    )
    parser.add_argument(
        "--emit-json",
        type=str,
        default=None,
        metavar="PATH",
        help="write measured rates and gate outcomes to PATH as JSON",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_blocks = args.num_blocks or (1 << 12)
        num_accesses = args.num_accesses or 10_000
    elif args.mode == "absolute":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 100_000
    elif args.mode == "batched":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 30_000
    else:
        num_blocks = args.num_blocks or (1 << 17)
        num_accesses = args.num_accesses or 30_000

    trace = ZipfTraceGenerator(
        num_blocks, exponent=args.exponent, seed=7
    ).generate(num_accesses)
    oram_config = ORAMConfig(
        num_blocks=num_blocks,
        block_size_bytes=args.block_size_bytes,
        seed=args.seed,
    )
    print(
        f"zipf trace: {num_accesses} accesses over {num_blocks} blocks "
        f"(depth {oram_config.depth}), families: {', '.join(args.families)}"
    )

    failed = False
    results: list[dict] = []
    for family in args.families:
        label, family_min = FAMILY_GATES[family]
        min_speedup = args.min_speedup if args.min_speedup is not None else family_min

        if args.mode == "batched" and not args.smoke:
            entry = bench_batched(family, label, oram_config, trace, args)
            if entry is not None:
                results.append(entry)
                failed = failed or not entry["passed"]
            continue

        fast_s, fast_snapshot = min(
            (run_engine(label, oram_config, trace.addresses, fast=True)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        fast_rate = num_accesses / fast_s
        if args.mode == "absolute" and not args.smoke:
            print(
                f"[{family:9s}] fast: {fast_s:8.2f}s  {fast_rate:10.0f} acc/s "
                f"(gate >= {args.min_rate:.0f})"
            )
            rate_ok = fast_rate >= args.min_rate
            if not rate_ok:
                print(
                    f"[{family:9s}] FAIL: {fast_rate:.0f} acc/s below "
                    f"required {args.min_rate:.0f}"
                )
                failed = True
            results.append(
                {
                    "family": family,
                    "mode": "absolute",
                    "fast_rate": fast_rate,
                    "min_rate": args.min_rate,
                    "passed": rate_ok,
                }
            )
            continue

        seed_s, seed_snapshot = min(
            (run_engine(label, oram_config, trace.addresses, fast=False)
             for _ in range(max(1, args.trials))),
            key=lambda pair: pair[0],
        )
        seed_rate = num_accesses / seed_s
        speedup = fast_rate / seed_rate
        print(
            f"[{family:9s}] seed: {seed_s:7.2f}s {seed_rate:9.0f} acc/s | "
            f"fast: {fast_s:7.2f}s {fast_rate:9.0f} acc/s | {speedup:5.2f}x"
        )
        entry_passed = True
        if fast_snapshot != seed_snapshot:
            print(f"[{family:9s}] FAIL: traffic snapshots differ between engines")
            print(f"  seed: {seed_snapshot}")
            print(f"  fast: {fast_snapshot}")
            failed = True
            entry_passed = False
        if not args.smoke and speedup < min_speedup:
            print(
                f"[{family:9s}] FAIL: speedup {speedup:.2f}x below "
                f"required {min_speedup}x"
            )
            failed = True
            entry_passed = False
        results.append(
            {
                "family": family,
                "mode": "smoke" if args.smoke else "ratio",
                "seed_rate": seed_rate,
                "fast_rate": fast_rate,
                "speedup": speedup,
                "min_speedup": None if args.smoke else min_speedup,
                "snapshot": dataclasses.asdict(fast_snapshot),
                "passed": entry_passed,
            }
        )

    if args.emit_json:
        document = {
            "benchmark": "engine_throughput",
            "mode": "smoke" if args.smoke else args.mode,
            "num_blocks": num_blocks,
            "num_accesses": num_accesses,
            "depth": oram_config.depth,
            "zipf_exponent": args.exponent,
            "batch_size": args.batch_size if args.mode == "batched" else None,
            "results": results,
            "all_passed": not failed,
        }
        with open(args.emit_json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.emit_json}")

    if not failed:
        print("all gates passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
