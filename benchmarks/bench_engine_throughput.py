"""Per-family throughput benchmark: array twins vs the seed per-object engines.

Every tree-ORAM family ships a vectorized array-backed twin (PathORAM ->
ArrayPathORAM, LAORAM -> FastLAORAMClient, RingORAM -> ArrayRingORAM,
PrORAM -> ArrayPrORAM).  For each requested family this benchmark runs the
same Zipf trace through both engines and checks:

* the two engines produce **identical** ``TrafficSnapshot`` counters — each
  twin is decision-for-decision the same protocol; and
* the vectorized engine sustains the family's required speedup over the seed
  engine.  The gates reflect where vectorization actually pays: LAORAM's
  batched superblock bins reach 3-12x (>= 5x gated at 2^20, PR 1's gate),
  while the single-access protocols (pathoram/ringoram/proram) are bounded
  by per-access numpy dispatch at ~1.2-2x, so their ratio gates are
  non-regression bounds (see ROADMAP: batching write-back planning across
  paths is the next order-of-magnitude lever).

Modes::

    --smoke           small instance: counter equivalence only (CI test job)
    --mode ratio      default; reference-vs-fast ratio gate (2^17 blocks by
                      default — the largest size where the per-object
                      baseline is still tractable for every family)
    --mode absolute   fast engines only at DLRM scale (2^20 blocks by
                      default; the paper's tables hold 8M-16M rows) gated on
                      absolute accesses/second, since the per-object
                      baseline is too slow to compare at this size

Exits non-zero when a check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.experiments.configs import build_engine
from repro.oram.config import ORAMConfig

#: family -> (configuration label, required fast/seed speedup in ratio mode).
#: Measured locally at the 2^17 ratio default: laoram ~3x (6-12x at 2^20),
#: ringoram ~1.6x, pathoram ~1.2x, proram ~1.3-2x.  The single-access
#: protocols' ratios swing with allocator/GC state on shared runners, so
#: their gates are non-regression bounds (1.0) and the hard perf gates are
#: laoram's ratio plus the absolute-rate mode; equivalence is always gated.
FAMILY_GATES: dict[str, tuple[str, float]] = {
    "pathoram": ("PathORAM", 1.0),
    "laoram": ("Normal/S4", 2.0),
    "ringoram": ("RingORAM", 1.0),
    "proram": ("PrORAM-dynamic/S2", 1.0),
}


def run_engine(label: str, oram_config: ORAMConfig, addresses, fast: bool):
    """Run one engine over the trace; returns (wall seconds, snapshot)."""
    # Collect the previous engine's object graph up front so one engine's
    # garbage does not inflate the next engine's GC pauses mid-measurement.
    gc.collect()
    engine = build_engine(label, oram_config, fast=fast)
    start = time.perf_counter()
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(addresses)
    else:
        engine.access_many(addresses)
    elapsed = time.perf_counter() - start
    assert engine.total_real_blocks() == oram_config.num_blocks, (
        "block conservation violated"
    )
    return elapsed, engine.statistics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance: check counter equivalence only (CI gate)",
    )
    parser.add_argument(
        "--mode",
        choices=("ratio", "absolute"),
        default="ratio",
        help="ratio: reference-vs-fast speedup gate; absolute: fast engines "
        "only, gated on accesses/second",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        choices=sorted(FAMILY_GATES),
        default=sorted(FAMILY_GATES),
        help="engine families to benchmark (default: all)",
    )
    parser.add_argument("--num-blocks", type=int, default=None)
    parser.add_argument("--num-accesses", type=int, default=None)
    parser.add_argument("--block-size-bytes", type=int, default=64)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="override the per-family fast/seed throughput gates (ratio mode)",
    )
    parser.add_argument(
        "--min-rate",
        type=float,
        default=2_000.0,
        help="required fast-engine accesses/second (absolute mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_blocks = args.num_blocks or (1 << 12)
        num_accesses = args.num_accesses or 10_000
    elif args.mode == "absolute":
        num_blocks = args.num_blocks or (1 << 20)
        num_accesses = args.num_accesses or 100_000
    else:
        num_blocks = args.num_blocks or (1 << 17)
        num_accesses = args.num_accesses or 30_000

    trace = ZipfTraceGenerator(
        num_blocks, exponent=args.exponent, seed=7
    ).generate(num_accesses)
    oram_config = ORAMConfig(
        num_blocks=num_blocks,
        block_size_bytes=args.block_size_bytes,
        seed=args.seed,
    )
    print(
        f"zipf trace: {num_accesses} accesses over {num_blocks} blocks "
        f"(depth {oram_config.depth}), families: {', '.join(args.families)}"
    )

    failed = False
    for family in args.families:
        label, family_min = FAMILY_GATES[family]
        min_speedup = args.min_speedup if args.min_speedup is not None else family_min

        fast_s, fast_snapshot = run_engine(
            label, oram_config, trace.addresses, fast=True
        )
        fast_rate = num_accesses / fast_s
        if args.mode == "absolute" and not args.smoke:
            print(
                f"[{family:9s}] fast: {fast_s:8.2f}s  {fast_rate:10.0f} acc/s "
                f"(gate >= {args.min_rate:.0f})"
            )
            if fast_rate < args.min_rate:
                print(
                    f"[{family:9s}] FAIL: {fast_rate:.0f} acc/s below "
                    f"required {args.min_rate:.0f}"
                )
                failed = True
            continue

        seed_s, seed_snapshot = run_engine(
            label, oram_config, trace.addresses, fast=False
        )
        seed_rate = num_accesses / seed_s
        speedup = fast_rate / seed_rate
        print(
            f"[{family:9s}] seed: {seed_s:7.2f}s {seed_rate:9.0f} acc/s | "
            f"fast: {fast_s:7.2f}s {fast_rate:9.0f} acc/s | {speedup:5.2f}x"
        )
        if fast_snapshot != seed_snapshot:
            print(f"[{family:9s}] FAIL: traffic snapshots differ between engines")
            print(f"  seed: {seed_snapshot}")
            print(f"  fast: {fast_snapshot}")
            failed = True
        if not args.smoke and speedup < min_speedup:
            print(
                f"[{family:9s}] FAIL: speedup {speedup:.2f}x below "
                f"required {min_speedup}x"
            )
            failed = True

    if not failed:
        print("all gates passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
