"""Table II benchmark: average dummy reads per access.

Paper claims (shape): the permutation workload needs by far the most dummy
reads; the fat tree reduces dummy reads by roughly 3x relative to the normal
tree at the same superblock size; the real-model workloads (Kaggle, XNLI)
need almost none.
"""

from repro.experiments.table2 import run_table2

from .conftest import BENCH_SCALE_SMALL, record


def test_table2_dummy_reads(benchmark):
    result = benchmark.pedantic(
        lambda: run_table2(BENCH_SCALE_SMALL, seed=4), rounds=1, iterations=1
    )
    record(
        benchmark,
        **{
            f"{config.replace('/', '_')}_{dataset}": round(value, 3)
            for config, per_dataset in result.dummy_reads.items()
            for dataset, value in per_dataset.items()
        },
    )
    # Permutation is the worst case for every configuration.
    for config in ("Normal/S8", "Fat/S8"):
        assert result.value(config, "permutation") >= result.value(config, "xnli")
    # The fat tree never needs more dummy reads than the normal tree.
    for superblock in (4, 8):
        for dataset in ("permutation", "gaussian", "kaggle", "xnli"):
            assert result.value(f"Fat/S{superblock}", dataset) <= result.value(
                f"Normal/S{superblock}", dataset
            ) + 1e-9
    # Larger superblocks put more pressure on the stash.
    assert result.value("Normal/S8", "permutation") >= result.value(
        "Normal/S4", "permutation"
    )
