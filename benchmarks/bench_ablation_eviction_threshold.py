"""Ablation: background-eviction threshold sweep.

The paper fixes the trigger/drain thresholds at 500/50 (Section VIII-E).
This ablation shows the trade-off those numbers buy: lower thresholds keep
the stash (client memory) small but spend more dummy reads; higher thresholds
do the opposite.  Run on the worst-case permutation workload where the
effect is visible.
"""

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.permutation import PermutationTraceGenerator
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy

from .conftest import BENCH_SCALE_SMALL, record

THRESHOLDS = (50, 150, 400)


def test_ablation_eviction_threshold(benchmark):
    scale = BENCH_SCALE_SMALL
    trace = PermutationTraceGenerator(scale.num_blocks, seed=8).generate(
        scale.num_accesses
    )

    def sweep():
        results = {}
        for threshold in THRESHOLDS:
            config = LAORAMConfig(
                oram=ORAMConfig(
                    num_blocks=scale.num_blocks,
                    block_size_bytes=scale.block_size_bytes,
                    seed=8,
                ),
                superblock_size=8,
            )
            client = LAORAMClient(
                config,
                eviction=EvictionPolicy(
                    trigger_threshold=threshold, drain_target=max(5, threshold // 10)
                ),
            )
            client.run_trace(trace.addresses)
            snap = client.statistics
            results[threshold] = (snap.dummy_reads_per_access, snap.stash_peak)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        **{
            f"threshold_{threshold}": f"dummy={dummy:.3f},stash_peak={peak}"
            for threshold, (dummy, peak) in results.items()
        },
    )
    dummy_rates = [results[t][0] for t in THRESHOLDS]
    stash_peaks = [results[t][1] for t in THRESHOLDS]
    # Tighter thresholds cannot reduce dummy reads, looser thresholds cannot
    # reduce the stash peak.
    assert dummy_rates[0] >= dummy_rates[-1]
    assert stash_peaks[0] <= stash_peaks[-1] + 1
