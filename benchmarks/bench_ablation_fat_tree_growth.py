"""Ablation: fat-tree capacity schedules (design choice from Section V).

The paper chooses linear bucket growth because exponential growth is
impractical at the root.  This ablation compares the uniform tree against
the two implemented fat-tree schedules (linear root-doubling and per-level
increment) on stash pressure and memory cost, confirming the paper's
argument that putting extra slots near the root is where the memory buys the
most eviction headroom.
"""

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.permutation import PermutationTraceGenerator
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy

from .conftest import BENCH_SCALE_SMALL, record

SCHEDULES = {
    "uniform": {"fat_tree": False},
    "linear_2x": {"fat_tree": True, "fat_tree_growth": "linear"},
    "increment": {"fat_tree": True, "fat_tree_growth": "increment"},
}


def test_ablation_fat_tree_growth(benchmark):
    scale = BENCH_SCALE_SMALL
    trace = PermutationTraceGenerator(scale.num_blocks, seed=11).generate(
        scale.num_accesses
    )

    def sweep():
        results = {}
        for name, overrides in SCHEDULES.items():
            config = LAORAMConfig(
                oram=ORAMConfig(
                    num_blocks=scale.num_blocks,
                    block_size_bytes=scale.block_size_bytes,
                    seed=11,
                    **overrides,
                ),
                superblock_size=8,
            )
            client = LAORAMClient(config, eviction=EvictionPolicy.disabled())
            client.run_trace(trace.addresses)
            results[name] = (
                client.statistics.stash_peak,
                client.server_memory_bytes,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        **{
            f"{name}": f"stash_peak={peak},server_bytes={memory}"
            for name, (peak, memory) in results.items()
        },
    )
    uniform_peak, uniform_memory = results["uniform"]
    for name in ("linear_2x", "increment"):
        fat_peak, fat_memory = results[name]
        # Any fat schedule trades a bounded memory increase for a smaller stash.
        assert fat_peak <= uniform_peak
        assert fat_memory > uniform_memory
        assert fat_memory < uniform_memory * 1.6
