"""Ablation: how much lookahead does the preprocessor need?

The paper notes the preprocessor may scan anything from a few batches to an
entire epoch (Section IV-B).  This ablation sweeps the lookahead window and
shows that most of the benefit is already captured with a window of a few
thousand accesses on a reuse-heavy (XNLI-like) workload: the window must be
long enough to contain a block's next occurrence for coalescing to work.
"""

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.xnli import SyntheticXNLITrace
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM

from .conftest import BENCH_SCALE_SMALL, record

WINDOWS = (64, 512, None)  # None = whole trace


def test_ablation_lookahead_window(benchmark):
    scale = BENCH_SCALE_SMALL
    trace = SyntheticXNLITrace(vocabulary_size=scale.num_blocks, seed=9).generate(
        scale.num_accesses
    )
    oram_config = ORAMConfig(
        num_blocks=scale.num_blocks, block_size_bytes=scale.block_size_bytes, seed=9
    )

    def sweep():
        baseline = PathORAM(oram_config)
        baseline.access_many(trace.addresses)
        base_per_access = baseline.simulated_time_s / len(trace)
        speedups = {}
        for window in WINDOWS:
            config = LAORAMConfig(
                oram=oram_config.with_overrides(seed=10),
                superblock_size=4,
                lookahead_accesses=window,
            )
            client = LAORAMClient(config)
            client.run_trace(trace.addresses)
            per_access = client.simulated_time_s / len(trace)
            speedups[window] = base_per_access / per_access
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        **{
            f"window_{window if window is not None else 'full'}": round(value, 2)
            for window, value in speedups.items()
        },
    )
    # More lookahead never hurts, and the full-trace plan is the best.
    assert speedups[None] >= speedups[512] * 0.95
    assert speedups[512] >= speedups[64] * 0.95
    assert speedups[None] > 1.5
