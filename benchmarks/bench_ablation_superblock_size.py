"""Ablation: superblock-size sweep beyond the paper's 2/4/8 grid.

DESIGN.md calls out the superblock size as the central design knob: larger
bins amortise more path fetches but increase stash pressure and dummy reads.
This sweep locates the sweet spot for the normal and fat trees on the Kaggle
workload and also verifies that every swept configuration keeps its observed
path stream uniform (the security side-condition of Section VI).
"""

import pytest

from repro.attacks.observer import MemoryBusObserver
from repro.datasets.registry import make_trace
from repro.experiments.configs import build_oram_config
from repro.experiments.runner import run_configuration
from repro.utils.stats import chi_square_uniformity

from .conftest import BENCH_SCALE_SMALL, record

SWEEP = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("fat", [False, True], ids=["normal", "fat"])
def test_ablation_superblock_size(benchmark, fat):
    scale = BENCH_SCALE_SMALL
    trace = make_trace("kaggle", scale.num_blocks, scale.num_accesses, seed=7)
    oram_config = build_oram_config(
        num_blocks=scale.num_blocks, block_size_bytes=scale.block_size_bytes, seed=7
    )
    tree = "Fat" if fat else "Normal"

    def sweep():
        observer = MemoryBusObserver()
        baseline = run_configuration(
            "PathORAM", trace, oram_config, seed=7, observer=observer
        )
        results = {1: baseline}
        for size in SWEEP[1:]:
            results[size] = run_configuration(
                f"{tree}/S{size}", trace, oram_config, seed=7 + size
            )
        uniformity = chi_square_uniformity(
            observer.observed_paths, oram_config.num_leaves
        )
        return results, uniformity

    results, uniformity = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = results[1]
    speedups = {size: results[size].speedup_over(baseline) for size in SWEEP}
    record(
        benchmark,
        tree=tree,
        **{f"S{size}": round(speedup, 2) for size, speedup in speedups.items()},
        dummy_reads_S16=round(results[16].dummy_reads_per_access, 3),
    )
    assert speedups[4] > speedups[2] > 1.0
    assert not uniformity.rejects_uniformity(alpha=0.001)
    # Diminishing (or negative) returns must appear somewhere in the sweep:
    # the marginal gain of doubling S shrinks as stash pressure builds.
    gain_2_to_4 = speedups[4] / speedups[2]
    gain_8_to_16 = speedups[16] / speedups[8]
    assert gain_8_to_16 < gain_2_to_4
