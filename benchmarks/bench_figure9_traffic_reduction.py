"""Figure 9 benchmark: memory-traffic reduction on the Kaggle workload.

Paper claims: Normal/S2 hits its theoretical bound of 2x exactly; larger
superblocks fall short of their bounds once background evictions appear; the
fat tree's reduction for small superblocks trails the normal tree (its paths
are ~50% larger) but catches up at superblock size 8.
"""

import pytest

from repro.experiments.figure9 import run_figure9

from .conftest import BENCH_SCALE, record


def test_figure9_traffic_reduction(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure9(BENCH_SCALE, seed=3), rounds=1, iterations=1
    )
    record(
        benchmark,
        dataset=result.dataset,
        **{
            label.replace("/", "_"): round(value, 2)
            for label, value in result.reductions.items()
        },
    )
    assert result.reductions["Normal/S2"] == pytest.approx(2.0, rel=0.1)
    for label in result.reductions:
        assert result.within_bound(label, tolerance=1.1)
    assert result.reductions["Normal/S4"] > result.reductions["Normal/S2"]
    assert result.reductions["Fat/S2"] < result.reductions["Normal/S2"]
