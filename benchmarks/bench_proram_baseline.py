"""Section II-D / VII-B benchmark: PrORAM degrades to PathORAM on Kaggle.

The paper justifies using plain PathORAM as its baseline by observing that
history-based superblocks (PrORAM) find almost no exploitable locality in
the near-random embedding access stream of Fig. 2, "even after ignoring the
superblock tracking and formation overheads".  This benchmark checks that
claim directly and contrasts it with LAORAM, whose future knowledge does
find the structure.
"""

import pytest

from repro.datasets.registry import make_trace
from repro.experiments.configs import build_oram_config
from repro.experiments.runner import run_configuration

from .conftest import BENCH_SCALE_SMALL, record


def test_proram_degrades_to_pathoram_on_kaggle(benchmark):
    scale = BENCH_SCALE_SMALL
    trace = make_trace("kaggle", scale.num_blocks, scale.num_accesses, seed=13)
    oram_config = build_oram_config(
        num_blocks=scale.num_blocks, block_size_bytes=scale.block_size_bytes, seed=13
    )

    def run_all():
        labels = ("PathORAM", "PrORAM-dynamic/S4", "PrORAM-static/S4", "Fat/S4")
        return {
            label: run_configuration(label, trace, oram_config, seed=13 + offset)
            for offset, label in enumerate(labels)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results["PathORAM"]
    speedups = {
        label: result.speedup_over(baseline) for label, result in results.items()
    }
    record(
        benchmark,
        **{label.replace("/", "_"): round(value, 2) for label, value in speedups.items()},
    )
    # History-based PrORAM buys essentially nothing on the random trace...
    assert speedups["PrORAM-dynamic/S4"] == pytest.approx(1.0, abs=0.15)
    assert speedups["PrORAM-static/S4"] < 1.5
    # ...while LAORAM's lookahead finds the structure the history cannot.
    assert speedups["Fat/S4"] > 2.0
