"""Figure 8 benchmark: stash growth of fat vs normal trees (no eviction).

Paper claim: after ~12.5k worst-case accesses the normal tree's stash is
roughly 3x the fat tree's at superblock size 4, and larger superblocks make
the gap worse.
"""

from repro.experiments.figure8 import run_figure8

from .conftest import BENCH_SCALE, record


def test_figure8_stash_growth(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure8(BENCH_SCALE, seed=2), rounds=1, iterations=1
    )
    record(
        benchmark,
        num_accesses=result.num_accesses,
        **{label.replace("-", "_"): occ for label, occ in result.final_occupancy.items()},
        normal4_over_fat4=round(result.growth_ratio("Normal-4", "Fat-4"), 2),
        normal8_over_fat8=round(result.growth_ratio("Normal-8", "Fat-8"), 2),
    )
    assert result.final_occupancy["Normal-4"] > result.final_occupancy["Fat-4"]
    assert result.final_occupancy["Normal-8"] > result.final_occupancy["Fat-8"]
    # Stash histories must be monotone enough to show growth, i.e. the final
    # occupancy dominates the early occupancy for the normal tree.
    history = result.histories["Normal-4"]
    assert history[-1] >= history[len(history) // 4]
