"""Section VIII-A benchmark: preprocessing stays off the critical path.

The paper reports that preprocessing a sample (extracting its embedding
indices and assigning superblock bins) is orders of magnitude faster than
training it, so the two-stage pipeline hides preprocessing entirely.  This
benchmark measures the reproduction's actual preprocessing throughput and
feeds it into the pipeline model.
"""

from repro.core.pipeline import TrainingPipeline
from repro.core.preprocessor import Preprocessor
from repro.utils.rng import make_rng

from .conftest import BENCH_SCALE, record


def test_preprocessing_pipeline(benchmark):
    scale = BENCH_SCALE
    rng = make_rng(12)
    addresses = rng.integers(0, scale.num_blocks, size=scale.num_accesses)
    preprocessor = Preprocessor(superblock_size=4, num_leaves=scale.num_blocks, seed=0)

    plan = benchmark(preprocessor.build_plan, addresses)

    # Wall-clock preprocessing time per access, from the benchmark itself.
    per_access_s = benchmark.stats.stats.mean / scale.num_accesses
    pipeline = TrainingPipeline(
        preprocess_time_per_sample_s=per_access_s,
        train_time_per_sample_s=5e-4,  # paper-scale GPU step time per sample
    )
    estimate = pipeline.estimate(num_samples=100_000)
    record(
        benchmark,
        accesses=scale.num_accesses,
        preprocess_us_per_access=round(per_access_s * 1e6, 2),
        pipeline_overhead_fraction=round(estimate.overhead_fraction, 4),
        metadata_kib=round(plan.metadata_bytes() / 1024, 1),
    )
    assert len(plan) == scale.num_accesses // 4
    assert not estimate.preprocessing_on_critical_path
    assert estimate.overhead_fraction < 0.05
