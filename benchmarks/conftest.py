"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``small`` scale preset (see ``repro.experiments.scale`` for why reduced
scales preserve the shape of the results).  The reproduced numbers are
attached to each benchmark's ``extra_info`` so they appear in
``pytest-benchmark``'s JSON output, and are also printed so that a plain
``pytest benchmarks/ --benchmark-only -s`` run shows the tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import ExperimentScale

#: Scale used by the benchmark harness.  Small enough that the whole suite
#: completes in a few minutes of pure Python, large enough that stash and
#: eviction dynamics resemble the paper's.
BENCH_SCALE = ExperimentScale(name="bench", num_blocks=1 << 12, num_accesses=8_192)

#: Reduced scale for the experiments that sweep many configurations.
BENCH_SCALE_SMALL = ExperimentScale(name="bench-small", num_blocks=1 << 11, num_accesses=4_096)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Default benchmark scale."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_scale_small() -> ExperimentScale:
    """Smaller scale for configuration sweeps."""
    return BENCH_SCALE_SMALL


def record(benchmark, **info) -> None:
    """Attach reproduction numbers to the benchmark record and print them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
    printable = ", ".join(f"{key}={value}" for key, value in info.items())
    print(f"\n[{benchmark.name}] {printable}")
