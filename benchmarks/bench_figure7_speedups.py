"""Figure 7 benchmarks: LAORAM speedups over PathORAM on all six workloads.

Paper claims (shape, not absolute values):

* the best LAORAM configuration reaches ~5x on DLRM-Kaggle (7e) and ~5.4x on
  XLM-R-XNLI (7f);
* the adversarial permutation workload (7a/7b) gains far less, and the
  normal tree dips at superblock size 8 because of dummy-read pressure;
* the fat tree outperforms the normal tree at the larger superblock sizes.
"""

import pytest

from repro.experiments.figure7 import run_figure7

from .conftest import BENCH_SCALE, BENCH_SCALE_SMALL, record

_SCALES = {
    "7a": BENCH_SCALE_SMALL,
    "7b": BENCH_SCALE_SMALL,
    "7c": BENCH_SCALE_SMALL,
    "7d": BENCH_SCALE_SMALL,
    "7e": BENCH_SCALE,
    "7f": BENCH_SCALE,
}


@pytest.mark.parametrize("subfigure", sorted(_SCALES))
def test_figure7_speedups(benchmark, subfigure):
    scale = _SCALES[subfigure]
    result = benchmark.pedantic(
        lambda: run_figure7(subfigure, scale, seed=1), rounds=1, iterations=1
    )
    speedups = {label: round(value, 2) for label, value in result.speedups.items()}
    record(
        benchmark,
        subfigure=subfigure,
        dataset=result.dataset,
        best=result.best_configuration,
        **{label.replace("/", "_"): value for label, value in speedups.items()},
    )
    # Shape assertions common to every sub-figure.
    assert result.speedups["PathORAM"] == pytest.approx(1.0)
    assert result.best_speedup > 1.2
    if subfigure in ("7e", "7f"):
        # ML workloads: large speedups, S8 beats S2.
        assert result.best_speedup > 2.5
        assert result.speedups["Fat/S8"] > result.speedups["Fat/S2"]
    if subfigure in ("7a", "7b"):
        # Worst-case permutation: the fat tree rescues the large superblocks.
        assert result.speedups["Fat/S8"] >= result.speedups["Normal/S8"] * 0.9
