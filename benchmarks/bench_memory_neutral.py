"""Section VIII-C benchmark: memory-neutral fat tree vs enlarged normal tree.

Paper claim: a fat tree with buckets 9 (root) to 5 (leaf) uses ~16.6% less
memory than a uniform bucket-6 tree yet triggers ~12.4% fewer dummy reads.
"""

from repro.experiments.memory_neutral import run_memory_neutral

from .conftest import BENCH_SCALE, record


def test_memory_neutral_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_memory_neutral(BENCH_SCALE, seed=5), rounds=1, iterations=1
    )
    record(
        benchmark,
        normal_memory=result.normal_memory_bytes,
        fat_memory=result.fat_memory_bytes,
        normal_dummy_reads=result.normal_dummy_reads,
        fat_dummy_reads=result.fat_dummy_reads,
        memory_saving=round(result.fat_memory_saving_fraction, 3),
        dummy_reduction=round(result.dummy_read_reduction_fraction, 3),
    )
    assert result.fat_memory_bytes < result.normal_memory_bytes
    assert 0.05 < result.fat_memory_saving_fraction < 0.35
    assert result.fat_dummy_reads <= result.normal_dummy_reads
