"""Table I benchmark: embedding-table memory requirement per organisation.

Paper values (GiB): 8M = 1/8/8/10, 16M = 2/16/16/24, Kaggle = 1.2/16/16/20.3,
XNLI = 1/16/16/20.5.  The reproduction matches the Insecure/PathORAM/LAORAM
columns via the same tree arithmetic and reproduces the fat-tree column with
the per-level-increment growth policy (~25% overhead); deviations are
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.table1 import run_table1
from repro.utils.units import GiB

from .conftest import record


def test_table1_memory_requirement(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    by_name = {row.workload: row for row in rows}
    record(
        benchmark,
        **{
            f"{row.workload}_{column}": cells[column]
            for row in rows
            for cells in [row.formatted()]
            for column in ("insecure", "pathoram", "laoram", "fat")
        },
    )
    assert by_name["8M"].insecure_bytes == 1 * GiB
    assert by_name["8M"].pathoram_bytes == pytest.approx(8 * GiB, rel=1e-6)
    assert by_name["8M"].fat_bytes == pytest.approx(10 * GiB, rel=0.01)
    assert by_name["16M"].pathoram_bytes == pytest.approx(16 * GiB, rel=1e-6)
    assert by_name["Kaggle"].insecure_bytes == pytest.approx(1.2 * GiB, rel=0.05)
    assert by_name["Kaggle"].pathoram_bytes == pytest.approx(16 * GiB, rel=1e-6)
    for row in rows:
        assert row.laoram_bytes == row.pathoram_bytes
        assert 1.2 < row.fat_overhead_vs_normal < 1.3
