"""Tests for byte/duration formatting helpers."""

import pytest

from repro.utils.units import GiB, KiB, MiB, format_bytes, format_duration, format_ratio


class TestFormatBytes:
    def test_small_counts_in_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib_mib_gib(self):
        assert format_bytes(2 * KiB) == "2.0 KiB"
        assert format_bytes(3 * MiB) == "3.0 MiB"
        assert format_bytes(8 * GiB) == "8.0 GiB"

    def test_fractional_values(self):
        assert format_bytes(1536) == "1.5 KiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-6) == "5.00 us"

    def test_milliseconds(self):
        assert format_duration(0.25) == "250.00 ms"

    def test_seconds_minutes_hours(self):
        assert format_duration(2.5) == "2.50 s"
        assert format_duration(120) == "2.00 min"
        assert format_duration(7200) == "2.00 h"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-0.1)


class TestFormatRatio:
    def test_ratio_formatting(self):
        assert format_ratio(5.021) == "5.02x"
