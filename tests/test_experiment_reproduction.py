"""Reproduction checks: every table/figure module produces the paper's shape.

These run at the tiny scale so the whole file stays fast; the benchmark
harness repeats them at larger scales.
"""

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.figure7 import SUBFIGURES, run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9, theoretical_traffic_bound
from repro.experiments.memory_neutral import run_memory_neutral
from repro.experiments.ring_comparison import run_ring_comparison
from repro.experiments.scale import ExperimentScale, TINY
from repro.experiments.table1 import TABLE1_WORKLOADS, run_table1
from repro.experiments.table2 import run_table2
from repro.utils.units import GiB

_FAST = ExperimentScale(name="test", num_blocks=512, num_accesses=2048)


class TestFigure2:
    def test_random_bulk_plus_hot_band(self):
        result = run_figure2(num_accesses=5000, num_blocks=200_000, seed=1)
        assert result.looks_random_with_hot_band
        assert len(result.indices) == 5000


class TestFigure7:
    def test_all_subfigures_are_defined(self):
        assert set(SUBFIGURES) == {"7a", "7b", "7c", "7d", "7e", "7f"}

    def test_kaggle_laoram_beats_pathoram(self):
        result = run_figure7("7e", _FAST, seed=2)
        assert result.speedups["PathORAM"] == pytest.approx(1.0)
        assert result.speedups["Normal/S4"] > 1.5
        assert result.best_speedup > 2.0

    def test_xnli_shows_largest_speedups(self):
        kaggle = run_figure7("7e", _FAST, seed=3)
        xnli = run_figure7("7f", _FAST, seed=3)
        assert xnli.best_speedup >= kaggle.best_speedup * 0.8

    def test_permutation_speedups_are_modest(self):
        """The worst-case dataset gains less than the ML workloads (Fig. 7a vs 7e)."""
        permutation = run_figure7("7a", _FAST, seed=4)
        kaggle = run_figure7("7e", _FAST, seed=4)
        assert permutation.speedups["Normal/S8"] <= kaggle.speedups["Normal/S8"] * 1.2

    def test_unknown_subfigure_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_figure7("7z", TINY)


class TestFigure8:
    def test_normal_tree_stash_grows_faster_than_fat(self):
        result = run_figure8(_FAST, seed=5)
        assert result.final_occupancy["Normal-4"] > result.final_occupancy["Fat-4"]
        assert result.final_occupancy["Normal-8"] > result.final_occupancy["Fat-8"]

    def test_histories_are_recorded_per_access(self):
        result = run_figure8(ExperimentScale(name="t", num_blocks=256, num_accesses=512))
        for history in result.histories.values():
            assert len(history) > 0


class TestFigure9:
    def test_normal_s2_reaches_its_theoretical_bound(self):
        """Paper: Normal/S2's measured reduction matches the bound of 2x."""
        result = run_figure9(_FAST, seed=6)
        assert result.reductions["Normal/S2"] == pytest.approx(2.0, rel=0.15)

    def test_reductions_respect_bounds(self):
        result = run_figure9(_FAST, seed=6)
        for label in result.reductions:
            assert result.within_bound(label, tolerance=1.10)

    def test_theoretical_bounds(self):
        assert theoretical_traffic_bound("Normal/S4") == pytest.approx(4.0)
        assert theoretical_traffic_bound("Fat/S4", bucket_size=4) == pytest.approx(
            2 * 5 / 13 * 4
        )
        assert theoretical_traffic_bound("PathORAM") == 1.0


class TestTable1:
    def test_paper_workloads_present(self):
        assert set(TABLE1_WORKLOADS) == {"8M", "16M", "Kaggle", "XNLI"}

    def test_8m_row_matches_paper(self):
        rows = {row.workload: row for row in run_table1()}
        row = rows["8M"]
        assert row.insecure_bytes == 1 * GiB
        assert row.pathoram_bytes == pytest.approx(8 * GiB, rel=1e-6)
        assert row.laoram_bytes == row.pathoram_bytes
        assert row.fat_overhead_vs_normal == pytest.approx(1.25, rel=0.01)

    def test_kaggle_row_matches_paper(self):
        rows = {row.workload: row for row in run_table1()}
        row = rows["Kaggle"]
        assert row.insecure_bytes == pytest.approx(1.2 * GiB, rel=0.05)
        assert row.pathoram_bytes == pytest.approx(16 * GiB, rel=1e-6)

    def test_pathoram_overhead_is_about_8x(self):
        for row in run_table1():
            assert row.pathoram_overhead >= 6.0


class TestTable2:
    def test_fat_tree_reduces_dummy_reads_on_permutation(self):
        result = run_table2(_FAST, seed=7)
        normal = result.value("Normal/S8", "permutation")
        fat = result.value("Fat/S8", "permutation")
        assert fat <= normal

    def test_ml_workloads_have_fewer_dummy_reads_than_permutation(self):
        result = run_table2(_FAST, seed=7)
        for config in ("Normal/S8", "Fat/S8"):
            assert result.value(config, "xnli") <= result.value(config, "permutation")

    def test_all_cells_are_present(self):
        result = run_table2(_FAST, seed=7)
        for config in ("Fat/S8", "Fat/S4", "Normal/S8", "Normal/S4"):
            for dataset in ("permutation", "gaussian", "kaggle", "xnli"):
                assert result.value(config, dataset) >= 0.0


class TestMemoryNeutral:
    def test_fat_tree_uses_less_memory_than_enlarged_normal_tree(self):
        result = run_memory_neutral(_FAST, seed=8)
        assert result.fat_memory_bytes < result.normal_memory_bytes
        assert 0.05 < result.fat_memory_saving_fraction < 0.35

    def test_fat_tree_does_not_need_more_dummy_reads(self):
        result = run_memory_neutral(_FAST, seed=8)
        assert result.fat_dummy_reads <= result.normal_dummy_reads


class TestRingComparison:
    def test_ring_oram_moves_fewer_bytes_than_pathoram(self):
        result = run_ring_comparison(_FAST, seed=9)
        assert result.bytes_per_access("RingORAM") < result.bytes_per_access("PathORAM")

    def test_laoram_is_fastest_of_the_three(self):
        result = run_ring_comparison(_FAST, seed=9)
        assert result.speedup_over_pathoram("Fat/S4") > 1.0
