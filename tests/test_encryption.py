"""Tests for the counter-mode block cipher protecting server contents."""

import pytest

from repro.memory.encryption import BlockCipher


class TestBlockCipher:
    def test_round_trip(self):
        cipher = BlockCipher(key=b"0" * 32)
        plaintext = b"embedding row payload" * 10
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        cipher = BlockCipher(key=b"0" * 32)
        plaintext = b"x" * 128
        ciphertext = cipher.encrypt(plaintext)
        assert plaintext not in ciphertext

    def test_probabilistic_encryption(self):
        """Re-encrypting the same payload must produce different ciphertexts."""
        cipher = BlockCipher(key=b"0" * 32)
        plaintext = b"same payload"
        assert cipher.encrypt(plaintext) != cipher.encrypt(plaintext)

    def test_different_keys_produce_different_ciphertexts(self):
        a = BlockCipher(key=b"a" * 32)
        b = BlockCipher(key=b"b" * 32)
        plaintext = b"payload"
        assert a.encrypt(plaintext)[16:] != b.encrypt(plaintext)[16:]

    def test_wrong_key_does_not_decrypt(self):
        a = BlockCipher(key=b"a" * 32)
        b = BlockCipher(key=b"b" * 32)
        ciphertext = a.encrypt(b"secret")
        assert b.decrypt(ciphertext) != b"secret"

    def test_empty_payload_round_trip(self):
        cipher = BlockCipher(key=b"k" * 32)
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            BlockCipher(key=b"short")

    def test_truncated_ciphertext_rejected(self):
        cipher = BlockCipher(key=b"k" * 32)
        with pytest.raises(ValueError):
            cipher.decrypt(b"tooshort")

    def test_encryption_counter_increments(self):
        cipher = BlockCipher(key=b"k" * 32)
        cipher.encrypt(b"a")
        cipher.encrypt(b"b")
        assert cipher.encryptions_performed == 2

    def test_random_key_round_trip(self):
        cipher = BlockCipher()
        payload = bytes(range(256))
        assert cipher.decrypt(cipher.encrypt(payload)) == payload
