"""Adversarial invariants for the cross-path batched write-back planner.

``plan_batched_write_back`` plans the eviction for every path a batch
touched in one vectorized pass and commits with one scatter.  These tests
hammer it with randomized batches — overlapping paths, duplicate leaves,
batch sizes from 1 to 64, uniform and fat trees — and check, against the
same engine running the sequential per-path loop, that every round leaves

* the tree's slot array, occupancy vector and stash rows bit-identical,
* no block lost or duplicated (conservation over tree + stash),
* every bucket within capacity with occupied slots as a dense prefix, and
* every evicted block on a bucket its assigned path passes through.

The driver calls the engine's storage hooks (``_read_paths_into_stash`` /
``_write_back_many``) directly so batches are adversarial rather than
whatever the access protocol happens to produce.
"""

import numpy as np
import pytest

from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.config import ORAMConfig

NUM_BLOCKS = 512
NUM_ROUNDS = 30


def make_engine(seed: int, fat_tree: bool, batched: bool) -> ArrayPathORAM:
    config = ORAMConfig(
        num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=seed, fat_tree=fat_tree
    )
    engine = ArrayPathORAM(config)
    engine.batched_write_back = batched
    return engine


def assert_invariants(engine: ArrayPathORAM) -> None:
    """Structural soundness of tree + stash after any batch."""
    tree = engine.tree
    stash = engine.stash
    pm_leaves = engine.position_map.leaves
    depth = tree.depth
    seen: list[np.ndarray] = []
    for level in range(depth + 1):
        capacity = tree.capacity_at_level(level)
        slots = tree._level_slots(level)
        occ = tree._level_occ(level)
        # Within capacity, and occupied slots form a dense real-id prefix.
        assert occ.max(initial=0) <= capacity
        counts = (slots >= 0).sum(axis=1)
        assert np.array_equal(counts, occ)
        order = np.argsort(slots < 0, axis=1, kind="stable")
        assert np.array_equal(np.take_along_axis(slots, order, axis=1), slots)
        # Path-prefix rule: a stored block's assigned path must pass through
        # the node holding it.
        nodes, slot_cols = np.nonzero(slots >= 0)
        ids = slots[nodes, slot_cols]
        assert np.array_equal(pm_leaves[ids] >> (depth - level), nodes)
        seen.append(ids)
    tail = stash.tail
    stash_ids = stash.id_rows[:tail]
    real = stash_ids >= 0
    # The stash's leaf mirror agrees with the position map.
    assert np.array_equal(
        stash.leaf_rows[:tail][real], pm_leaves[stash_ids[real]]
    )
    seen.append(stash_ids[real])
    # Conservation: every block exactly once across tree + stash.
    all_ids = np.sort(np.concatenate(seen))
    assert np.array_equal(all_ids, np.arange(NUM_BLOCKS))


def assert_engines_identical(batched: ArrayPathORAM, sequential: ArrayPathORAM):
    assert np.array_equal(batched.tree._slots, sequential.tree._slots)
    assert np.array_equal(batched.tree._occ, sequential.tree._occ)
    assert batched.stash.tail == sequential.stash.tail
    tail = batched.stash.tail
    assert np.array_equal(
        batched.stash.id_rows[:tail], sequential.stash.id_rows[:tail]
    )
    assert np.array_equal(
        batched.stash.leaf_rows[:tail], sequential.stash.leaf_rows[:tail]
    )
    assert np.array_equal(batched.stash.row_of, sequential.stash.row_of)


def drive_round(engine: ArrayPathORAM, rng: np.random.Generator) -> None:
    """One adversarial batch: fetch, churn leaves, write back."""
    num_leaves = engine.config.num_leaves
    batch = rng.integers(1, 65)
    draws = rng.integers(0, num_leaves, size=batch).tolist()
    # First-encounter dedup, like the access protocols; duplicates in the
    # raw draw exercise the planner's tolerance for repeated leaves too.
    leaves = list(dict.fromkeys(draws))
    engine._read_paths_into_stash(leaves, dummy=False)
    # Churn: remap a random slice of the stash-resident blocks so write-back
    # eligibility differs from where the blocks were fetched.
    resident = [b for b in engine.stash.block_ids]
    if resident:
        take = int(rng.integers(0, len(resident) + 1))
        new_leaves = rng.integers(0, num_leaves, size=take)
        for block_id, leaf in zip(resident[:take], new_leaves.tolist()):
            engine._update_leaf(int(block_id), int(leaf))
    engine._write_back_many(leaves)


class TestBatchedPlannerDifferential:
    """Batched plan == sequential per-path loop, bit for bit, every round."""

    @pytest.mark.parametrize("fat_tree", [False, True])
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_batches_stay_identical(self, seed, fat_tree):
        batched = make_engine(seed, fat_tree, batched=True)
        sequential = make_engine(seed, fat_tree, batched=False)
        assert_engines_identical(batched, sequential)
        for round_index in range(NUM_ROUNDS):
            # Same driver stream for both engines.
            drive_round(batched, np.random.default_rng((seed, round_index)))
            drive_round(sequential, np.random.default_rng((seed, round_index)))
            assert_engines_identical(batched, sequential)
            assert_invariants(batched)

    def test_duplicate_leaves_in_one_batch(self):
        engine = make_engine(3, False, batched=True)
        twin = make_engine(3, False, batched=False)
        num_leaves = engine.config.num_leaves
        leaf_a, leaf_b = 0, num_leaves - 1
        for target in (engine, twin):
            target._read_paths_into_stash([leaf_a, leaf_b], dummy=False)
            target._write_back_many([leaf_a, leaf_b, leaf_a, leaf_b])
        assert_engines_identical(engine, twin)
        assert_invariants(engine)

    def test_single_leaf_batch_uses_sequential_path(self):
        # A 1-element batch must behave exactly like a plain write-back.
        engine = make_engine(5, False, batched=True)
        twin = make_engine(5, False, batched=False)
        for target in (engine, twin):
            target._read_paths_into_stash([4], dummy=False)
            target._write_back_many([4])
        assert_engines_identical(engine, twin)
        assert_invariants(engine)

    def test_empty_stash_write_back(self):
        # Planning over an empty stash must commit nothing and not crash.
        engine = make_engine(9, False, batched=True)
        engine.stash.clear()
        before_slots = engine.tree._slots.copy()
        occupied = np.sort(before_slots[before_slots >= 0])
        engine._write_back_many([0, 1, 2, 3])
        assert np.array_equal(
            np.sort(engine.tree._slots[engine.tree._slots >= 0]), occupied
        )

    def test_overlapping_paths_share_buckets_once(self):
        # Adjacent leaves share all buckets above their split level; the
        # planner must fill the shared buckets once, not once per path.
        engine = make_engine(11, False, batched=True)
        num_leaves = engine.config.num_leaves
        leaves = [0, 1, 2, 3, num_leaves - 1]
        engine._read_paths_into_stash(leaves, dummy=False)
        engine._write_back_many(leaves)
        assert_invariants(engine)


class TestBatchedAccessInvariants:
    """End-to-end: the batched access protocol preserves the invariants."""

    @pytest.mark.parametrize("batch_size", [1, 16, 64])
    def test_access_many_rounds(self, batch_size):
        config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=2)
        engine = ArrayPathORAM(config, batch_size=batch_size)
        rng = np.random.default_rng(8)
        for _ in range(6):
            trace = rng.integers(0, NUM_BLOCKS, size=200).tolist()
            engine.access_many(trace)
            assert_invariants(engine)

    def test_write_many_payloads_survive_batching(self):
        config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=4)
        engine = ArrayPathORAM(config, batch_size=32)
        ids = list(range(100))
        engine.write_many(ids, [f"v{i}" for i in ids])
        # Duplicates in one chunk: last write wins, like a sequential stream.
        engine.write_many([7, 7, 7], ["a", "b", "c"])
        got = engine.access_many(ids)
        expected = [f"v{i}" for i in ids]
        expected[7] = "c"
        assert got == expected
        assert_invariants(engine)
