"""End-to-end tests of the oblivious embedding trainers."""

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.kaggle import SyntheticCriteoDataset
from repro.datasets.xnli import SyntheticXNLIDataset
from repro.embedding.dlrm import DLRMModel
from repro.embedding.secure_loader import SecureEmbeddingStore
from repro.embedding.table import EmbeddingTable
from repro.embedding.trainer import ObliviousEmbeddingTrainer
from repro.embedding.xlmr import XLMRClassifier
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM

EMBED_DIM = 8
TABLE_ROWS = 128


def make_store(use_laoram: bool):
    config = ORAMConfig(num_blocks=TABLE_ROWS, block_size_bytes=EMBED_DIM * 4, seed=31)
    if use_laoram:
        engine = LAORAMClient(LAORAMConfig(oram=config, superblock_size=4))
    else:
        engine = PathORAM(config)
    table = EmbeddingTable(TABLE_ROWS, EMBED_DIM, seed=2)
    return SecureEmbeddingStore(engine, table)


class TestDLRMTraining:
    @pytest.mark.parametrize("use_laoram", [False, True], ids=["pathoram", "laoram"])
    def test_epoch_produces_finite_metrics(self, use_laoram):
        dataset = SyntheticCriteoDataset(
            num_samples=40, largest_table_rows=TABLE_ROWS, seed=4
        )
        model = DLRMModel(
            num_dense_features=13,
            small_table_sizes=dataset.table_sizes[:-1],
            embedding_dim=EMBED_DIM,
            seed=0,
        )
        trainer = ObliviousEmbeddingTrainer(make_store(use_laoram))
        report = trainer.train_dlrm_epoch(model, dataset, max_samples=40)
        assert np.isfinite(report.mean_loss)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.embedding_accesses >= 40

    def test_laoram_fetches_fewer_paths_than_pathoram(self):
        dataset = SyntheticCriteoDataset(
            num_samples=60, largest_table_rows=TABLE_ROWS, seed=5
        )
        reports = {}
        for use_laoram in (False, True):
            model = DLRMModel(
                num_dense_features=13,
                small_table_sizes=dataset.table_sizes[:-1],
                embedding_dim=EMBED_DIM,
                seed=0,
            )
            trainer = ObliviousEmbeddingTrainer(make_store(use_laoram))
            reports[use_laoram] = trainer.train_dlrm_epoch(model, dataset, max_samples=60)
        assert reports[True].path_reads < reports[False].path_reads


class TestXLMRTraining:
    def test_epoch_trains_and_counts_token_accesses(self):
        dataset = SyntheticXNLIDataset(
            num_samples=12, vocabulary_size=TABLE_ROWS, sequence_length=4, seed=6
        )
        model = XLMRClassifier(embedding_dim=EMBED_DIM, seed=0)
        trainer = ObliviousEmbeddingTrainer(make_store(True))
        report = trainer.train_xlmr_epoch(model, dataset, max_samples=12)
        assert report.embedding_accesses >= 12 * 4
        assert np.isfinite(report.mean_loss)

    def test_learning_signal_over_epochs(self):
        dataset = SyntheticXNLIDataset(
            num_samples=30, vocabulary_size=TABLE_ROWS, sequence_length=4, seed=7
        )
        model = XLMRClassifier(embedding_dim=EMBED_DIM, learning_rate=0.3, seed=0)
        trainer = ObliviousEmbeddingTrainer(make_store(False))
        first = trainer.train_xlmr_epoch(model, dataset)
        second = trainer.train_xlmr_epoch(model, dataset)
        assert second.mean_loss <= first.mean_loss * 1.05
