"""Tests for trace serialization and the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.datasets.base import AccessTrace
from repro.datasets.io import load_trace, save_trace
from repro.datasets.permutation import PermutationTraceGenerator
from repro.exceptions import TraceError
from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = PermutationTraceGenerator(64, seed=1).generate(128)
        path = save_trace(trace, tmp_path / "perm.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.num_blocks == trace.num_blocks
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_suffix_is_added(self, tmp_path):
        trace = AccessTrace("t", 8, np.array([1, 2, 3]))
        path = save_trace(trace, tmp_path / "mytrace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "missing.npz")

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, addresses=np.array([1, 2]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_creates_parent_directories(self, tmp_path):
        trace = AccessTrace("t", 8, np.array([0]))
        path = save_trace(trace, tmp_path / "nested" / "dir" / "trace.npz")
        assert path.exists()


class TestAsciiCharts:
    def test_bar_chart_contains_all_labels_and_values(self):
        chart = ascii_bar_chart({"PathORAM": 1.0, "Fat/S8": 4.7})
        assert "PathORAM" in chart
        assert "4.70x" in chart
        assert "#" in chart

    def test_bar_chart_scales_to_peak(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_rejects_empty_or_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 0.0})

    def test_line_chart_shape(self):
        chart = ascii_line_chart(
            {"normal": list(range(100)), "fat": [v / 3 for v in range(100)]},
            width=40,
            height=8,
            title="stash growth",
        )
        lines = chart.splitlines()
        assert lines[0] == "stash growth"
        assert len(lines) == 1 + 8 + 2
        assert "*=normal" in lines[-1]

    def test_line_chart_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": []})
