"""Tests for the ORAM-backed embedding store."""

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.embedding.secure_loader import SecureEmbeddingStore
from repro.embedding.table import EmbeddingTable
from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.ring_oram import RingORAM


def make_store(engine_factory, num_rows=64, dim=8):
    config = ORAMConfig(num_blocks=num_rows, block_size_bytes=dim * 4, seed=21)
    engine = engine_factory(config)
    table = EmbeddingTable(num_rows, dim, seed=5)
    return SecureEmbeddingStore(engine, table), table


class TestSecureEmbeddingStore:
    @pytest.mark.parametrize(
        "factory",
        [
            PathORAM,
            InsecureMemory,
            RingORAM,
            lambda cfg: LAORAMClient(LAORAMConfig(oram=cfg, superblock_size=4)),
        ],
        ids=["pathoram", "insecure", "ringoram", "laoram"],
    )
    def test_fetch_matches_plaintext_table(self, factory):
        store, table = make_store(factory)
        ids = np.array([0, 5, 9, 33])
        fetched = store.fetch_rows(ids)
        assert np.allclose(fetched, table.lookup(ids))

    def test_update_then_fetch_round_trip(self):
        store, _ = make_store(PathORAM)
        new_values = np.full((2, 8), 3.5, dtype=np.float32)
        store.update_rows([10, 11], new_values)
        assert np.allclose(store.fetch_rows([10, 11]), 3.5)

    def test_updates_survive_other_traffic(self):
        store, _ = make_store(PathORAM)
        store.update_rows([7], np.full((1, 8), -1.0, dtype=np.float32))
        rng = np.random.default_rng(0)
        store.fetch_rows(rng.integers(0, 64, size=50))
        assert np.allclose(store.fetch_rows([7]), -1.0)

    def test_materialize_recovers_full_table(self):
        store, table = make_store(PathORAM, num_rows=32)
        recovered = store.materialize()
        assert np.allclose(recovered.weights, table.weights)

    def test_laoram_batched_fetch_counts_every_access(self):
        store, _ = make_store(
            lambda cfg: LAORAMClient(LAORAMConfig(oram=cfg, superblock_size=4))
        )
        store.fetch_rows(np.arange(16))
        assert store.memory.statistics.logical_accesses == 16

    def test_table_larger_than_oram_rejected(self):
        config = ORAMConfig(num_blocks=16, block_size_bytes=32)
        engine = PathORAM(config)
        table = EmbeddingTable(32, 8, seed=0)
        with pytest.raises(ConfigurationError):
            SecureEmbeddingStore(engine, table)

    def test_invalid_row_ids_rejected(self):
        store, _ = make_store(PathORAM)
        with pytest.raises(ConfigurationError):
            store.fetch_rows([])
        with pytest.raises(ConfigurationError):
            store.fetch_rows([999])
        with pytest.raises(ConfigurationError):
            store.update_rows([0], np.ones((1, 3), dtype=np.float32))
