"""Security-analysis tests: the observable path stream must stay uniform.

Section VI of the paper proves that superblock path reassignment preserves
PathORAM's obliviousness because every new path is drawn uniformly and
independently of the data.  These tests check the empirical counterpart on
the simulator: the sequence of leaf labels an adversary observes passes a
chi-square uniformity test and is (nearly) independent of the true accesses,
for PathORAM and for LAORAM in both tree organisations.
"""

import numpy as np
import pytest

from repro.attacks.analysis import analyze_path_obliviousness
from repro.attacks.observer import MemoryBusObserver
from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.kaggle import SyntheticKaggleTrace
from repro.datasets.permutation import PermutationTraceGenerator
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM
from repro.utils.stats import chi_square_uniformity

NUM_BLOCKS = 256
NUM_ACCESSES = 2048


def observed_paths_for(engine_builder, trace):
    observer = MemoryBusObserver()
    engine = engine_builder(observer)
    if isinstance(engine, LAORAMClient):
        engine.run_trace(trace.addresses)
    else:
        engine.access_many(trace.addresses)
    return observer.observed_paths


@pytest.fixture(scope="module")
def kaggle_trace():
    return SyntheticKaggleTrace(num_blocks=NUM_BLOCKS, hot_band_size=16, seed=3).generate(
        NUM_ACCESSES
    )


@pytest.fixture(scope="module")
def permutation_trace_module():
    return PermutationTraceGenerator(NUM_BLOCKS, seed=4).generate(NUM_ACCESSES)


class TestPathUniformity:
    def test_pathoram_paths_are_uniform(self, kaggle_trace):
        config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=64, seed=0)
        paths = observed_paths_for(lambda obs: PathORAM(config, observer=obs), kaggle_trace)
        result = chi_square_uniformity(paths, config.num_leaves)
        assert not result.rejects_uniformity(alpha=0.001)

    @pytest.mark.parametrize("fat", [False, True], ids=["normal", "fat"])
    @pytest.mark.parametrize("superblock", [2, 4, 8])
    def test_laoram_paths_are_uniform(self, kaggle_trace, superblock, fat):
        config = LAORAMConfig(
            oram=ORAMConfig(
                num_blocks=NUM_BLOCKS, block_size_bytes=64, fat_tree=fat, seed=superblock
            ),
            superblock_size=superblock,
        )
        paths = observed_paths_for(
            lambda obs: LAORAMClient(config, observer=obs), kaggle_trace
        )
        result = chi_square_uniformity(paths, config.oram.num_leaves)
        assert not result.rejects_uniformity(alpha=0.001)

    def test_laoram_paths_are_uniform_on_permutation(self, permutation_trace_module):
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=64, seed=9),
            superblock_size=4,
        )
        paths = observed_paths_for(
            lambda obs: LAORAMClient(config, observer=obs), permutation_trace_module
        )
        result = chi_square_uniformity(paths, config.oram.num_leaves)
        assert not result.rejects_uniformity(alpha=0.001)


class TestIndependenceFromAccessStream:
    def test_laoram_observations_carry_no_usable_information(self, kaggle_trace):
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=64, seed=10),
            superblock_size=4,
        )
        observer = MemoryBusObserver()
        client = LAORAMClient(config, observer=observer)
        client.run_trace(kaggle_trace.addresses)
        report = analyze_path_obliviousness(
            kaggle_trace.addresses.tolist(),
            observer.observed_paths,
            num_leaves=config.oram.num_leaves,
        )
        assert report.looks_oblivious

    def test_repeated_access_to_same_block_uses_fresh_paths(self):
        """Re-accessing one block must not reveal the repetition via its path."""
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=64, seed=11),
            superblock_size=2,
        )
        observer = MemoryBusObserver()
        client = LAORAMClient(config, observer=observer)
        repeated = np.zeros(512, dtype=np.int64)  # always block 0
        client.run_trace(repeated)
        paths = observer.observed_paths
        # The same block is fetched many times; the observed leaves must not
        # repeat systematically (uniformity over leaves).
        result = chi_square_uniformity(paths, config.oram.num_leaves)
        assert not result.rejects_uniformity(alpha=0.001)
