"""Cross-family equivalence harness: reference engines vs their array twins.

One parametrized suite asserts, for every engine family with a vectorized
twin (pathoram, laoram, ringoram, proram static+dynamic), on uniform and
Zipf traces and across seeds, that a fixed seed produces:

* bit-identical :class:`~repro.memory.accounting.TrafficSnapshot` counters,
* identical position maps and stash contents (same ids, same order), and
* block conservation plus position-map / tree / stash coherence on both
  backends.

This replaces the ad-hoc PathORAM-only equivalence checks that used to live
in ``tests/test_array_engine.py``: the guarantee "decision-identical for a
fixed seed" is now enforced uniformly wherever ``build_engine(fast=True)``
offers a twin, so a divergence introduced in any family's hot path fails
here before it can skew a baseline comparison.
"""

import numpy as np
import pytest

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import UnsupportedEngineError
from repro.experiments.configs import FAST_ENGINE_FAMILIES, build_engine
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.engine import ArrayStorageEngine
from repro.oram.pr_oram import ArrayPrORAM
from repro.oram.ring_oram import ArrayRingORAM
from repro.oram.config import ORAMConfig

NUM_BLOCKS = 256
NUM_ACCESSES = 1_200

#: Every family with a fast twin, via the configuration label the harness
#: uses to build it (PrORAM is exercised in both superblock modes).
FAMILY_LABELS = (
    "PathORAM",
    "Normal/S4",
    "RingORAM",
    "PrORAM-dynamic/S2",
    "PrORAM-static/S2",
)


def make_trace(workload: str, seed: int) -> np.ndarray:
    if workload == "uniform":
        rng = np.random.default_rng(seed)
        return rng.integers(0, NUM_BLOCKS, size=NUM_ACCESSES).astype(np.int64)
    return ZipfTraceGenerator(NUM_BLOCKS, exponent=1.2, seed=seed).generate(
        NUM_ACCESSES
    ).addresses


def run_engine(
    label: str, seed: int, trace: np.ndarray, fast: bool, fat_tree: bool = False
):
    config = ORAMConfig(
        num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=seed, fat_tree=fat_tree
    )
    engine = build_engine(label, config, fast=fast)
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(trace)
    else:
        engine.access_many(trace)
    return engine


def assert_engine_consistent(engine) -> None:
    """Block conservation plus position-map / tree-leaf / stash coherence."""
    num_blocks = engine.config.num_blocks
    depth = engine.config.depth
    pm = engine.position_map
    assert engine.total_real_blocks() == num_blocks
    seen: list[int] = []
    if isinstance(engine, ArrayStorageEngine):
        for level, node, ids in engine.tree.iter_node_ids():
            for block_id in ids.tolist():
                seen.append(block_id)
                # Path-prefix invariant: a stored block's assigned path must
                # pass through the bucket holding it.
                assert pm.get(block_id) >> (depth - level) == node
        for block_id in engine.stash.block_ids:
            seen.append(block_id)
            # The stash's leaf mirror must agree with the position map.
            assert engine.stash.leaf_of(block_id) == pm.get(block_id)
    else:
        for block in engine.tree.iter_blocks():
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
        for block in engine.stash:
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
    assert sorted(seen) == list(range(num_blocks))


class TestCrossFamilyEquivalence:
    """Fixed seed => bit-identical decisions on both storage backends."""

    @pytest.mark.parametrize("seed", [11, 29])
    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_snapshots_bit_identical(self, label, workload, seed):
        trace = make_trace(workload, seed)
        reference = run_engine(label, seed, trace, fast=False)
        fast = run_engine(label, seed, trace, fast=True)

        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)
        assert_engine_consistent(reference)
        assert_engine_consistent(fast)

    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_fat_tree_snapshots_bit_identical(self, label):
        # The fat tree's per-level capacities exercise the variable-capacity
        # slot arithmetic (templates, remove_on_path, try_place_id) that the
        # uniform-tree cases cannot.
        trace = make_trace("zipf", 17)
        reference = run_engine(label, 17, trace, fast=False, fat_tree=True)
        fast = run_engine(label, 17, trace, fast=True, fat_tree=True)
        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)
        assert_engine_consistent(fast)

    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_payloads_round_trip_identically(self, label):
        rng = np.random.default_rng(3)
        writes = rng.integers(0, NUM_BLOCKS, size=40).tolist()
        reads = rng.integers(0, NUM_BLOCKS, size=120).tolist()
        outputs = []
        for fast in (False, True):
            config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=5)
            engine = build_engine(label, config, fast=fast)
            for offset, block_id in enumerate(writes):
                engine.write(block_id, f"payload-{offset}")
            outputs.append(engine.access_many(reads))
        assert outputs[0] == outputs[1]


class TestFastEngineCoverage:
    """build_engine(fast=True) covers every tree family, and only those."""

    def test_every_family_has_a_fast_twin(self):
        config = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        expected = {
            "PathORAM": ArrayPathORAM,
            "RingORAM": ArrayRingORAM,
            "PrORAM-dynamic/S2": ArrayPrORAM,
            "PrORAM-static/S4": ArrayPrORAM,
        }
        for label, engine_cls in expected.items():
            engine = build_engine(label, config, fast=True)
            assert type(engine) is engine_cls
        assert FAST_ENGINE_FAMILIES == {"pathoram", "laoram", "ringoram", "proram"}

    def test_missing_twin_raises_typed_exception(self):
        config = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        with pytest.raises(UnsupportedEngineError) as excinfo:
            build_engine("Insecure", config, fast=True)
        message = str(excinfo.value)
        assert "no vectorized (fast=True) engine" in message
        assert "insecure" in message
        assert "Insecure" in message
