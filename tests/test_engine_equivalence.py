"""Cross-family equivalence harness: reference engines vs their array twins.

One parametrized suite asserts, for every engine family with a vectorized
twin (pathoram, laoram, ringoram, proram static+dynamic), on uniform and
Zipf traces and across seeds, that a fixed seed produces:

* bit-identical :class:`~repro.memory.accounting.TrafficSnapshot` counters,
* identical position maps and stash contents (same ids, same order), and
* block conservation plus position-map / tree / stash coherence on both
  backends.

This replaces the ad-hoc PathORAM-only equivalence checks that used to live
in ``tests/test_array_engine.py``: the guarantee "decision-identical for a
fixed seed" is now enforced uniformly wherever ``build_engine(fast=True)``
offers a twin, so a divergence introduced in any family's hot path fails
here before it can skew a baseline comparison.
"""

import numpy as np
import pytest

from repro.core.laoram import LookaheadClientMixin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import UnsupportedEngineError
from repro.experiments.configs import FAST_ENGINE_FAMILIES, build_engine
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.engine import ArrayStorageEngine
from repro.oram.pr_oram import ArrayPrORAM
from repro.oram.ring_oram import ArrayRingORAM
from repro.oram.config import ORAMConfig

NUM_BLOCKS = 256
NUM_ACCESSES = 1_200

#: Every family with a fast twin, via the configuration label the harness
#: uses to build it (PrORAM is exercised in both superblock modes).
FAMILY_LABELS = (
    "PathORAM",
    "Normal/S4",
    "RingORAM",
    "PrORAM-dynamic/S2",
    "PrORAM-static/S2",
)


def make_trace(workload: str, seed: int) -> np.ndarray:
    if workload == "uniform":
        rng = np.random.default_rng(seed)
        return rng.integers(0, NUM_BLOCKS, size=NUM_ACCESSES).astype(np.int64)
    return ZipfTraceGenerator(NUM_BLOCKS, exponent=1.2, seed=seed).generate(
        NUM_ACCESSES
    ).addresses


def run_engine(
    label: str,
    seed: int,
    trace: np.ndarray,
    fast: bool,
    fat_tree: bool = False,
    batch_size: int | None = None,
    batched_write_back: bool | None = None,
):
    config = ORAMConfig(
        num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=seed, fat_tree=fat_tree
    )
    engine = build_engine(
        label,
        config,
        fast=fast,
        batched=batch_size is not None,
        batch_size=batch_size or 64,
    )
    if batched_write_back is not None:
        engine.batched_write_back = batched_write_back
    if isinstance(engine, LookaheadClientMixin):
        engine.run_trace(trace)
    else:
        engine.access_many(trace)
    return engine


def assert_engine_consistent(engine) -> None:
    """Block conservation plus position-map / tree-leaf / stash coherence."""
    num_blocks = engine.config.num_blocks
    depth = engine.config.depth
    pm = engine.position_map
    assert engine.total_real_blocks() == num_blocks
    seen: list[int] = []
    if isinstance(engine, ArrayStorageEngine):
        for level, node, ids in engine.tree.iter_node_ids():
            for block_id in ids.tolist():
                seen.append(block_id)
                # Path-prefix invariant: a stored block's assigned path must
                # pass through the bucket holding it.
                assert pm.get(block_id) >> (depth - level) == node
        for block_id in engine.stash.block_ids:
            seen.append(block_id)
            # The stash's leaf mirror must agree with the position map.
            assert engine.stash.leaf_of(block_id) == pm.get(block_id)
    else:
        for block in engine.tree.iter_blocks():
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
        for block in engine.stash:
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
    assert sorted(seen) == list(range(num_blocks))


class TestCrossFamilyEquivalence:
    """Fixed seed => bit-identical decisions on both storage backends."""

    @pytest.mark.parametrize("seed", [11, 29])
    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_snapshots_bit_identical(self, label, workload, seed):
        trace = make_trace(workload, seed)
        reference = run_engine(label, seed, trace, fast=False)
        fast = run_engine(label, seed, trace, fast=True)

        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)
        assert_engine_consistent(reference)
        assert_engine_consistent(fast)

    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_fat_tree_snapshots_bit_identical(self, label):
        # The fat tree's per-level capacities exercise the variable-capacity
        # slot arithmetic (templates, remove_on_path, try_place_id) that the
        # uniform-tree cases cannot.
        trace = make_trace("zipf", 17)
        reference = run_engine(label, 17, trace, fast=False, fat_tree=True)
        fast = run_engine(label, 17, trace, fast=True, fat_tree=True)
        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)
        assert_engine_consistent(fast)

    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_payloads_round_trip_identically(self, label):
        rng = np.random.default_rng(3)
        writes = rng.integers(0, NUM_BLOCKS, size=40).tolist()
        reads = rng.integers(0, NUM_BLOCKS, size=120).tolist()
        outputs = []
        for fast in (False, True):
            config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=5)
            engine = build_engine(label, config, fast=fast)
            for offset, block_id in enumerate(writes):
                engine.write(block_id, f"payload-{offset}")
            outputs.append(engine.access_many(reads))
        assert outputs[0] == outputs[1]


class TestBatchedWriteBackDifferential:
    """Batched cross-path write-back == sequential per-path write-back.

    The array backend plans multi-path write-backs in one vectorized pass
    (``plan_batched_write_back``) and commits with one scatter; flipping
    ``batched_write_back`` off makes the same engine fall back to the
    per-path loop.  Both modes must be bit-identical — same counters, same
    position map, same stash rows — on every family, workload and seed.
    """

    @pytest.mark.parametrize("seed", [11, 29])
    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    @pytest.mark.parametrize("label", FAMILY_LABELS)
    def test_batched_write_back_bit_identical(self, label, workload, seed):
        trace = make_trace(workload, seed)
        batched = run_engine(label, seed, trace, fast=True)
        sequential = run_engine(
            label, seed, trace, fast=True, batched_write_back=False
        )
        assert batched.statistics == sequential.statistics
        assert np.array_equal(
            batched.position_map.as_array(), sequential.position_map.as_array()
        )
        assert list(batched.stash.block_ids) == list(sequential.stash.block_ids)
        assert_engine_consistent(batched)
        assert_engine_consistent(sequential)

    @pytest.mark.parametrize("seed", [11, 29])
    def test_batched_write_back_fat_tree(self, seed):
        # Fat-tree LAORAM: variable per-level capacities stress the planner's
        # occupancy carry-forward across shared buckets.
        trace = make_trace("zipf", seed)
        batched = run_engine("Normal/S4", seed, trace, fast=True, fat_tree=True)
        sequential = run_engine(
            "Normal/S4", seed, trace, fast=True, fat_tree=True,
            batched_write_back=False,
        )
        assert batched.statistics == sequential.statistics
        assert np.array_equal(
            batched.position_map.as_array(), sequential.position_map.as_array()
        )
        assert list(batched.stash.block_ids) == list(sequential.stash.block_ids)


class TestBatchedAccessEquivalence:
    """The chunked batched-access protocol is backend- and mode-consistent."""

    @pytest.mark.parametrize("batch_size", [4, 16, 64])
    def test_batched_object_vs_array_bit_identical(self, batch_size):
        # Both storage backends run the same batched control flow, so the
        # object engine is the reference for the array engine's batched path.
        trace = make_trace("zipf", 23)
        reference = run_engine(
            "PathORAM", 23, trace, fast=False, batch_size=batch_size
        )
        fast = run_engine("PathORAM", 23, trace, fast=True, batch_size=batch_size)
        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)
        assert_engine_consistent(reference)
        assert_engine_consistent(fast)

    @pytest.mark.parametrize("batch_size", [4, 64])
    def test_batched_fat_tree_bit_identical(self, batch_size):
        trace = make_trace("uniform", 31)
        reference = run_engine(
            "PathORAM", 31, trace, fast=False, fat_tree=True, batch_size=batch_size
        )
        fast = run_engine(
            "PathORAM", 31, trace, fast=True, fat_tree=True, batch_size=batch_size
        )
        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert list(fast.stash.block_ids) == list(reference.stash.block_ids)

    def test_batched_payloads_round_trip(self):
        # write_many + access_many through the batched protocol must return
        # exactly what a per-access engine returns, duplicates included.
        rng = np.random.default_rng(13)
        writes = rng.integers(0, NUM_BLOCKS, size=80).tolist()
        reads = (
            rng.integers(0, NUM_BLOCKS, size=200).tolist() + writes[:10] + writes[:10]
        )
        outputs = []
        for fast, batch_size in ((False, None), (True, None), (True, 16)):
            config = ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=32, seed=5)
            engine = build_engine(
                "PathORAM",
                config,
                fast=fast,
                batched=batch_size is not None,
                batch_size=batch_size or 64,
            )
            engine.write_many(
                writes, [f"payload-{i}" for i in range(len(writes))]
            )
            outputs.append(engine.access_many(reads))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_batch_size_one_equals_sequential(self):
        # batch_size=1 chunks degenerate to single accesses; the protocol
        # must collapse to the classic per-access loop, snapshot-identically.
        trace = make_trace("uniform", 7)
        plain = run_engine("PathORAM", 7, trace, fast=True)
        one = run_engine("PathORAM", 7, trace, fast=True, batch_size=1)
        assert plain.statistics == one.statistics
        assert np.array_equal(
            plain.position_map.as_array(), one.position_map.as_array()
        )


class TestFastEngineCoverage:
    """build_engine(fast=True) covers every tree family, and only those."""

    def test_every_family_has_a_fast_twin(self):
        config = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        expected = {
            "PathORAM": ArrayPathORAM,
            "RingORAM": ArrayRingORAM,
            "PrORAM-dynamic/S2": ArrayPrORAM,
            "PrORAM-static/S4": ArrayPrORAM,
        }
        for label, engine_cls in expected.items():
            engine = build_engine(label, config, fast=True)
            assert type(engine) is engine_cls
        assert FAST_ENGINE_FAMILIES == {"pathoram", "laoram", "ringoram", "proram"}

    def test_missing_twin_raises_typed_exception(self):
        config = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        with pytest.raises(UnsupportedEngineError) as excinfo:
            build_engine("Insecure", config, fast=True)
        message = str(excinfo.value)
        assert "no vectorized (fast=True) engine" in message
        assert "insecure" in message
        assert "Insecure" in message
