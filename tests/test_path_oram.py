"""Behavioural tests for the PathORAM baseline."""

import numpy as np
import pytest

from repro.exceptions import BlockNotFoundError
from repro.memory.accounting import TrafficCounter
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.path_oram import PathORAM


class TestConstruction:
    def test_every_block_is_stored_after_bulk_load(self, small_path_oram):
        assert small_path_oram.total_real_blocks() == small_path_oram.num_blocks

    def test_server_memory_matches_config(self, small_config):
        oram = PathORAM(small_config)
        assert oram.server_memory_bytes == small_config.server_memory_bytes

    def test_fat_tree_construction(self):
        config = ORAMConfig(num_blocks=128, bucket_size=4, fat_tree=True)
        oram = PathORAM(config)
        assert oram.tree.capacity_at_level(0) == 8
        assert oram.total_real_blocks() == 128


class TestAccessSemantics:
    def test_read_returns_loaded_payload(self, small_config):
        oram = PathORAM(small_config)
        oram.load_payloads({5: b"hello", 9: b"world"})
        assert oram.read(5) == b"hello"
        assert oram.read(9) == b"world"

    def test_write_then_read_round_trip(self, small_path_oram):
        small_path_oram.write(17, b"payload-17")
        assert small_path_oram.read(17) == b"payload-17"

    def test_write_survives_unrelated_traffic(self, small_path_oram, rng):
        small_path_oram.write(3, b"persistent")
        for block in rng.integers(0, 256, size=200):
            small_path_oram.read(int(block))
        assert small_path_oram.read(3) == b"persistent"

    def test_out_of_range_block_rejected(self, small_path_oram):
        with pytest.raises(BlockNotFoundError):
            small_path_oram.read(256)

    def test_access_many_preserves_order(self, small_config):
        oram = PathORAM(small_config)
        oram.load_payloads({i: f"row-{i}".encode() for i in range(10)})
        payloads = oram.access_many([3, 1, 4, 1, 5])
        assert payloads == [b"row-3", b"row-1", b"row-4", b"row-1", b"row-5"]

    def test_load_payloads_for_unknown_block_rejected(self, small_config):
        oram = PathORAM(small_config)
        with pytest.raises(BlockNotFoundError):
            oram.load_payloads({9999: b"x"})


class TestInvariants:
    def test_block_count_is_conserved(self, small_path_oram, permutation_trace):
        small_path_oram.access_many(permutation_trace.addresses[:300])
        assert small_path_oram.total_real_blocks() == small_path_oram.num_blocks

    def test_position_map_matches_block_location(self, small_path_oram, rng):
        """After any access, each block lies on its mapped path or in the stash."""
        for block_id in rng.integers(0, 256, size=100):
            small_path_oram.read(int(block_id))
        oram = small_path_oram
        stash_ids = set(oram.stash.block_ids)
        for block in oram.tree.iter_blocks():
            assert block.block_id not in stash_ids
            mapped_leaf = oram.position_map.get(block.block_id)
            assert block.leaf == mapped_leaf
            # The block must actually sit on the path to its mapped leaf.
            found = any(
                candidate.block_id == block.block_id
                for candidate in oram.tree.peek_path(mapped_leaf)
            )
            assert found

    def test_remap_changes_leaf_distribution(self, small_config):
        oram = PathORAM(small_config)
        before = oram.position_map.get(7)
        changed = False
        for _ in range(12):
            oram.read(7)
            if oram.position_map.get(7) != before:
                changed = True
                break
            before = oram.position_map.get(7)
        assert changed, "remapping never changed the block's path in 12 accesses"


class TestTrafficAccounting:
    def test_one_read_and_write_per_access(self, small_config):
        counter = TrafficCounter()
        oram = PathORAM(small_config, counter=counter)
        oram.access_many(list(range(50)))
        snap = counter.snapshot()
        assert snap.logical_accesses == 50
        # Stash hits can only reduce the count.
        assert snap.path_reads <= 50
        assert snap.path_reads >= 45
        assert snap.path_writes == snap.path_reads + snap.dummy_reads

    def test_bytes_proportional_to_path_size(self, small_config):
        counter = TrafficCounter()
        oram = PathORAM(small_config, counter=counter)
        oram.read(0)
        _, path_bytes = oram.tree.path_cost(0)
        assert counter.snapshot().bytes_read == path_bytes

    def test_simulated_time_increases(self, small_path_oram):
        before = small_path_oram.simulated_time_s
        small_path_oram.read(0)
        assert small_path_oram.simulated_time_s > before


class TestBackgroundEviction:
    def test_dummy_access_changes_no_position(self, small_config):
        oram = PathORAM(small_config)
        positions = oram.position_map.as_array().copy()
        oram.dummy_access()
        assert np.array_equal(oram.position_map.as_array(), positions)

    def test_eviction_drains_stash_to_target(self):
        config = ORAMConfig(
            num_blocks=256,
            bucket_size=2,
            eviction_threshold=20,
            eviction_target=5,
            seed=3,
        )
        policy = EvictionPolicy(trigger_threshold=20, drain_target=5)
        oram = PathORAM(config, eviction=policy)
        rng = np.random.default_rng(0)
        for block in rng.integers(0, 256, size=400):
            oram.read(int(block))
        assert len(oram.stash) <= 20 or oram.statistics.dummy_reads > 0

    def test_disabled_eviction_never_issues_dummies(self, small_config):
        oram = PathORAM(small_config, eviction=EvictionPolicy.disabled())
        rng = np.random.default_rng(0)
        for block in rng.integers(0, 256, size=300):
            oram.read(int(block))
        assert oram.statistics.dummy_reads == 0


class TestWriteOp:
    def test_write_op_updates_payload(self, small_config):
        oram = PathORAM(small_config)
        oram.access(12, AccessOp.WRITE, new_payload=b"v1")
        oram.access(12, AccessOp.WRITE, new_payload=b"v2")
        assert oram.read(12) == b"v2"

    def test_stash_hit_counter(self, small_config):
        oram = PathORAM(small_config)
        oram.read(1)
        hits_before = oram.stash_hits
        # The block may or may not be in the stash; force a hit by reading a
        # block known to be stashed if any exist.
        if oram.stash.block_ids:
            oram.read(oram.stash.block_ids[0])
            assert oram.stash_hits == hits_before + 1
