"""Tests for the insecure baseline memory."""

import pytest

from repro.attacks.observer import MemoryBusObserver
from repro.exceptions import BlockNotFoundError
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.insecure import InsecureMemory


@pytest.fixture
def memory():
    config = ORAMConfig(num_blocks=64, block_size_bytes=32)
    return InsecureMemory(config)


class TestInsecureMemory:
    def test_read_write_round_trip(self, memory):
        memory.write(3, b"value")
        assert memory.read(3) == b"value"

    def test_unwritten_block_reads_none(self, memory):
        assert memory.read(5) is None

    def test_load_payloads(self, memory):
        memory.load_payloads({0: b"a", 1: b"b"})
        assert memory.read(1) == b"b"

    def test_out_of_range_rejected(self, memory):
        with pytest.raises(BlockNotFoundError):
            memory.read(64)

    def test_server_memory_is_raw_table_size(self, memory):
        assert memory.server_memory_bytes == 64 * 32

    def test_traffic_counts_single_blocks(self, memory):
        memory.read(0)
        memory.access(1, AccessOp.WRITE, new_payload=b"x")
        snap = memory.statistics
        assert snap.logical_accesses == 2
        assert snap.bytes_read == 2 * 32
        assert snap.bytes_written == 32

    def test_observer_sees_true_addresses(self):
        observer = MemoryBusObserver()
        config = ORAMConfig(num_blocks=64, block_size_bytes=32)
        memory = InsecureMemory(config, observer=observer)
        for block in (5, 9, 5, 1):
            memory.read(block)
        assert observer.observed_addresses == [5, 9, 5, 1]

    def test_simulated_time_advances(self, memory):
        before = memory.simulated_time_s
        memory.read(0)
        assert memory.simulated_time_s > before
