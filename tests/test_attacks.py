"""Tests for the adversarial observers and leakage analysis."""

import pytest

from repro.attacks.analysis import (
    analyze_address_leakage,
    analyze_path_obliviousness,
    recover_access_histogram,
)
from repro.attacks.observer import CuriousOSObserver, MemoryBusObserver
from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.utils.rng import make_rng


class TestObservers:
    def test_memory_bus_observer_records_both_kinds(self):
        observer = MemoryBusObserver()
        observer.observe_address(5)
        observer.observe_path(3, dummy=True)
        assert observer.observed_addresses == [5]
        assert observer.observed_paths == [3]
        assert observer.observed_dummy_flags == [True]
        assert observer.num_observations == 2

    def test_reset(self):
        observer = MemoryBusObserver()
        observer.observe_address(1)
        observer.reset()
        assert observer.num_observations == 0

    def test_curious_os_page_and_cacheline_views(self):
        observer = CuriousOSObserver(
            block_size_bytes=128, page_size_bytes=4096, cache_line_bytes=128
        )
        observer.observe_address(33)  # byte 4224 -> page 1, line 33
        assert observer.observed_pages == [1]
        assert observer.observed_cache_lines == [33]

    def test_curious_os_recovers_block_ids_at_cacheline_granularity(self):
        observer = CuriousOSObserver(block_size_bytes=128, cache_line_bytes=128)
        for block in (7, 123, 7):
            observer.observe_address(block)
        assert observer.recovered_block_ids() == [7, 123, 7]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CuriousOSObserver(block_size_bytes=0)
        with pytest.raises(ConfigurationError):
            CuriousOSObserver(block_size_bytes=64, page_size_bytes=32, cache_line_bytes=64)


class TestLeakageAnalysis:
    def test_histogram_recovery(self):
        assert recover_access_histogram([1, 1, 2]) == {1: 2, 2: 1}

    def test_insecure_baseline_leaks_everything(self):
        config = ORAMConfig(num_blocks=64, block_size_bytes=128)
        observer = CuriousOSObserver(block_size_bytes=128, cache_line_bytes=128)
        memory = InsecureMemory(config, observer=observer)
        rng = make_rng(0)
        addresses = rng.integers(0, 64, size=400).tolist()
        for address in addresses:
            memory.read(int(address))
        report = analyze_address_leakage(addresses, observer.recovered_block_ids())
        assert report.top1_recovery_rate == 1.0
        assert report.leakage_fraction > 0.95

    def test_oram_path_stream_reveals_little(self):
        config = ORAMConfig(num_blocks=256, block_size_bytes=64, seed=8)
        observer = MemoryBusObserver()
        oram = PathORAM(config, observer=observer)
        rng = make_rng(1)
        addresses = rng.integers(0, 256, size=600).tolist()
        for address in addresses:
            oram.read(int(address))
        report = analyze_path_obliviousness(
            addresses, observer.observed_paths, num_leaves=config.num_leaves
        )
        assert report.looks_oblivious

    def test_skewed_path_stream_is_flagged(self):
        # A degenerate "ORAM" that always touches path 0 must fail the test.
        observed = [0] * 500
        report = analyze_path_obliviousness(
            list(range(500)), observed, num_leaves=16
        )
        assert not report.looks_oblivious

    def test_leakage_report_handles_empty_observations(self):
        report = analyze_address_leakage([1, 2, 3], [])
        assert report.mutual_information_bits == 0.0
        assert report.top1_recovery_rate == 0.0
