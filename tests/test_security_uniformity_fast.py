"""Access-pattern uniformity at paper scale, on the fast engines.

``tests/test_security_uniformity.py`` checks the per-object engines on a
256-block tree; this suite re-runs the same adversary at the embedding-table
sizes the paper evaluates (2^17 – 2^20 blocks) where only the vectorized
engines are fast enough, and adds the batched-access protocol to the matrix
(ROADMAP item 5c): batching amortises path reads across a chunk, and the
chunk boundary must not correlate the observable leaf stream.

At these tree sizes there are far more leaves than observations, so the raw
chi-square has no power; observed paths are coarsened onto 64 equal leaf
ranges (powers of two divide evenly) and uniformity is tested there.
Independence is checked as mutual information between 8-bin coarsened
addresses and paths, the same statistic ``analyze_path_obliviousness`` uses.
"""

import numpy as np
import pytest

from repro.attacks.observer import MemoryBusObserver
from repro.datasets.zipf import ZipfTraceGenerator
from repro.experiments.configs import build_engine, build_oram_config
from repro.utils.stats import chi_square_uniformity, mutual_information

NUM_ACCESSES = 4_000
COARSE_BINS = 64
ALPHA = 0.001


def coarsen(values: np.ndarray, domain: int, bins: int) -> np.ndarray:
    """Map integers in [0, domain) onto ``bins`` equal ranges."""
    return (np.asarray(values, dtype=np.int64) * bins) // domain


def observed_paths(label: str, num_blocks: int, trace, **build_kwargs):
    observer = MemoryBusObserver()
    config = build_oram_config(num_blocks=num_blocks, seed=7)
    engine = build_engine(
        label, config, fast=True, observer=observer, **build_kwargs
    )
    if hasattr(engine, "run_trace"):
        engine.run_trace(trace)
    else:
        engine.access_many(trace)
    # LAORAM's bins dedup shared paths, so the observation stream can be
    # several times shorter than the trace; it must still be large enough
    # for a powered 64-bin chi-square (>= ~8 expected per bin).
    assert len(observer.observed_paths) >= 500
    return np.asarray(observer.observed_paths, dtype=np.int64), config.num_leaves


def make_trace(num_blocks: int, seed: int = 3) -> np.ndarray:
    return ZipfTraceGenerator(num_blocks, exponent=1.2, seed=seed).generate(
        NUM_ACCESSES
    ).addresses


class TestFastEngineUniformity:
    """Every fast family's leaf stream is uniform at 2^17 blocks."""

    @pytest.mark.parametrize(
        "label",
        ["PathORAM", "Normal/S4", "RingORAM", "PrORAM-dynamic/S2"],
    )
    def test_paths_uniform_at_scale(self, label):
        num_blocks = 1 << 17
        trace = make_trace(num_blocks)
        paths, num_leaves = observed_paths(label, num_blocks, trace)
        coarse = coarsen(paths, num_leaves, COARSE_BINS)
        result = chi_square_uniformity(coarse, COARSE_BINS)
        assert not result.rejects_uniformity(alpha=ALPHA)


class TestBatchedAccessUniformity:
    """The batched protocol leaks nothing the per-access protocol doesn't."""

    @pytest.mark.parametrize("num_blocks", [1 << 17, 1 << 20])
    def test_batched_pathoram_paths_uniform(self, num_blocks):
        trace = make_trace(num_blocks)
        paths, num_leaves = observed_paths(
            "PathORAM", num_blocks, trace, batched=True, batch_size=64
        )
        coarse = coarsen(paths, num_leaves, COARSE_BINS)
        result = chi_square_uniformity(coarse, COARSE_BINS)
        assert not result.rejects_uniformity(alpha=ALPHA)

    def test_laoram_paths_uniform_at_paper_scale(self):
        num_blocks = 1 << 20
        trace = make_trace(num_blocks)
        paths, num_leaves = observed_paths("Normal/S4", num_blocks, trace)
        coarse = coarsen(paths, num_leaves, COARSE_BINS)
        result = chi_square_uniformity(coarse, COARSE_BINS)
        assert not result.rejects_uniformity(alpha=ALPHA)

    def test_batched_paths_independent_of_addresses(self):
        # Mutual information between coarsened addresses and the coarsened
        # observed leaves; an oblivious engine drives this to ~0 (the 0.25
        # threshold matches OblivionessReport.looks_oblivious).
        num_blocks = 1 << 17
        trace = make_trace(num_blocks)
        paths, num_leaves = observed_paths(
            "PathORAM", num_blocks, trace, batched=True, batch_size=64
        )
        length = min(len(trace), paths.size)
        info = mutual_information(
            coarsen(trace[:length], num_blocks, 8).tolist(),
            coarsen(paths[:length], num_leaves, 8).tolist(),
        )
        assert info < 0.25

    def test_batch_boundary_does_not_skew_leaf_stream(self):
        # Same trace, different chunkings: each chunking's stream must be
        # uniform on its own (the adversary knows the batch size).
        num_blocks = 1 << 17
        trace = make_trace(num_blocks, seed=13)
        for batch_size in (8, 64):
            paths, num_leaves = observed_paths(
                "PathORAM", num_blocks, trace, batched=True, batch_size=batch_size
            )
            coarse = coarsen(paths, num_leaves, COARSE_BINS)
            result = chi_square_uniformity(coarse, COARSE_BINS)
            assert not result.rejects_uniformity(alpha=ALPHA)
