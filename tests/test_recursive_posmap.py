"""Recursive ORAM-backed position map: equivalence, charging, security.

Four concerns, mirroring the contract in
``docs/recursive_position_map.md``:

* **Dense/recursive bit-identity** — for every engine family and seed,
  swapping the dense map for the recursion must leave every main-tree
  decision untouched: identical final leaf assignments and identical
  core traffic counters, with only the ``posmap_*`` category differing.
* **Charging model** — one charged walk per position-map update: a
  ``get`` walks, the matching ``set`` rides that walk for free, a
  standalone ``set`` walks on its own, and the ``peek``/``load``
  trusted channel never charges.
* **Honest accounting** — ``client_memory_bytes`` counts the recursion
  top map and per-level stash residue, not the dense array.
* **Obliviousness** — the observable leaf stream of every recursion
  tree stays uniform under a skewed logical access stream (the same
  chi-square adversary as ``tests/test_security_uniformity_fast.py``).
"""

import numpy as np
import pytest

from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.experiments.configs import build_engine, build_oram_config
from repro.experiments.recursion import (
    run_recursion_amortization,
    render_recursion_table,
)
from repro.memory.accounting import TrafficCounter, merge_snapshots
from repro.oram.position_map import PositionMap
from repro.oram.recursive_posmap import RecursivePositionMap
from repro.utils.stats import chi_square_uniformity

NUM_BLOCKS = 256
NUM_ACCESSES = 600

FAMILY_LABELS = (
    "PathORAM",
    "Normal/S4",
    "RingORAM",
    "PrORAM-dynamic/S2",
    "PrORAM-static/S2",
)

#: Main-tree snapshot fields that must not change under recursion.
CORE_FIELDS = (
    "logical_accesses",
    "path_reads",
    "path_writes",
    "dummy_reads",
    "buckets_read",
    "buckets_written",
    "bytes_read",
    "bytes_written",
    "stash_peak",
    "background_evictions",
)


def run_engine(label: str, seed: int, fast: bool, recursive: bool):
    # chi=4 over 256 blocks with a 256-byte cutoff builds two recursion
    # levels (64 -> 16 blocks), exercising the full multi-level walk.
    config = build_oram_config(
        num_blocks=NUM_BLOCKS,
        block_size_bytes=32,
        seed=seed,
        recursive_posmap=recursive,
        posmap_positions_per_block=4,
        posmap_cutoff_bytes=256,
    )
    engine = build_engine(label, config, fast=fast)
    trace = ZipfTraceGenerator(NUM_BLOCKS, exponent=1.2, seed=seed).generate(
        NUM_ACCESSES
    ).addresses
    if hasattr(engine, "run_trace"):
        engine.run_trace(trace)
    else:
        for block_id in trace.tolist():
            engine.access(block_id)
    return engine


def make_map(
    num_blocks=4096,
    num_leaves=2048,
    chi=16,
    cutoff=1024,
    seed=5,
    counter=None,
    record_streams=False,
):
    return RecursivePositionMap(
        num_blocks,
        num_leaves,
        rng=np.random.default_rng(seed),
        positions_per_block=chi,
        cutoff_bytes=cutoff,
        counter=counter,
        seed=seed,
        record_streams=record_streams,
    )


class TestDenseRecursiveBitIdentity:
    """Recursion changes where the map lives, never what the engine does."""

    @pytest.mark.parametrize("label", FAMILY_LABELS)
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("fast", [False, True])
    def test_main_tree_identical(self, label, seed, fast):
        dense = run_engine(label, seed, fast, recursive=False)
        recursive = run_engine(label, seed, fast, recursive=True)
        assert np.array_equal(
            dense.position_map.as_array(), recursive.position_map.as_array()
        )
        dense_snap = dense.statistics
        rec_snap = recursive.statistics
        for name in CORE_FIELDS:
            assert getattr(dense_snap, name) == getattr(rec_snap, name), name
        # The posmap category is where the two runs legitimately differ.
        assert dense_snap.posmap_path_reads == 0
        assert dense_snap.posmap_total_bytes == 0
        assert rec_snap.posmap_path_reads > 0
        assert rec_snap.posmap_bytes_read > 0

    @pytest.mark.parametrize(
        "label", ["PathORAM", "Normal/S4", "RingORAM", "PrORAM-dynamic/S2"]
    )
    def test_object_and_array_twins_agree_under_recursion(self, label):
        reference = run_engine(label, 3, fast=False, recursive=True)
        fast = run_engine(label, 3, fast=True, recursive=True)
        assert reference.statistics == fast.statistics
        assert np.array_equal(
            reference.position_map.as_array(), fast.position_map.as_array()
        )


class TestChargingModel:
    """Exactly one charged walk per position-map update."""

    def test_get_entitles_the_matching_set(self):
        counter = TrafficCounter()
        pmap = make_map(counter=counter)
        leaf = pmap.get(17)
        assert 0 <= leaf < pmap.num_leaves
        walks_after_get = counter.posmap_path_reads
        pmap.set(17, 5)
        assert counter.posmap_path_reads == walks_after_get
        assert pmap.peek(17) == 5

    def test_standalone_sets_are_charged(self):
        counter = TrafficCounter()
        pmap = make_map(counter=counter)
        rng = np.random.default_rng(0)
        for block_id in rng.choice(len(pmap), size=200, replace=False).tolist():
            pmap.set(int(block_id), 3)
        assert counter.posmap_path_reads > 0
        assert counter.posmap_path_writes > 0
        assert counter.posmap_bytes_read > 0

    def test_peek_and_load_never_charge(self):
        counter = TrafficCounter()
        pmap = make_map(counter=counter)
        pmap.peek(3)
        pmap.peek_many([0, 1, 2])
        pmap.load(3, 9)
        pmap.load_many([4, 5], [6, 7])
        snapshot = counter.snapshot()
        assert snapshot.posmap_path_reads == 0
        assert snapshot.posmap_path_writes == 0
        assert snapshot.posmap_total_bytes == 0
        assert pmap.peek(3) == 9
        assert pmap.peek_many([4, 5]).tolist() == [6, 7]

    def test_get_many_set_many_round_trip(self):
        counter = TrafficCounter()
        pmap = make_map(counter=counter)
        ids = np.arange(40, 80, dtype=np.int64)
        old = pmap.get_many(ids)
        assert old.shape == ids.shape
        new = np.arange(40, dtype=np.int64) % pmap.num_leaves
        walks_after_get = counter.posmap_path_reads
        pmap.set_many(ids, new)
        # Every set consumed the entitlement of its get: no extra walks.
        assert counter.posmap_path_reads == walks_after_get
        assert np.array_equal(pmap.peek_many(ids), new)

    def test_degenerate_map_below_cutoff_is_dense(self):
        counter = TrafficCounter()
        pmap = make_map(num_blocks=64, num_leaves=32, cutoff=1 << 16,
                        counter=counter)
        assert pmap.num_levels == 0
        pmap.set(1, pmap.get(1))
        assert counter.snapshot().posmap_total_bytes == 0

    def test_validation_matches_dense_exception_types(self):
        pmap = make_map(num_blocks=64, num_leaves=32, cutoff=64)
        with pytest.raises(BlockNotFoundError):
            pmap.get(64)
        with pytest.raises(BlockNotFoundError):
            pmap.get_many([0, 64])
        with pytest.raises(ConfigurationError):
            pmap.set(0, 32)
        with pytest.raises(ConfigurationError):
            pmap.set_many([0, 1], [0.5, 1.5])
        with pytest.raises(ConfigurationError):
            pmap.get_many(np.array([0.0, 1.0]))
        with pytest.raises(BlockNotFoundError):
            pmap.load(-1, 0)
        with pytest.raises(ConfigurationError):
            pmap.load_many([0], [99])


class TestHonestAccounting:
    """Client memory counts what the client actually holds."""

    def test_recursive_footprint_beats_dense(self):
        dense = PositionMap(4096, 2048, np.random.default_rng(5))
        recursive = make_map()
        assert recursive.num_levels >= 2
        assert recursive.client_memory_bytes() < dense.client_memory_bytes() / 4

    def test_footprint_components(self):
        pmap = make_map()
        chi = pmap.positions_per_block
        expected = pmap._top.nbytes
        for level in pmap._levels:
            expected += len(level.stash) * (chi * 8 + 16)
        assert pmap.client_memory_bytes() == expected
        pmap.get(0)
        # The open walk's entitlement is client state too.
        assert pmap.client_memory_bytes() >= expected

    def test_geometry_reports_every_level(self):
        pmap = make_map()
        geometry = pmap.geometry()
        assert len(geometry) == pmap.num_levels
        assert geometry[0]["blocks"] == -(-4096 // 16)
        assert all(entry["path_bytes"] > 0 for entry in geometry)
        assert pmap.server_memory_bytes() > 0


class TestPosmapCounters:
    """The posmap_* category accumulates and merges like the core fields."""

    def test_record_and_snapshot(self):
        counter = TrafficCounter()
        counter.record_posmap_path_read(100)
        counter.record_posmap_path_read(100)
        counter.record_posmap_path_write(80)
        counter.record_logical_access(4)
        snapshot = counter.snapshot()
        assert snapshot.posmap_path_reads == 2
        assert snapshot.posmap_path_writes == 1
        assert snapshot.posmap_bytes_read == 200
        assert snapshot.posmap_bytes_written == 80
        assert snapshot.posmap_total_bytes == 280
        assert snapshot.posmap_paths_per_access == pytest.approx(0.5)

    def test_reset_clears_posmap_fields(self):
        counter = TrafficCounter()
        counter.record_posmap_path_read(100)
        counter.reset()
        assert counter.snapshot().posmap_total_bytes == 0

    def test_merge_sums_posmap_fields(self):
        first = TrafficCounter()
        first.record_posmap_path_read(10)
        second = TrafficCounter()
        second.record_posmap_path_write(20)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged.posmap_path_reads == 1
        assert merged.posmap_path_writes == 1
        assert merged.posmap_total_bytes == 30


class TestRecursionTreeUniformity:
    """Observable recursion-path streams stay uniform under skewed ids."""

    COARSE_BINS = 64
    ALPHA = 0.001

    def test_per_level_streams_uniform(self):
        pmap = make_map(seed=9, record_streams=True)
        addresses = ZipfTraceGenerator(
            len(pmap), exponent=1.2, seed=2
        ).generate(3000).addresses
        rng = np.random.default_rng(4)
        for block_id in addresses.tolist():
            pmap.get(block_id)
            pmap.set(block_id, int(rng.integers(0, pmap.num_leaves)))
        for level in pmap._levels:
            stream = np.asarray(level.read_stream, dtype=np.int64)
            assert stream.size >= 500
            bins = min(self.COARSE_BINS, level.num_leaves)
            coarse = (stream * bins) // level.num_leaves
            result = chi_square_uniformity(coarse, bins)
            assert not result.rejects_uniformity(alpha=self.ALPHA)


class TestAmortizationExperiment:
    """The importable harness behind the committed full-scale sweep."""

    def test_reduced_scale_table(self):
        rows = run_recursion_amortization(
            num_blocks_list=(1 << 12,), num_accesses=1500,
            cutoff_bytes=1 << 10,
        )
        assert {row.family for row in rows} == {
            "laoram", "pathoram", "ringoram"
        }
        by_family = {row.family: row for row in rows}
        assert all(row.bit_identical for row in rows)
        assert all(row.num_levels >= 1 for row in rows)
        # PathORAM/RingORAM pay one walk per access; LAORAM's superblock
        # bins amortize repeated accesses onto one walk.
        assert by_family["pathoram"].walks_per_access == pytest.approx(1.0)
        assert by_family["ringoram"].walks_per_access == pytest.approx(1.0)
        assert (
            by_family["laoram"].walks_per_access
            < by_family["pathoram"].walks_per_access
        )
        table = render_recursion_table(rows)
        assert "walks/access" in table and "laoram" in table
