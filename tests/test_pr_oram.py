"""Tests for the PrORAM (history-based superblock) baseline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.pr_oram import PrORAM, SuperblockMode


@pytest.fixture
def config():
    return ORAMConfig(num_blocks=128, block_size_bytes=32, seed=5)


class TestConstruction:
    def test_static_mode_merges_all_groups(self, config):
        oram = PrORAM(config, superblock_size=4, mode=SuperblockMode.STATIC)
        assert oram.merged_group_count == 32

    def test_dynamic_mode_starts_with_no_superblocks(self, config):
        oram = PrORAM(config, superblock_size=4, mode=SuperblockMode.DYNAMIC)
        assert oram.merged_group_count == 0

    def test_invalid_parameters_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PrORAM(config, superblock_size=0)
        with pytest.raises(ConfigurationError):
            PrORAM(config, merge_threshold=0)
        with pytest.raises(ConfigurationError):
            PrORAM(config, history_window=0)


class TestGrouping:
    def test_group_of_adjacent_addresses(self, config):
        oram = PrORAM(config, superblock_size=4)
        assert oram.group_of(0) == oram.group_of(3)
        assert oram.group_of(4) == 1

    def test_group_members(self, config):
        oram = PrORAM(config, superblock_size=4)
        assert oram.group_members(1) == [4, 5, 6, 7]

    def test_last_group_may_be_short(self):
        config = ORAMConfig(num_blocks=10, block_size_bytes=32)
        oram = PrORAM(config, superblock_size=4)
        assert oram.group_members(2) == [8, 9]


class TestDynamicBehaviour:
    def test_spatially_local_stream_creates_superblocks(self, config):
        oram = PrORAM(
            config, superblock_size=2, mode=SuperblockMode.DYNAMIC, merge_threshold=2
        )
        # Repeatedly access adjacent pairs: strong spatial locality.
        for _ in range(10):
            oram.read(0)
            oram.read(1)
        assert oram.is_merged(0)

    def test_random_stream_creates_few_superblocks(self, config):
        """The paper's observation: random embedding accesses give PrORAM nothing."""
        oram = PrORAM(
            config,
            superblock_size=2,
            mode=SuperblockMode.DYNAMIC,
            merge_threshold=2,
            history_window=8,
        )
        rng = np.random.default_rng(0)
        for block in rng.integers(0, 128, size=400):
            oram.read(int(block))
        assert oram.merged_group_count <= 8

    def test_superblock_breaks_apart_without_locality(self, config):
        oram = PrORAM(
            config,
            superblock_size=2,
            mode=SuperblockMode.DYNAMIC,
            merge_threshold=2,
            history_window=4,
        )
        for _ in range(5):
            oram.read(0)
            oram.read(1)
        assert oram.is_merged(0)
        rng = np.random.default_rng(1)
        for block in rng.integers(64, 128, size=50):
            oram.read(int(block))
        for _ in range(6):
            oram.read(0)
            rng_far = int(rng.integers(64, 128))
            oram.read(rng_far)
        assert not oram.is_merged(0)


class TestCorrectness:
    def test_payload_round_trip_with_superblocks(self, config):
        oram = PrORAM(config, superblock_size=4, mode=SuperblockMode.STATIC)
        oram.write(10, b"ten")
        oram.write(11, b"eleven")
        assert oram.read(10) == b"ten"
        assert oram.read(11) == b"eleven"

    def test_block_conservation(self, config):
        oram = PrORAM(config, superblock_size=4, mode=SuperblockMode.STATIC)
        rng = np.random.default_rng(2)
        for block in rng.integers(0, 128, size=300):
            oram.read(int(block))
        assert oram.total_real_blocks() == 128

    def test_merged_group_shares_single_leaf(self, config):
        oram = PrORAM(config, superblock_size=2, mode=SuperblockMode.STATIC)
        oram.read(6)
        stash_ids = set(oram.stash.block_ids)
        if 6 in stash_ids and 7 in stash_ids:
            assert oram.position_map.get(6) == oram.position_map.get(7)

    def test_static_superblocks_reduce_path_reads_on_local_stream(self, config):
        baseline = PrORAM(config, superblock_size=1, mode=SuperblockMode.STATIC)
        grouped = PrORAM(config, superblock_size=4, mode=SuperblockMode.STATIC)
        stream = [base + offset for base in range(0, 64, 4) for offset in range(4)] * 3
        baseline.access_many(stream)
        grouped.access_many(stream)
        assert (
            grouped.statistics.path_reads + grouped.statistics.dummy_reads
            < baseline.statistics.path_reads + baseline.statistics.dummy_reads
        )
