"""Tests for the binary-tree index arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.utils.bits import (
    common_level,
    is_power_of_two,
    node_index,
    nodes_at_level,
    num_leaves,
    num_nodes,
    path_node_indices,
    required_depth,
)


class TestIsPowerOfTwo:
    def test_powers_are_recognised(self):
        for exponent in range(12):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, 3, 6, 12, 1000):
            assert not is_power_of_two(value)


class TestRequiredDepth:
    def test_exact_power_of_two(self):
        assert required_depth(1024) == 10

    def test_rounds_up_between_powers(self):
        assert required_depth(1025) == 11
        assert required_depth(1000) == 10

    def test_minimum_depth_is_one(self):
        assert required_depth(1) == 1
        assert required_depth(2) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            required_depth(0)


class TestGeometry:
    def test_num_leaves(self):
        assert num_leaves(4) == 16

    def test_num_nodes(self):
        assert num_nodes(4) == 31

    def test_nodes_at_level(self):
        assert nodes_at_level(0) == 1
        assert nodes_at_level(3) == 8

    def test_invalid_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            num_leaves(0)


class TestNodeIndex:
    def test_root_is_index_zero(self):
        assert node_index(0, leaf=5, depth=3) == 0

    def test_leaf_indices_are_contiguous(self):
        depth = 3
        leaf_indices = [node_index(depth, leaf, depth) for leaf in range(8)]
        assert leaf_indices == list(range(7, 15))

    def test_path_node_indices_walks_root_to_leaf(self):
        indices = path_node_indices(leaf=5, depth=3)
        assert indices[0] == 0
        assert len(indices) == 4
        assert indices[-1] == node_index(3, 5, 3)

    def test_sibling_leaves_share_all_but_last_node(self):
        left = path_node_indices(leaf=6, depth=3)
        right = path_node_indices(leaf=7, depth=3)
        assert left[:-1] == right[:-1]
        assert left[-1] != right[-1]

    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            node_index(1, leaf=8, depth=3)

    def test_out_of_range_level_rejected(self):
        with pytest.raises(ConfigurationError):
            node_index(4, leaf=0, depth=3)


class TestCommonLevel:
    def test_identical_leaves_share_whole_path(self):
        assert common_level(3, 3, depth=5) == 5

    def test_leaves_in_different_halves_share_only_root(self):
        assert common_level(0, (1 << 5) - 1, depth=5) == 0

    def test_adjacent_leaves_in_same_subtree(self):
        assert common_level(4, 5, depth=3) == 2

    def test_symmetry(self):
        assert common_level(3, 12, 4) == common_level(12, 3, 4)

    @given(st.integers(min_value=1, max_value=12), st.data())
    def test_common_level_matches_shared_prefix(self, depth, data):
        leaf_a = data.draw(st.integers(min_value=0, max_value=(1 << depth) - 1))
        leaf_b = data.draw(st.integers(min_value=0, max_value=(1 << depth) - 1))
        level = common_level(leaf_a, leaf_b, depth)
        # The paths share exactly the first ``level + 1`` nodes.
        path_a = path_node_indices(leaf_a, depth)
        path_b = path_node_indices(leaf_b, depth)
        shared = sum(1 for a, b in zip(path_a, path_b) if a == b)
        assert shared == level + 1

    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            common_level(0, 100, depth=3)
