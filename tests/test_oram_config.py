"""Tests for ORAMConfig geometry, fat-tree schedules and memory arithmetic."""

import pytest

from repro.exceptions import ConfigurationError
from repro.oram.config import FatTreePolicy, ORAMConfig


class TestFatTreePolicy:
    def test_paper_example_linear_schedule(self):
        """Six-level example from the paper: buckets shrink 10..5."""
        policy = FatTreePolicy(leaf_bucket_size=5, root_bucket_size=10)
        assert policy.schedule(5) == (10, 9, 8, 7, 6, 5)

    def test_eight_to_four_schedule_endpoints(self):
        policy = FatTreePolicy(leaf_bucket_size=4, root_bucket_size=8)
        schedule = policy.schedule(10)
        assert schedule[0] == 8
        assert schedule[-1] == 4
        assert all(schedule[i] >= schedule[i + 1] for i in range(len(schedule) - 1))

    def test_increment_growth(self):
        policy = FatTreePolicy(leaf_bucket_size=4, root_bucket_size=8, growth="increment")
        assert policy.schedule(3) == (7, 6, 5, 4)

    def test_invalid_growth_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreePolicy(leaf_bucket_size=4, root_bucket_size=8, growth="exponential")

    def test_root_smaller_than_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreePolicy(leaf_bucket_size=8, root_bucket_size=4)

    def test_capacity_at_validates_level(self):
        policy = FatTreePolicy(leaf_bucket_size=4, root_bucket_size=8)
        with pytest.raises(ConfigurationError):
            policy.capacity_at(7, depth=5)


class TestORAMConfigGeometry:
    def test_depth_and_leaves(self):
        config = ORAMConfig(num_blocks=1000)
        assert config.depth == 10
        assert config.num_leaves == 1024
        assert config.num_buckets == 2047

    def test_uniform_bucket_capacities(self):
        config = ORAMConfig(num_blocks=64, bucket_size=5)
        assert set(config.bucket_capacities()) == {5}
        assert len(config.bucket_capacities()) == config.depth + 1

    def test_fat_tree_defaults_to_double_root(self):
        config = ORAMConfig(num_blocks=64, bucket_size=4, fat_tree=True)
        capacities = config.bucket_capacities()
        assert capacities[0] == 8
        assert capacities[-1] == 4

    def test_total_slots_consistent_with_capacities(self):
        config = ORAMConfig(num_blocks=64, bucket_size=4)
        assert config.total_slots == sum(
            capacity * (1 << level)
            for level, capacity in enumerate(config.bucket_capacities())
        )


class TestORAMConfigMemory:
    def test_insecure_memory(self):
        config = ORAMConfig(num_blocks=1024, block_size_bytes=128)
        assert config.insecure_memory_bytes == 1024 * 128

    def test_pathoram_tree_is_roughly_8x_for_bucket_4(self):
        """Table I: a Z=4 tree over 2^k blocks occupies ~8x the raw table."""
        config = ORAMConfig(
            num_blocks=1 << 20, block_size_bytes=128, metadata_bytes_per_block=0
        )
        ratio = config.server_memory_bytes / config.insecure_memory_bytes
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_fat_tree_increment_overhead_is_about_25_percent(self):
        """Table I: the per-level-increment fat tree adds ~Z^-1 = 25% memory."""
        base = ORAMConfig(
            num_blocks=1 << 20, block_size_bytes=128, metadata_bytes_per_block=0
        )
        fat = base.with_overrides(fat_tree=True, fat_tree_growth="increment")
        assert fat.server_memory_bytes / base.server_memory_bytes == pytest.approx(
            1.25, rel=0.01
        )

    def test_metadata_increases_footprint(self):
        lean = ORAMConfig(num_blocks=256, metadata_bytes_per_block=0)
        fat = ORAMConfig(num_blocks=256, metadata_bytes_per_block=32)
        assert fat.server_memory_bytes > lean.server_memory_bytes


class TestORAMConfigValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(num_blocks=0)

    def test_rejects_bad_eviction_thresholds(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(num_blocks=16, eviction_threshold=10, eviction_target=20)

    def test_rejects_small_root_bucket(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(num_blocks=16, bucket_size=4, root_bucket_size=2)

    def test_rejects_bad_growth(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(num_blocks=16, fat_tree_growth="weird")

    def test_with_overrides_returns_new_config(self):
        config = ORAMConfig(num_blocks=16)
        other = config.with_overrides(bucket_size=6)
        assert other.bucket_size == 6
        assert config.bucket_size == 4
