"""Tests for the shared greedy write-back planner."""

import numpy as np

from repro.memory.block import Block
from repro.oram.stash import Stash
from repro.oram.tree import TreeStorage
from repro.utils.bits import common_level
from repro.oram.write_back import plan_greedy_write_back


def make_tree(depth=3, bucket=2):
    return TreeStorage(depth, [bucket] * (depth + 1), block_size_bytes=64)


class TestGreedyWriteBack:
    def test_block_on_accessed_path_goes_to_leaf(self):
        tree = make_tree()
        stash = Stash()
        stash.add(Block(1, leaf=5))
        placement = plan_greedy_write_back(tree, stash, leaf=5)
        assert placement[3][0].block_id == 1
        assert len(stash) == 0

    def test_unrelated_block_can_only_reach_root(self):
        tree = make_tree()
        stash = Stash()
        # Leaf 0 and leaf 7 diverge immediately below the root.
        stash.add(Block(1, leaf=0))
        placement = plan_greedy_write_back(tree, stash, leaf=7)
        assert list(placement.keys()) == [0]

    def test_respects_bucket_capacity(self):
        tree = make_tree(bucket=1)
        stash = Stash()
        for block_id in range(5):
            stash.add(Block(block_id, leaf=6))
        placement = plan_greedy_write_back(tree, stash, leaf=6)
        placed = sum(len(blocks) for blocks in placement.values())
        assert placed == 4  # one per level (depth 3 + root)
        assert len(stash) == 1

    def test_respects_existing_occupancy(self):
        tree = make_tree(bucket=1)
        tree.bucket(0, 0).add(Block(99, leaf=0))
        stash = Stash()
        stash.add(Block(1, leaf=0))  # accessed path is leaf 7: only root is shared
        placement = plan_greedy_write_back(tree, stash, leaf=7)
        assert placement == {}
        assert len(stash) == 1

    def test_placement_respects_path_prefix_invariant(self):
        rng = np.random.default_rng(0)
        tree = make_tree(depth=4, bucket=2)
        stash = Stash()
        for block_id in range(30):
            stash.add(Block(block_id, leaf=int(rng.integers(0, 16))))
        accessed_leaf = 9
        placement = plan_greedy_write_back(tree, stash, accessed_leaf)
        for level, blocks in placement.items():
            for block in blocks:
                assert common_level(block.leaf, accessed_leaf, 4) >= level

    def test_empty_stash_produces_empty_placement(self):
        tree = make_tree()
        assert plan_greedy_write_back(tree, Stash(), leaf=0) == {}
