"""Shared fixtures for the LAORAM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.permutation import PermutationTraceGenerator
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM


@pytest.fixture
def small_config() -> ORAMConfig:
    """A small tree: 256 blocks of 64 bytes, bucket size 4."""
    return ORAMConfig(num_blocks=256, block_size_bytes=64, bucket_size=4, seed=7)


@pytest.fixture
def tiny_config() -> ORAMConfig:
    """A very small tree used where many engines are built in one test."""
    return ORAMConfig(num_blocks=64, block_size_bytes=32, bucket_size=4, seed=11)


@pytest.fixture
def small_path_oram(small_config) -> PathORAM:
    """PathORAM over the small tree."""
    return PathORAM(small_config)


@pytest.fixture
def small_laoram(small_config) -> LAORAMClient:
    """LAORAM client (superblock 4, normal tree) over the small tree."""
    return LAORAMClient(LAORAMConfig(oram=small_config, superblock_size=4))


@pytest.fixture
def permutation_trace():
    """Two-epoch permutation trace over 256 blocks."""
    return PermutationTraceGenerator(256, seed=3).generate(512)


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded generator for test-local randomness."""
    return np.random.default_rng(1234)
