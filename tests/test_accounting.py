"""Tests for the traffic counters the evaluation metrics are built on."""

import numpy as np
import pytest

from repro.experiments.configs import build_engine, build_oram_config
from repro.memory.accounting import TrafficCounter


class TestTrafficCounter:
    def test_path_read_accumulates(self):
        counter = TrafficCounter()
        counter.record_path_read(10, 5120)
        counter.record_path_read(10, 5120)
        snap = counter.snapshot()
        assert snap.path_reads == 2
        assert snap.buckets_read == 20
        assert snap.bytes_read == 10240

    def test_dummy_reads_are_counted_separately(self):
        counter = TrafficCounter()
        counter.record_path_read(10, 5120, dummy=True)
        counter.record_path_read(10, 5120, dummy=False)
        snap = counter.snapshot()
        assert snap.dummy_reads == 1
        assert snap.path_reads == 1
        assert snap.total_paths_touched == 2

    def test_path_write(self):
        counter = TrafficCounter()
        counter.record_path_write(8, 4096)
        snap = counter.snapshot()
        assert snap.path_writes == 1
        assert snap.bytes_written == 4096

    def test_logical_access_batching(self):
        counter = TrafficCounter()
        counter.record_logical_access(4)
        counter.record_logical_access()
        assert counter.snapshot().logical_accesses == 5

    def test_dummy_reads_per_access(self):
        counter = TrafficCounter()
        counter.record_logical_access(10)
        for _ in range(5):
            counter.record_path_read(10, 100, dummy=True)
        assert counter.snapshot().dummy_reads_per_access == pytest.approx(0.5)

    def test_paths_per_access(self):
        counter = TrafficCounter()
        counter.record_logical_access(4)
        counter.record_path_read(10, 100)
        counter.record_path_read(10, 100, dummy=True)
        assert counter.snapshot().paths_per_access == pytest.approx(0.5)

    def test_zero_access_ratios_are_zero(self):
        snap = TrafficCounter().snapshot()
        assert snap.dummy_reads_per_access == 0.0
        assert snap.paths_per_access == 0.0

    def test_stash_peak_tracking(self):
        counter = TrafficCounter()
        counter.observe_stash(10)
        counter.observe_stash(50)
        counter.observe_stash(20)
        assert counter.snapshot().stash_peak == 50

    def test_stash_history_only_when_enabled(self):
        counter = TrafficCounter()
        counter.observe_stash(3)
        assert counter.stash_history == []
        counter.record_stash_history = True
        counter.observe_stash(4)
        assert counter.stash_history == [4]

    def test_background_evictions(self):
        counter = TrafficCounter()
        counter.record_background_eviction()
        assert counter.snapshot().background_evictions == 1

    def test_total_bytes(self):
        counter = TrafficCounter()
        counter.record_path_read(1, 100)
        counter.record_path_write(1, 150)
        assert counter.snapshot().total_bytes == 250

    def test_reset_clears_everything(self):
        counter = TrafficCounter(record_stash_history=True)
        counter.record_logical_access()
        counter.record_path_read(1, 10)
        counter.observe_stash(7)
        counter.reset()
        snap = counter.snapshot()
        assert snap.logical_accesses == 0
        assert snap.path_reads == 0
        assert snap.stash_peak == 0
        assert counter.stash_history == []


class TestEngineClientMemory:
    """``client_memory_bytes`` charges what the client actually holds.

    Regression for the seed accounting bug: stashed blocks were charged
    at ``stored_block_bytes``, which includes ``metadata_bytes_per_block``
    — the server-side wire format's MAC field, never held in client
    memory.  The honest formula is the dense position-map array (or the
    recursion footprint) plus ``block_size_bytes + 16`` per stashed block
    (payload plus the id/leaf bookkeeping rows).
    """

    def _engine(self, metadata_bytes, fast=True):
        # LAORAM's superblock remaps leave a real stash residue (PathORAM's
        # greedy write-back drains to zero at this scale, which would make
        # the stash term vacuous).
        config = build_oram_config(
            num_blocks=4096, block_size_bytes=32, seed=3
        ).with_overrides(
            metadata_bytes_per_block=metadata_bytes,
            background_eviction=False,
        )
        engine = build_engine("Normal/S4", config, fast=fast)
        trace = np.random.default_rng(1).integers(0, 4096, size=2000)
        engine.run_trace(trace)
        return engine

    def test_formula_excludes_server_metadata(self):
        engine = self._engine(metadata_bytes=16)
        assert len(engine.stash) > 0
        expected = engine.position_map.client_memory_bytes() + len(
            engine.stash
        ) * (32 + engine.STASH_ENTRY_OVERHEAD_BYTES)
        assert engine.client_memory_bytes() == expected

    def test_metadata_size_does_not_change_client_memory(self):
        # Same seed, same trace: only the server wire format differs, so
        # the client footprint must be identical.
        lean = self._engine(metadata_bytes=0)
        fat = self._engine(metadata_bytes=64)
        assert len(lean.stash) == len(fat.stash)
        assert lean.client_memory_bytes() == fat.client_memory_bytes()

    def test_recursive_map_included(self):
        config = build_oram_config(
            num_blocks=4096,
            block_size_bytes=32,
            seed=3,
            recursive_posmap=True,
            posmap_cutoff_bytes=1 << 10,
        )
        engine = build_engine("PathORAM", config, fast=True)
        dense_config = config.with_overrides(recursive_posmap=False)
        dense = build_engine("PathORAM", dense_config, fast=True)
        trace = np.random.default_rng(1).integers(0, 4096, size=500)
        engine.run_trace(trace)
        dense.run_trace(trace)
        assert len(engine.stash) == len(dense.stash)
        assert engine.client_memory_bytes() < dense.client_memory_bytes()
