"""Tests for the simplified RingORAM comparator."""

import numpy as np
import pytest

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.ring_oram import RingORAM, reverse_lexicographic_leaf


@pytest.fixture
def config():
    return ORAMConfig(num_blocks=128, block_size_bytes=32, seed=9)


class TestReverseLexicographicOrder:
    def test_covers_all_leaves(self):
        depth = 4
        leaves = {reverse_lexicographic_leaf(i, depth) for i in range(1 << depth)}
        assert leaves == set(range(1 << depth))

    def test_alternates_subtrees(self):
        # Consecutive evictions should alternate between the two root subtrees.
        first = reverse_lexicographic_leaf(0, 3)
        second = reverse_lexicographic_leaf(1, 3)
        assert (first < 4) != (second < 4)

    def test_wraps_around(self):
        assert reverse_lexicographic_leaf(8, 3) == reverse_lexicographic_leaf(0, 3)


class TestRingORAM:
    def test_construction_places_all_blocks(self, config):
        oram = RingORAM(config)
        assert oram.total_real_blocks() == 128

    def test_invalid_parameters_rejected(self, config):
        with pytest.raises(ConfigurationError):
            RingORAM(config, dummies_per_bucket=0)
        with pytest.raises(ConfigurationError):
            RingORAM(config, evict_rate=0)

    def test_payload_round_trip(self, config):
        oram = RingORAM(config)
        oram.write(42, b"spam")
        assert oram.read(42) == b"spam"

    def test_payload_survives_traffic(self, config):
        oram = RingORAM(config)
        oram.write(3, b"keep")
        rng = np.random.default_rng(0)
        for block in rng.integers(0, 128, size=200):
            oram.read(int(block))
        assert oram.read(3) == b"keep"

    def test_block_conservation(self, config):
        oram = RingORAM(config)
        rng = np.random.default_rng(1)
        for block in rng.integers(0, 128, size=200):
            oram.read(int(block))
        assert oram.total_real_blocks() == 128

    def test_out_of_range_rejected(self, config):
        oram = RingORAM(config)
        with pytest.raises(BlockNotFoundError):
            oram.read(128)

    def test_online_read_moves_fewer_bytes_than_pathoram(self, config):
        """RingORAM's headline property: one block per bucket on the online read."""
        from repro.oram.path_oram import PathORAM

        ring = RingORAM(config, evict_rate=4)
        path = PathORAM(config)
        addresses = list(np.random.default_rng(2).integers(0, 128, size=200))
        ring.access_many([int(a) for a in addresses])
        path.access_many([int(a) for a in addresses])
        assert ring.statistics.bytes_read < path.statistics.bytes_read

    def test_eviction_happens_at_configured_rate(self, config):
        oram = RingORAM(config, evict_rate=5)
        for block in range(20):
            oram.read(block)
        # 20 accesses / evict rate 5 = 4 evictions; each is a dummy path read.
        assert oram.statistics.dummy_reads >= 4

    def test_server_memory_exceeds_pathoram_tree(self, config):
        oram = RingORAM(config, dummies_per_bucket=4)
        assert oram.server_memory_bytes > config.server_memory_bytes
