"""Tests for the RingORAM comparator (per-object and array twins)."""

import numpy as np
import pytest

from repro.exceptions import BlockNotFoundError, ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.ring_oram import ArrayRingORAM, RingORAM, reverse_lexicographic_leaf

ENGINE_CLASSES = [RingORAM, ArrayRingORAM]


@pytest.fixture
def config():
    return ORAMConfig(num_blocks=128, block_size_bytes=32, seed=9)


class TestReverseLexicographicOrder:
    def test_covers_all_leaves(self):
        depth = 4
        leaves = {reverse_lexicographic_leaf(i, depth) for i in range(1 << depth)}
        assert leaves == set(range(1 << depth))

    def test_alternates_subtrees(self):
        # Consecutive evictions should alternate between the two root subtrees.
        first = reverse_lexicographic_leaf(0, 3)
        second = reverse_lexicographic_leaf(1, 3)
        assert (first < 4) != (second < 4)

    def test_wraps_around(self):
        assert reverse_lexicographic_leaf(8, 3) == reverse_lexicographic_leaf(0, 3)


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
class TestRingORAM:
    def test_construction_places_all_blocks(self, config, engine_cls):
        oram = engine_cls(config)
        assert oram.total_real_blocks() == 128

    def test_invalid_parameters_rejected(self, config, engine_cls):
        with pytest.raises(ConfigurationError):
            engine_cls(config, dummies_per_bucket=0)
        with pytest.raises(ConfigurationError):
            engine_cls(config, evict_rate=0)

    def test_payload_round_trip(self, config, engine_cls):
        oram = engine_cls(config)
        oram.write(42, b"spam")
        assert oram.read(42) == b"spam"

    def test_payload_survives_traffic(self, config, engine_cls):
        oram = engine_cls(config)
        oram.write(3, b"keep")
        rng = np.random.default_rng(0)
        for block in rng.integers(0, 128, size=200):
            oram.read(int(block))
        assert oram.read(3) == b"keep"

    def test_block_conservation(self, config, engine_cls):
        oram = engine_cls(config)
        rng = np.random.default_rng(1)
        for block in rng.integers(0, 128, size=200):
            oram.read(int(block))
        assert oram.total_real_blocks() == 128

    def test_out_of_range_rejected(self, config, engine_cls):
        oram = engine_cls(config)
        with pytest.raises(BlockNotFoundError):
            oram.read(128)

    def test_online_read_moves_fewer_bytes_than_pathoram(self, config, engine_cls):
        """RingORAM's headline property: one block per bucket on the online read."""
        from repro.oram.path_oram import PathORAM

        ring = engine_cls(config, evict_rate=4)
        path = PathORAM(config)
        addresses = list(np.random.default_rng(2).integers(0, 128, size=200))
        ring.access_many([int(a) for a in addresses])
        path.access_many([int(a) for a in addresses])
        assert ring.statistics.bytes_read < path.statistics.bytes_read

    def test_eviction_happens_at_configured_rate(self, config, engine_cls):
        oram = engine_cls(config, evict_rate=5)
        for block in range(20):
            oram.read(block)
        # 20 accesses / evict rate 5 = 4 evictions; each is a dummy path read.
        assert oram.statistics.dummy_reads >= 4

    def test_server_memory_exceeds_pathoram_tree(self, config, engine_cls):
        oram = engine_cls(config, dummies_per_bucket=4)
        assert oram.server_memory_bytes > config.server_memory_bytes


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
class TestRingInvariants:
    """Protocol properties RingORAM's security and liveness rest on."""

    def test_bucket_read_counts_stay_below_dummy_budget(self, config, engine_cls):
        # A bucket may serve at most S = dummies_per_bucket single-block
        # reads before it must be reshuffled.  Reshuffling happens at the
        # end of the access that exhausts a bucket, so after every access no
        # bucket's count may ever sit at or above S.
        dummies = 3
        oram = engine_cls(config, dummies_per_bucket=dummies, evict_rate=4)
        rng = np.random.default_rng(5)
        for block in rng.integers(0, 128, size=300):
            oram.read(int(block))
            counts = oram._bucket_read_counts
            assert int(counts.max()) < dummies
            assert int(counts.min()) >= 0

    def test_dummy_reads_indistinguishable_from_real_reads(self, config, engine_cls):
        # A dummy online read (target already in the stash) must move exactly
        # as many buckets and bytes as a real one: one block per bucket along
        # the path.  Evictions and reshuffles are pushed out of the window so
        # the deltas isolate the online reads.
        oram = engine_cls(config, dummies_per_bucket=10_000, evict_rate=10_000)
        path_buckets = oram.tree.depth + 1
        path_bytes = path_buckets * oram.tree.stored_block_bytes

        before = oram.statistics
        oram.read(17)  # miss: real online read
        mid = oram.statistics
        oram.read(17)  # hit: the block now sits in the stash -> dummy read
        after = oram.statistics

        real_delta = (
            mid.buckets_read - before.buckets_read,
            mid.bytes_read - before.bytes_read,
        )
        dummy_delta = (
            after.buckets_read - mid.buckets_read,
            after.bytes_read - mid.bytes_read,
        )
        assert real_delta == dummy_delta == (path_buckets, path_bytes)
        # Only the classification differs, never the observable traffic.
        assert mid.path_reads - before.path_reads == 1
        assert mid.dummy_reads - before.dummy_reads == 0
        assert after.path_reads - mid.path_reads == 0
        assert after.dummy_reads - mid.dummy_reads == 1

    def test_every_online_read_touches_full_path(self, config, engine_cls):
        # Across a random workload, buckets_read must grow by exactly
        # depth + 1 per online read plus the bucket reshuffles/evictions,
        # i.e. traffic never leaks whether the target was found early.
        observed = []

        class Observer:
            def observe_path(self, leaf, dummy):
                observed.append((leaf, dummy))

        oram = engine_cls(config, observer=Observer())
        rng = np.random.default_rng(8)
        trace = [int(b) for b in rng.integers(0, 128, size=150)]
        oram.access_many(trace)
        # One observation per logical access, each a full-path online read.
        assert len(observed) == len(trace)
        num_leaves = config.num_leaves
        assert all(0 <= leaf < num_leaves for leaf, _ in observed)
