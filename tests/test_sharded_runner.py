"""Tests for the sharded multi-engine runner and snapshot merging."""

import numpy as np
import pytest

from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError
from repro.experiments.sharded import ShardedRunner
from repro.memory.accounting import TrafficCounter, merge_snapshots


class TestMergeSnapshots:
    def test_additive_counters_sum_and_peak_maxes(self):
        counters = []
        for reads, peak in ((3, 10), (5, 7)):
            counter = TrafficCounter()
            counter.record_logical_access(4)
            for _ in range(reads):
                counter.record_path_read(2, 100)
                counter.record_path_write(2, 100)
            counter.observe_stash(peak)
            counters.append(counter.snapshot())
        merged = merge_snapshots(counters)
        assert merged.logical_accesses == 8
        assert merged.path_reads == 8
        assert merged.path_writes == 8
        assert merged.bytes_read == 800
        assert merged.bytes_written == 800
        assert merged.stash_peak == 10

    def test_empty_merge(self):
        merged = merge_snapshots([])
        assert merged.logical_accesses == 0
        assert merged.stash_peak == 0


class TestShardedRunner:
    def test_routing_covers_namespace(self):
        runner = ShardedRunner(num_blocks=103, num_shards=4)
        assert sum(runner.shard_num_blocks(s) for s in range(4)) == 103
        for block_id in (0, 1, 50, 102):
            shard = runner.shard_of(block_id)
            assert 0 <= shard < 4
            assert runner.local_id(block_id) < runner.shard_num_blocks(shard)

    def test_split_trace_preserves_order_and_counts(self):
        runner = ShardedRunner(num_blocks=64, num_shards=3)
        addresses = np.asarray([0, 3, 1, 6, 4, 63, 2], dtype=np.int64)
        shards = runner.split_trace(addresses)
        assert sum(s.size for s in shards) == addresses.size
        # shard 0 sees 0, 3, 6, 63 in order, as local ids.
        assert shards[0].tolist() == [0, 1, 2, 21]
        with pytest.raises(ConfigurationError):
            runner.split_trace([64])

    @pytest.mark.parametrize("use_fast_engine", [False, True])
    def test_run_trace_merges_and_conserves(self, use_fast_engine):
        num_blocks = 256
        trace = ZipfTraceGenerator(num_blocks, seed=6).generate(2_000)
        runner = ShardedRunner(
            num_blocks=num_blocks,
            num_shards=4,
            superblock_size=4,
            block_size_bytes=32,
            use_fast_engine=use_fast_engine,
        )
        engine_cls = FastLAORAMClient if use_fast_engine else LAORAMClient
        assert all(isinstance(e, engine_cls) for e in runner.engines)
        merged = runner.run_trace(trace.addresses)
        assert merged.logical_accesses == 2_000
        assert runner.total_real_blocks() == num_blocks
        results = runner.results
        assert len(results) == 4
        assert sum(r.num_accesses for r in results) == 2_000
        assert merged.path_reads == sum(r.snapshot.path_reads for r in results)
        assert merged.stash_peak == max(r.snapshot.stash_peak for r in results)
        assert runner.simulated_time_parallel_s <= runner.simulated_time_serial_s
        assert runner.server_memory_bytes == sum(
            engine.server_memory_bytes for engine in runner.engines
        )

    @pytest.mark.parametrize("family", ["pathoram", "ringoram", "proram"])
    @pytest.mark.parametrize("use_fast_engine", [False, True])
    def test_non_laoram_families_run_sharded(self, family, use_fast_engine):
        from repro.experiments.sharded import SHARDABLE_FAMILIES

        num_blocks = 128
        trace = ZipfTraceGenerator(num_blocks, seed=3).generate(600)
        runner = ShardedRunner(
            num_blocks=num_blocks,
            num_shards=3,
            family=family,
            block_size_bytes=32,
            use_fast_engine=use_fast_engine,
        )
        engine_cls = SHARDABLE_FAMILIES[family][1 if use_fast_engine else 0]
        assert all(type(e) is engine_cls for e in runner.engines)
        merged = runner.run_trace(trace.addresses)
        assert merged.logical_accesses == 600
        assert runner.total_real_blocks() == num_blocks
        assert sum(r.num_accesses for r in runner.results) == 600

    @pytest.mark.parametrize("family", ["pathoram", "ringoram", "proram", "laoram"])
    def test_sharded_fast_matches_reference_per_family(self, family):
        # Shard engines inherit seed + shard_id in both flavours, so the
        # merged counters of the fast and reference runners must be
        # bit-identical for every family.
        num_blocks = 128
        trace = ZipfTraceGenerator(num_blocks, seed=11).generate(700)
        merged = [
            ShardedRunner(
                num_blocks=num_blocks,
                num_shards=2,
                family=family,
                block_size_bytes=32,
                use_fast_engine=fast,
            ).run_trace(trace.addresses)
            for fast in (False, True)
        ]
        assert merged[0] == merged[1]

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedRunner(num_blocks=64, num_shards=2, family="nosuch")

    def test_sharded_equals_merged_engine_decisions(self):
        # The same trace through fast and reference sharded runners yields
        # identical merged counters (shard engines inherit the seed+shard_id
        # seeding in both cases).
        num_blocks = 128
        trace = ZipfTraceGenerator(num_blocks, seed=9).generate(1_000)
        merged = [
            ShardedRunner(
                num_blocks=num_blocks,
                num_shards=2,
                block_size_bytes=32,
                use_fast_engine=fast,
            ).run_trace(trace.addresses)
            for fast in (False, True)
        ]
        assert merged[0] == merged[1]

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedRunner(num_blocks=64, num_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedRunner(num_blocks=8, num_shards=5)
