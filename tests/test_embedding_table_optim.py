"""Tests for embedding tables and sparse optimisers."""

import numpy as np
import pytest

from repro.embedding.optim import SparseAdagrad, SparseSGD
from repro.embedding.table import EmbeddingTable
from repro.exceptions import ConfigurationError


class TestEmbeddingTable:
    def test_shape_and_dtype(self):
        table = EmbeddingTable(num_rows=10, dim=4, seed=0)
        assert table.weights.shape == (10, 4)
        assert table.weights.dtype == np.float32

    def test_lookup_returns_copies(self):
        table = EmbeddingTable(10, 4, seed=0)
        rows = table.lookup([1, 2])
        rows[0, 0] = 99.0
        assert table.weights[1, 0] != 99.0

    def test_set_rows(self):
        table = EmbeddingTable(10, 4, seed=0)
        values = np.ones((2, 4), dtype=np.float32)
        table.set_rows([3, 7], values)
        assert np.allclose(table.lookup([3, 7]), 1.0)

    def test_apply_gradients_handles_duplicates(self):
        table = EmbeddingTable(4, 2, seed=0)
        before = table.row(1)
        grads = np.ones((2, 2), dtype=np.float32)
        table.apply_gradients([1, 1], grads, learning_rate=0.5)
        # Duplicate ids accumulate: two updates of 0.5 each.
        assert np.allclose(table.row(1), before - 1.0)

    def test_row_nbytes(self):
        table = EmbeddingTable(4, 32, seed=0)
        assert table.row_nbytes == 128

    def test_invalid_ids_rejected(self):
        table = EmbeddingTable(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            table.lookup([4])
        with pytest.raises(ConfigurationError):
            table.set_rows([0], np.ones((1, 3), dtype=np.float32))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTable(0, 4)
        with pytest.raises(ConfigurationError):
            EmbeddingTable(4, 0)


class TestSparseSGD:
    def test_update_direction(self):
        sgd = SparseSGD(learning_rate=0.1)
        rows = np.zeros((2, 3), dtype=np.float32)
        grads = np.ones((2, 3), dtype=np.float32)
        updated = sgd.update(rows, grads)
        assert np.allclose(updated, -0.1)

    def test_shape_mismatch_rejected(self):
        sgd = SparseSGD()
        with pytest.raises(ConfigurationError):
            sgd.update(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            SparseSGD(learning_rate=0.0)


class TestSparseAdagrad:
    def test_requires_row_ids(self):
        opt = SparseAdagrad()
        with pytest.raises(ConfigurationError):
            opt.update(np.zeros((1, 2)), np.ones((1, 2)))

    def test_step_size_shrinks_with_accumulated_gradient(self):
        opt = SparseAdagrad(learning_rate=1.0)
        rows = np.zeros((1, 2), dtype=np.float32)
        grads = np.ones((1, 2), dtype=np.float32)
        first = opt.update(rows, grads, row_ids=[7])
        second = opt.update(first, grads, row_ids=[7])
        first_step = np.abs(first - rows)
        second_step = np.abs(second - first)
        assert np.all(second_step < first_step)

    def test_accumulators_are_per_row(self):
        opt = SparseAdagrad(learning_rate=1.0)
        grads = np.ones((1, 2), dtype=np.float32)
        opt.update(np.zeros((1, 2)), grads, row_ids=[1])
        opt.update(np.zeros((1, 2)), grads, row_ids=[2])
        assert opt.tracked_rows == 2

    def test_row_id_length_mismatch_rejected(self):
        opt = SparseAdagrad()
        with pytest.raises(ConfigurationError):
            opt.update(np.zeros((2, 2)), np.zeros((2, 2)), row_ids=[1])
