"""Behavioural tests for the LAORAM client."""

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.core.superblock import SuperblockBin
from repro.datasets.permutation import PermutationTraceGenerator
from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig
from repro.oram.path_oram import PathORAM


@pytest.fixture
def config():
    return LAORAMConfig(
        oram=ORAMConfig(num_blocks=256, block_size_bytes=64, seed=13),
        superblock_size=4,
    )


class TestConstruction:
    def test_requires_laoram_config(self):
        with pytest.raises(ConfigurationError):
            LAORAMClient(ORAMConfig(num_blocks=64))

    def test_describe_matches_paper_notation(self, config):
        assert LAORAMClient(config).describe() == "Normal/S4"
        fat = LAORAMConfig(oram=config.oram.with_overrides(fat_tree=True), superblock_size=8)
        assert LAORAMClient(fat).describe() == "Fat/S8"

    def test_superblock_size_property(self, config):
        assert LAORAMClient(config).superblock_size == 4


class TestRunTrace:
    def test_all_accesses_are_served(self, config, permutation_trace):
        client = LAORAMClient(config)
        client.run_trace(permutation_trace.addresses)
        assert client.statistics.logical_accesses == len(permutation_trace)

    def test_block_conservation(self, config, permutation_trace):
        client = LAORAMClient(config)
        client.run_trace(permutation_trace.addresses)
        assert client.total_real_blocks() == 256

    def test_fewer_path_reads_than_pathoram(self, config, permutation_trace):
        """The headline effect: superblocks cut path reads by roughly S."""
        client = LAORAMClient(config)
        client.run_trace(permutation_trace.addresses)
        baseline = PathORAM(config.oram.with_overrides(seed=99))
        baseline.access_many(permutation_trace.addresses)
        assert (
            client.statistics.total_paths_touched
            < baseline.statistics.total_paths_touched
        )

    def test_windowed_lookahead(self, permutation_trace):
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=256, block_size_bytes=64, seed=13),
            superblock_size=4,
            lookahead_accesses=64,
        )
        client = LAORAMClient(config)
        client.run_trace(permutation_trace.addresses)
        assert client.statistics.logical_accesses == len(permutation_trace)

    def test_payloads_survive_run_trace(self, config, permutation_trace):
        client = LAORAMClient(config)
        client.load_payloads({i: f"row{i}".encode() for i in range(256)})
        client.run_trace(permutation_trace.addresses)
        assert client.read(17) == b"row17"


class TestSuperblockAccess:
    def test_access_superblock_returns_payloads_in_order(self, config):
        client = LAORAMClient(config)
        client.load_payloads({i: bytes([i]) for i in range(256)})
        superblock = SuperblockBin(0, 0, block_ids=(3, 10, 3, 200), leaf=0)
        payloads = client.access_superblock(superblock)
        assert payloads == [bytes([3]), bytes([10]), bytes([3]), bytes([200])]

    def test_duplicate_blocks_in_bin_cost_one_fetch(self, config):
        client = LAORAMClient(config)
        superblock = SuperblockBin(0, 0, block_ids=(7, 7, 7, 7), leaf=0)
        client.access_superblock(superblock)
        assert client.statistics.path_reads <= 1

    def test_access_many_groups_into_bins(self, config):
        client = LAORAMClient(config)
        client.access_many(list(range(16)))
        stats = client.statistics
        assert stats.logical_accesses == 16
        # At most one path read per bin of four plus any eviction dummies.
        assert stats.path_reads <= 16

    def test_write_many_round_trip(self, config):
        client = LAORAMClient(config)
        ids = [3, 9, 30, 77, 100]
        client.write_many(ids, [f"payload-{i}".encode() for i in ids])
        for block_id in ids:
            assert client.read(block_id) == f"payload-{block_id}".encode()

    def test_write_many_counts_accesses_and_batches(self, config):
        client = LAORAMClient(config)
        client.write_many(list(range(16)), [b"x"] * 16)
        stats = client.statistics
        assert stats.logical_accesses == 16
        assert stats.path_reads <= 16

    def test_write_many_length_mismatch_rejected(self, config):
        client = LAORAMClient(config)
        with pytest.raises(ConfigurationError):
            client.write_many([1, 2], [b"only-one"])


class TestInitialPlacement:
    def test_placement_uses_first_occurrence_path(self, config):
        client = LAORAMClient(config)
        plan = client.preprocess([4, 9, 4, 30])
        client.apply_initial_placement(plan)
        assert client.position_map.get(4) == plan.bins[0].leaf
        assert client.position_map.get(30) == plan.bins[0].leaf

    def test_placement_preserves_block_count_and_payloads(self, config):
        client = LAORAMClient(config)
        client.load_payloads({5: b"five"})
        plan = client.preprocess(np.arange(256))
        client.apply_initial_placement(plan)
        assert client.total_real_blocks() == 256
        assert client.read(5) == b"five"

    def test_placement_after_accesses_is_rejected(self, config):
        client = LAORAMClient(config)
        client.read(0)
        plan = client.preprocess([1, 2, 3, 4])
        with pytest.raises(ConfigurationError):
            client.apply_initial_placement(plan)

    def test_first_epoch_is_coalesced_after_placement(self, config):
        """With plan-driven initial placement a bin costs ~1 read from access one."""
        client = LAORAMClient(config)
        trace = PermutationTraceGenerator(256, seed=1).generate(256)
        client.run_trace(trace.addresses)
        stats = client.statistics
        assert stats.path_reads <= len(trace) // config.superblock_size + 8


class TestPlanFallback:
    def test_single_access_without_plan_behaves_like_pathoram(self, config):
        client = LAORAMClient(config)
        client.read(3)
        assert client.statistics.logical_accesses == 1
        assert client.statistics.path_reads <= 1

    def test_blocks_outside_plan_get_random_paths(self, config):
        client = LAORAMClient(config)
        client.preprocess([1, 2, 3, 4])
        client.read(200)  # not in the plan
        assert 0 <= client.position_map.get(200) < config.oram.num_leaves

    def test_trace_cursor_advances(self, config):
        client = LAORAMClient(config)
        before = client.trace_cursor
        client.read(1)
        assert client.trace_cursor == before + 1
