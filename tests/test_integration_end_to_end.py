"""Cross-module integration tests exercising the full system together."""

import numpy as np

from repro.attacks.analysis import analyze_address_leakage, analyze_path_obliviousness
from repro.attacks.observer import CuriousOSObserver, MemoryBusObserver
from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.datasets.kaggle import SyntheticCriteoDataset
from repro.embedding.dlrm import DLRMModel
from repro.embedding.secure_loader import SecureEmbeddingStore
from repro.embedding.table import EmbeddingTable
from repro.embedding.trainer import ObliviousEmbeddingTrainer
from repro.oram.config import ORAMConfig
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM


class TestEndToEndPrivacyStory:
    """The paper's motivating story, executed end to end on the simulator.

    Training DLRM over an unprotected embedding table leaks the categorical
    inputs to a curious OS; the same training loop over LAORAM leaks only a
    uniform path stream, while producing the same learning behaviour.
    """

    ROWS = 128
    DIM = 8

    def _train(self, engine, observer, dataset, samples=30):
        table = EmbeddingTable(self.ROWS, self.DIM, seed=1)
        store = SecureEmbeddingStore(engine, table)
        model = DLRMModel(
            num_dense_features=13,
            small_table_sizes=dataset.table_sizes[:-1],
            embedding_dim=self.DIM,
            seed=0,
        )
        trainer = ObliviousEmbeddingTrainer(store)
        return trainer.train_dlrm_epoch(model, dataset, max_samples=samples)

    def test_insecure_training_leaks_categories_but_oram_does_not(self):
        dataset = SyntheticCriteoDataset(num_samples=30, largest_table_rows=self.ROWS, seed=2)
        true_ids = dataset.categorical[:30, dataset.largest_table_index].tolist()

        # Unprotected training: the curious OS recovers every accessed row.
        insecure_observer = CuriousOSObserver(block_size_bytes=self.DIM * 4, cache_line_bytes=self.DIM * 4)
        insecure = InsecureMemory(
            ORAMConfig(num_blocks=self.ROWS, block_size_bytes=self.DIM * 4),
            observer=insecure_observer,
        )
        insecure_report = self._train(insecure, insecure_observer, dataset)
        recovered = insecure_observer.recovered_block_ids()
        # Each training sample fetches then writes its row; the reads alone
        # already contain every categorical id.
        assert set(true_ids).issubset(set(recovered))
        leakage = analyze_address_leakage(true_ids, recovered[: len(true_ids)])
        assert leakage.leakage_fraction > 0.5

        # LAORAM-protected training: only uniform-looking paths are visible.
        laoram_observer = MemoryBusObserver()
        laoram = LAORAMClient(
            LAORAMConfig(
                oram=ORAMConfig(
                    num_blocks=self.ROWS, block_size_bytes=self.DIM * 4, fat_tree=True, seed=5
                ),
                superblock_size=4,
            ),
            observer=laoram_observer,
        )
        laoram_report = self._train(laoram, laoram_observer, dataset)
        oblivious = analyze_path_obliviousness(
            true_ids, laoram_observer.observed_paths, num_leaves=laoram.config.num_leaves
        )
        assert oblivious.mutual_information_bits < 1.0
        assert not oblivious.uniformity.rejects_uniformity(alpha=0.001)

        # Both runs actually trained (finite loss, same sample count).
        assert np.isfinite(insecure_report.mean_loss)
        assert np.isfinite(laoram_report.mean_loss)


class TestPathORAMVsLAORAMConsistency:
    def test_identical_payload_semantics(self):
        """LAORAM must return exactly the data PathORAM returns."""
        config = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=3)
        payloads = {i: f"row-{i}".encode() for i in range(128)}
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 128, size=256)

        path_oram = PathORAM(config)
        path_oram.load_payloads(dict(payloads))
        expected = path_oram.access_many(addresses.tolist())

        laoram = LAORAMClient(
            LAORAMConfig(oram=config.with_overrides(seed=4), superblock_size=4)
        )
        laoram.load_payloads(dict(payloads))
        plan = laoram.preprocess(addresses)
        laoram.apply_initial_placement(plan)
        actual = []
        for superblock in plan.bins:
            actual.extend(laoram.access_superblock(superblock))
        assert actual == expected

    def test_metrics_orders_match_the_paper(self):
        """Cross-checks the qualitative ordering the whole evaluation relies on."""
        from repro.datasets.kaggle import SyntheticKaggleTrace

        config = ORAMConfig(num_blocks=512, block_size_bytes=64, seed=6)
        trace = SyntheticKaggleTrace(num_blocks=512, hot_band_size=32, seed=7).generate(2048)

        baseline = PathORAM(config)
        baseline.access_many(trace.addresses)
        base_time = baseline.simulated_time_s / len(trace)

        speedups = {}
        for superblock in (2, 4, 8):
            client = LAORAMClient(
                LAORAMConfig(
                    oram=config.with_overrides(fat_tree=True, seed=8 + superblock),
                    superblock_size=superblock,
                )
            )
            client.run_trace(trace.addresses)
            speedups[superblock] = base_time / (client.simulated_time_s / len(trace))
        assert speedups[2] > 1.0
        assert speedups[4] > speedups[2]
        assert speedups[8] > speedups[4] * 0.9
