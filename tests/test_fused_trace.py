"""Fused trace-driver guarantees: bit-identity and zero-allocation.

Three contracts of the fused hot path (PR 8):

* deferred counter aggregation (``TrafficCounter.deferred`` and the bulk
  flush the fused drivers use) is bit-identical to per-event recording,
  across all four protocol families;
* ``run_trace`` is decision-for-decision identical to a per-call ``access``
  loop — counters, timing, position map, stash contents and order, results —
  including under aggressive background eviction, superblock merges, write
  ops and numpy-array inputs;
* the steady-state fused loop performs no per-access numpy allocations:
  ``tracemalloc`` growth over a long trace is bounded by the results list
  plus the block-buffered RNG refills.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.memory.accounting import TrafficCounter
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import ArrayPrORAM, PrORAM, SuperblockMode
from repro.oram.ring_oram import ArrayRingORAM, RingORAM


NUM_BLOCKS = 700


def _config(seed: int = 7) -> ORAMConfig:
    return ORAMConfig(num_blocks=NUM_BLOCKS, block_size_bytes=64, seed=seed)


def _trace(n: int = 1500, seed: int = 11) -> list[int]:
    rng = np.random.default_rng(seed)
    return rng.integers(0, NUM_BLOCKS, size=n).tolist()


def _merge_trace(n_groups: int = 500, seed: int = 12) -> list[int]:
    """Ping-pong group pattern that drives PrORAM's dynamic merge logic."""
    rng = np.random.default_rng(seed)
    trace: list[int] = []
    for _ in range(n_groups):
        group = int(rng.integers(0, NUM_BLOCKS // 2))
        trace += [2 * group, min(2 * group + 1, NUM_BLOCKS - 1), 2 * group]
    return trace


def _state(engine):
    """Everything that must match between two engine instances."""
    stash = engine.stash
    if hasattr(stash, "id_rows"):
        tail = stash.tail
        stash_rows = [
            (int(b), int(leaf))
            for b, leaf in zip(stash.id_rows[:tail], stash.leaf_rows[:tail])
            if b >= 0
        ]
    else:
        stash_rows = [
            (block.block_id, block.leaf) for block in stash
        ]
    return (
        engine.statistics,
        engine.timing.elapsed_s,
        engine.position_map.as_array().tolist(),
        stash_rows,
    )


FAMILIES = [
    ("pathoram", PathORAM, {}),
    ("ringoram", RingORAM, {}),
    ("proram", PrORAM, {"superblock_size": 2, "mode": SuperblockMode.DYNAMIC}),
]

ARRAY_FAMILIES = [
    ("pathoram", ArrayPathORAM, {}),
    ("ringoram", ArrayRingORAM, {}),
    (
        "proram",
        ArrayPrORAM,
        {"superblock_size": 2, "mode": SuperblockMode.DYNAMIC},
    ),
]


class TestDeferredCounterEquivalence:
    """Deferred aggregation == per-event recording, bit for bit."""

    @pytest.mark.parametrize("name,cls,kwargs", FAMILIES)
    def test_reference_families(self, name, cls, kwargs):
        trace = _trace()
        live = cls(_config(), counter=TrafficCounter(), **kwargs)
        deferred = cls(_config(), counter=TrafficCounter(deferred=True), **kwargs)
        for block_id in trace:
            live.access(block_id)
            deferred.access(block_id)
        assert deferred.statistics == live.statistics
        # Snapshot flushes; a second snapshot must not double-count.
        assert deferred.statistics == live.statistics

    def test_laoram(self):
        addresses = np.asarray(_trace(), dtype=np.int64)

        def build(counter):
            return LAORAMClient(
                LAORAMConfig(oram=_config(), superblock_size=4),
                counter=counter,
            )

        live = build(TrafficCounter())
        deferred = build(TrafficCounter(deferred=True))
        live.run_trace(addresses)
        deferred.run_trace(addresses)
        assert deferred.statistics == live.statistics

    def test_stash_history_stays_live_when_deferred(self):
        counter = TrafficCounter(deferred=True)
        counter.record_stash_history = True
        engine = PathORAM(_config(), counter=counter)
        trace = _trace(n=50)
        for block_id in trace:
            engine.access(block_id)
        assert len(counter.stash_history) == len(trace)


class TestRunTraceBitIdentity:
    """run_trace == per-call access loop on both backends."""

    @pytest.mark.parametrize("name,cls,kwargs", ARRAY_FAMILIES)
    def test_fused_matches_per_call_loop(self, name, cls, kwargs):
        trace = _trace()
        fused = cls(_config(), **kwargs)
        loop = cls(_config(), **kwargs)
        fused_results = fused.run_trace(trace)
        loop_results = [loop.access(block_id) for block_id in trace]
        assert fused_results == loop_results
        assert _state(fused) == _state(loop)

    @pytest.mark.parametrize("name,cls,kwargs", ARRAY_FAMILIES)
    def test_fused_matches_reference_engine(self, name, cls, kwargs):
        ref_cls = dict(
            pathoram=PathORAM, ringoram=RingORAM, proram=PrORAM
        )[name]
        trace = _trace()
        fused = cls(_config(), **kwargs)
        reference = ref_cls(_config(), **kwargs)
        fused_results = fused.run_trace(trace)
        ref_results = [reference.access(block_id) for block_id in trace]
        assert fused_results == ref_results
        assert _state(fused) == _state(reference)

    def test_aggressive_background_eviction(self):
        eviction = EvictionPolicy(trigger_threshold=2, drain_target=1)
        trace = _trace()
        fused = ArrayPathORAM(_config(), eviction=eviction)
        loop = ArrayPathORAM(_config(), eviction=eviction)
        assert fused.run_trace(trace) == [loop.access(b) for b in trace]
        assert _state(fused) == _state(loop)
        assert fused.statistics.background_evictions > 0

    def test_proram_merge_heavy_trace(self):
        trace = _merge_trace()
        kwargs = {"superblock_size": 2, "mode": SuperblockMode.DYNAMIC}
        fused = ArrayPrORAM(_config(), **kwargs)
        loop = ArrayPrORAM(_config(), **kwargs)
        assert fused.run_trace(trace) == [loop.access(b) for b in trace]
        assert _state(fused) == _state(loop)
        assert fused.merged_group_count == loop.merged_group_count
        assert fused.merged_group_count > 0

    def test_write_ops_round_trip(self):
        trace = _trace(n=400)
        payloads = [f"payload-{i}" for i in range(len(trace))]
        fused = ArrayPathORAM(_config())
        loop = ArrayPathORAM(_config())
        fused_results = fused.run_trace(
            trace, ops=AccessOp.WRITE, payloads=payloads
        )
        loop_results = [
            loop.access(b, AccessOp.WRITE, p) for b, p in zip(trace, payloads)
        ]
        assert fused_results == loop_results
        assert _state(fused) == _state(loop)
        # Written payloads are served back by subsequent reads.
        last = {b: p for b, p in zip(trace, payloads)}
        reads = fused.run_trace(list(last))
        assert reads == [last[b] for b in last]

    def test_ndarray_input(self):
        trace = np.asarray(_trace(n=300), dtype=np.int64)
        fused = ArrayPathORAM(_config())
        loop = ArrayPathORAM(_config())
        assert fused.run_trace(trace) == [loop.access(int(b)) for b in trace]
        assert _state(fused) == _state(loop)

    def test_empty_trace(self):
        engine = ArrayPathORAM(_config())
        before = _state(engine)
        assert engine.run_trace([]) == []
        assert _state(engine) == before

    def test_out_of_range_id_raises_and_flushes(self):
        from repro.exceptions import BlockNotFoundError

        engine = ArrayPathORAM(_config())
        mirror = ArrayPathORAM(_config())
        trace = _trace(n=50)
        with pytest.raises(BlockNotFoundError):
            engine.run_trace(trace + [NUM_BLOCKS + 5])
        # The prefix before the bad id must have been executed and flushed.
        for block_id in trace:
            mirror.access(block_id)
        assert _state(engine) == _state(mirror)

    def test_access_many_sequential_routes_through_run_trace(self):
        trace = _trace(n=300)
        via_many = ArrayPathORAM(_config())
        via_trace = ArrayPathORAM(_config())
        assert via_many.access_many(trace) == via_trace.run_trace(trace)
        assert _state(via_many) == _state(via_trace)


class TestZeroAllocationSteadyState:
    """tracemalloc regression: the fused loop's growth is bounded."""

    def test_array_path_oram_fused_loop(self):
        engine = ArrayPathORAM(_config())
        warmup = _trace(n=600, seed=3)
        engine.run_trace(warmup)

        steady = _trace(n=2000, seed=4)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        results = engine.run_trace(steady)
        after, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(results) == len(steady)

        growth = after - before
        # Steady-state allocations are the results list (one pointer-sized
        # slot per access) plus the periodic 512-draw RNG leaf refills.
        # Per-access numpy work (path reads, write-backs, counter updates)
        # must run entirely in preallocated scratch: allow a fixed 64 KiB
        # slack, far below one numpy temporary per access (~2000 * >100B).
        results_bytes = len(steady) * 16
        assert growth <= results_bytes + 64 * 1024, (
            f"fused loop grew {growth}B over {len(steady)} accesses "
            f"(results list bound {results_bytes}B + 64KiB slack)"
        )
        # Peak admits the sync-out flush (stash re-materialization, counter
        # bulk add) but no per-access temporaries.
        assert peak - before <= results_bytes + 256 * 1024
