"""Tests for the access-trace abstraction and all workload generators."""

import numpy as np
import pytest

from repro.datasets.base import AccessTrace
from repro.datasets.gaussian import GaussianTraceGenerator
from repro.datasets.kaggle import (
    KAGGLE_LARGEST_TABLE_ROWS,
    NUM_CATEGORICAL_FEATURES,
    SyntheticCriteoDataset,
    SyntheticKaggleTrace,
)
from repro.datasets.permutation import PermutationTraceGenerator
from repro.datasets.registry import available_traces, make_trace
from repro.datasets.xnli import SyntheticXNLIDataset, SyntheticXNLITrace
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError, TraceError


class TestAccessTrace:
    def test_rejects_out_of_range_addresses(self):
        with pytest.raises(TraceError):
            AccessTrace("bad", 4, np.array([0, 4]))

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            AccessTrace("bad", 4, np.array([], dtype=np.int64))

    def test_head_and_indexing(self):
        trace = AccessTrace("t", 10, np.arange(10))
        assert len(trace.head(3)) == 3
        assert trace[4] == 4
        assert isinstance(trace[2:5], AccessTrace)

    def test_repeat_and_concat(self):
        trace = AccessTrace("t", 10, np.array([1, 2, 3]))
        assert len(trace.repeat(3)) == 9
        assert len(trace.concat(trace)) == 6

    def test_concat_rejects_mismatched_tables(self):
        a = AccessTrace("a", 10, np.array([1]))
        b = AccessTrace("b", 20, np.array([1]))
        with pytest.raises(TraceError):
            a.concat(b)

    def test_statistics(self):
        trace = AccessTrace("t", 100, np.array([1, 1, 1, 50, 60]))
        stats = trace.statistics(hot_band_size=1)
        assert stats.num_unique_accessed == 3
        assert stats.duplicate_fraction == pytest.approx(0.4)
        assert stats.hot_band_fraction == pytest.approx(0.6)


class TestPermutation:
    def test_single_epoch_has_no_duplicates(self):
        trace = PermutationTraceGenerator(100, seed=0).generate(100)
        assert len(set(trace.addresses.tolist())) == 100

    def test_multi_epoch_covers_table_repeatedly(self):
        trace = PermutationTraceGenerator(50, seed=0).generate(150)
        counts = np.bincount(trace.addresses, minlength=50)
        assert counts.min() == 3
        assert counts.max() == 3

    def test_epochs_use_different_orders(self):
        trace = PermutationTraceGenerator(64, seed=0).generate(128)
        first, second = trace.addresses[:64], trace.addresses[64:]
        assert not np.array_equal(first, second)

    def test_reproducible(self):
        a = PermutationTraceGenerator(64, seed=5).generate(64)
        b = PermutationTraceGenerator(64, seed=5).generate(64)
        assert np.array_equal(a.addresses, b.addresses)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PermutationTraceGenerator(0)
        with pytest.raises(ConfigurationError):
            PermutationTraceGenerator(10).generate(0)


class TestGaussian:
    def test_addresses_within_range(self):
        trace = GaussianTraceGenerator(1000, seed=1).generate(5000)
        assert trace.addresses.min() >= 0
        assert trace.addresses.max() < 1000

    def test_concentrated_around_mean(self):
        trace = GaussianTraceGenerator(1000, seed=1).generate(5000)
        near_mean = np.abs(trace.addresses - 500) < 250
        assert near_mean.mean() > 0.9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GaussianTraceGenerator(100, std_fraction=0.0)


class TestZipf:
    def test_skewed_popularity(self):
        trace = ZipfTraceGenerator(1000, exponent=1.3, seed=2).generate(5000)
        counts = np.bincount(trace.addresses, minlength=1000)
        top_share = np.sort(counts)[::-1][:10].sum() / 5000
        assert top_share > 0.2

    def test_shuffle_spreads_popular_ids(self):
        trace = ZipfTraceGenerator(1000, exponent=1.3, shuffle_ranks=True, seed=2).generate(5000)
        counts = np.bincount(trace.addresses, minlength=1000)
        hottest = int(np.argmax(counts))
        assert hottest != 0 or counts[0] < 5000

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            ZipfTraceGenerator(100, exponent=0.0)


class TestKaggleTrace:
    def test_default_table_size_matches_paper(self):
        assert KAGGLE_LARGEST_TABLE_ROWS == 10_131_227

    def test_mostly_random_with_hot_band(self):
        trace = SyntheticKaggleTrace(
            num_blocks=100_000, hot_band_size=100, hot_fraction=0.15, seed=3
        ).generate(20_000)
        stats = trace.statistics(hot_band_size=100)
        assert stats.hot_band_fraction > 0.10
        assert stats.num_unique_accessed > 10_000

    def test_hot_band_sits_at_low_indices(self):
        trace = SyntheticKaggleTrace(
            num_blocks=100_000, hot_band_size=100, hot_fraction=0.3, seed=3
        ).generate(20_000)
        low = (trace.addresses < 100).mean()
        assert low > 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SyntheticKaggleTrace(num_blocks=100, hot_band_size=100)
        with pytest.raises(ConfigurationError):
            SyntheticKaggleTrace(num_blocks=100, hot_fraction=1.5)


class TestCriteoDataset:
    def test_shapes(self):
        dataset = SyntheticCriteoDataset(num_samples=200, largest_table_rows=1000, seed=0)
        assert dataset.dense.shape == (200, 13)
        assert dataset.categorical.shape == (200, NUM_CATEGORICAL_FEATURES)
        assert dataset.labels.shape == (200,)

    def test_categorical_ids_within_table_sizes(self):
        dataset = SyntheticCriteoDataset(num_samples=100, largest_table_rows=500, seed=0)
        for column, size in enumerate(dataset.table_sizes):
            assert dataset.categorical[:, column].max() < size

    def test_labels_are_binary_and_mixed(self):
        dataset = SyntheticCriteoDataset(num_samples=500, largest_table_rows=1000, seed=0)
        assert set(np.unique(dataset.labels)) == {0, 1}

    def test_largest_table_trace(self):
        dataset = SyntheticCriteoDataset(num_samples=100, largest_table_rows=750, seed=0)
        trace = dataset.largest_table_trace()
        assert trace.num_blocks == 750
        assert len(trace) == 100

    def test_batches(self):
        dataset = SyntheticCriteoDataset(num_samples=10, largest_table_rows=100, seed=0)
        batches = list(dataset.batches(4))
        assert len(batches) == 3
        assert batches[0][0].shape[0] == 4
        assert batches[-1][0].shape[0] == 2


class TestXNLI:
    def test_trace_is_zipfian(self):
        trace = SyntheticXNLITrace(vocabulary_size=5000, seed=4).generate(20_000)
        stats = trace.statistics(hot_band_size=50)
        assert stats.duplicate_fraction > 0.4

    def test_dataset_shapes_and_labels(self):
        dataset = SyntheticXNLIDataset(num_samples=50, vocabulary_size=512, sequence_length=8)
        assert dataset.tokens.shape == (50, 8)
        assert set(np.unique(dataset.labels)).issubset({0, 1, 2})

    def test_token_trace_flattens_sequences(self):
        dataset = SyntheticXNLIDataset(num_samples=10, vocabulary_size=128, sequence_length=4)
        assert len(dataset.token_trace()) == 40

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SyntheticXNLITrace(vocabulary_size=1)
        with pytest.raises(ConfigurationError):
            SyntheticXNLIDataset(num_samples=0)


class TestRegistry:
    def test_all_names_build(self):
        for name in available_traces():
            trace = make_trace(name, 256, 128, seed=1)
            assert len(trace) == 128
            assert trace.num_blocks == 256

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("imagenet", 256, 128)
