"""Tests for the binary-tree server storage (normal and fat)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.memory.block import Block
from repro.oram.tree import TreeStorage


def make_tree(depth=3, bucket=2, block_size=64, metadata=0, capacities=None):
    caps = capacities if capacities is not None else [bucket] * (depth + 1)
    return TreeStorage(
        depth=depth,
        bucket_capacities=caps,
        block_size_bytes=block_size,
        metadata_bytes_per_block=metadata,
    )


class TestGeometry:
    def test_num_buckets_and_leaves(self):
        tree = make_tree(depth=3)
        assert tree.num_buckets == 15
        assert tree.num_leaves == 8

    def test_capacity_schedule_length_must_match_depth(self):
        with pytest.raises(ConfigurationError):
            TreeStorage(depth=3, bucket_capacities=[4, 4], block_size_bytes=64)

    def test_fat_tree_capacities_per_level(self):
        tree = make_tree(depth=3, capacities=[8, 6, 5, 4])
        assert tree.capacity_at_level(0) == 8
        assert tree.capacity_at_level(3) == 4
        assert tree.bucket(0, 0).capacity == 8
        assert tree.bucket(3, 5).capacity == 4

    def test_total_slots_and_server_bytes(self):
        tree = make_tree(depth=2, bucket=2, block_size=100, metadata=10)
        # 1 + 2 + 4 nodes, 2 slots each, 110 bytes per slot.
        assert tree.total_slots == 14
        assert tree.server_memory_bytes == 14 * 110

    def test_path_cost_counts_all_levels(self):
        tree = make_tree(depth=3, bucket=2, block_size=50)
        num_buckets, num_bytes = tree.path_cost(leaf=0)
        assert num_buckets == 4
        assert num_bytes == 8 * 50

    def test_fat_path_cost_is_larger(self):
        normal = make_tree(depth=3, bucket=4)
        fat = make_tree(depth=3, capacities=[8, 7, 5, 4])
        assert fat.path_cost(0)[1] > normal.path_cost(0)[1]


class TestPathOperations:
    def test_read_path_removes_blocks(self):
        tree = make_tree(depth=3)
        tree.bucket(0, 0).add(Block(1, 0))
        tree.bucket(3, 5).add(Block(2, 5))
        blocks = tree.read_path(5)
        ids = {block.block_id for block in blocks}
        assert ids == {1, 2}
        assert tree.real_block_count() == 0

    def test_read_path_ignores_other_paths(self):
        tree = make_tree(depth=3)
        tree.bucket(3, 0).add(Block(1, 0))
        blocks = tree.read_path(7)
        assert blocks == []
        assert tree.real_block_count() == 1

    def test_peek_path_does_not_remove(self):
        tree = make_tree(depth=3)
        tree.bucket(2, 4).add(Block(9, 4))
        assert len(tree.peek_path(4)) == 1
        assert tree.real_block_count() == 1

    def test_write_path_places_blocks_per_level(self):
        tree = make_tree(depth=3, bucket=2)
        tree.write_path(3, {0: [Block(1, 3)], 3: [Block(2, 3), Block(3, 3)]})
        assert tree.real_block_count() == 3
        assert tree.bucket(3, 3).find(2) is not None

    def test_write_path_overflow_rejected(self):
        tree = make_tree(depth=3, bucket=1)
        with pytest.raises(ConfigurationError):
            tree.write_path(0, {0: [Block(1, 0), Block(2, 0)]})

    def test_write_respects_existing_occupancy(self):
        tree = make_tree(depth=3, bucket=1)
        tree.write_path(0, {0: [Block(1, 0)]})
        with pytest.raises(ConfigurationError):
            tree.write_path(1, {0: [Block(2, 1)]})


class TestBulkHelpers:
    def test_try_place_prefers_deepest_level(self):
        tree = make_tree(depth=3, bucket=2)
        block = Block(5, leaf=6)
        assert tree.try_place_on_path(block)
        assert tree.bucket(3, 6).find(5) is not None

    def test_try_place_falls_back_toward_root(self):
        tree = make_tree(depth=2, bucket=1)
        assert tree.try_place_on_path(Block(1, leaf=2))
        assert tree.try_place_on_path(Block(2, leaf=2))
        assert tree.try_place_on_path(Block(3, leaf=2))
        # Path is now full at every level.
        assert not tree.try_place_on_path(Block(4, leaf=2))

    def test_occupancy_by_level(self):
        tree = make_tree(depth=2, bucket=2)
        tree.bucket(0, 0).add(Block(1, 0))
        occupancy = tree.occupancy_by_level()
        assert occupancy[0] == pytest.approx(0.5)
        assert occupancy[1] == 0.0

    def test_iter_blocks(self):
        tree = make_tree(depth=2, bucket=2)
        tree.bucket(0, 0).add(Block(1, 0))
        tree.bucket(2, 3).add(Block(2, 3))
        assert {block.block_id for block in tree.iter_blocks()} == {1, 2}
