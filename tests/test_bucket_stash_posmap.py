"""Tests for the bucket, stash and position-map building blocks."""

import numpy as np
import pytest

from repro.exceptions import BlockNotFoundError, ConfigurationError, StashOverflowError
from repro.memory.block import Block
from repro.oram.bucket import Bucket
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash


class TestBucket:
    def test_capacity_enforced(self):
        bucket = Bucket(capacity=2)
        bucket.add(Block(0, 0))
        bucket.add(Block(1, 0))
        assert not bucket.has_space()
        with pytest.raises(ValueError):
            bucket.add(Block(2, 0))

    def test_free_slots(self):
        bucket = Bucket(capacity=3)
        bucket.add(Block(0, 0))
        assert bucket.free_slots == 2

    def test_pop_all_empties_bucket(self):
        bucket = Bucket(capacity=3)
        bucket.extend([Block(0, 0), Block(1, 0)])
        blocks = bucket.pop_all()
        assert len(blocks) == 2
        assert len(bucket) == 0

    def test_remove_specific_block(self):
        bucket = Bucket(capacity=3)
        bucket.extend([Block(0, 0), Block(1, 0)])
        removed = bucket.remove(1)
        assert removed.block_id == 1
        assert bucket.remove(1) is None

    def test_find_without_removing(self):
        bucket = Bucket(capacity=2)
        bucket.add(Block(7, 0))
        assert bucket.find(7).block_id == 7
        assert len(bucket) == 1
        assert bucket.find(8) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Bucket(capacity=0)


class TestStash:
    def test_add_and_pop(self):
        stash = Stash()
        stash.add(Block(3, 1))
        assert 3 in stash
        assert stash.pop(3).block_id == 3
        assert 3 not in stash

    def test_get_does_not_remove(self):
        stash = Stash()
        stash.add(Block(3, 1))
        assert stash.get(3) is not None
        assert len(stash) == 1

    def test_duplicate_add_replaces(self):
        stash = Stash()
        stash.add(Block(3, 1, payload=b"a"))
        stash.add(Block(3, 2, payload=b"b"))
        assert len(stash) == 1
        assert stash.get(3).payload == b"b"

    def test_capacity_overflow_raises(self):
        stash = Stash(capacity=2)
        stash.add(Block(0, 0))
        stash.add(Block(1, 0))
        with pytest.raises(StashOverflowError):
            stash.add(Block(2, 0))

    def test_replacing_existing_block_does_not_overflow(self):
        stash = Stash(capacity=1)
        stash.add(Block(0, 0))
        stash.add(Block(0, 5))
        assert stash.get(0).leaf == 5

    def test_block_ids_and_iteration(self):
        stash = Stash()
        for block_id in (5, 9, 2):
            stash.add(Block(block_id, 0))
        assert sorted(stash.block_ids) == [2, 5, 9]
        assert sorted(block.block_id for block in stash) == [2, 5, 9]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Stash(capacity=0)


class TestPositionMap:
    def test_initial_leaves_in_range(self):
        rng = np.random.default_rng(0)
        pmap = PositionMap(num_blocks=100, num_leaves=16, rng=rng)
        leaves = pmap.as_array()
        assert leaves.min() >= 0
        assert leaves.max() < 16

    def test_set_and_get(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        pmap.set(3, 5)
        assert pmap.get(3) == 5

    def test_get_many_vectorised(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        many = pmap.get_many([0, 1, 2])
        assert many.shape == (3,)

    def test_out_of_range_block_rejected(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        with pytest.raises(BlockNotFoundError):
            pmap.get(10)
        with pytest.raises(BlockNotFoundError):
            pmap.get_many([0, 99])

    def test_out_of_range_leaf_rejected(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            pmap.set(0, 8)

    def test_initial_distribution_is_roughly_uniform(self):
        pmap = PositionMap(20000, 16, np.random.default_rng(0))
        counts = np.bincount(pmap.as_array(), minlength=16)
        assert counts.min() > 1000

    def test_client_memory_reported(self):
        pmap = PositionMap(1000, 16, np.random.default_rng(0))
        assert pmap.client_memory_bytes() == 8000

    def test_non_integer_ids_rejected(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            pmap.get_many(np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            pmap.set_many(np.array([0.5, 1.5]), [2, 3])

    def test_non_integer_leaves_rejected(self):
        # Float leaves used to be silently truncated into the int64 array;
        # they must now fail with the same exception type the scalar
        # ``set`` raises for an invalid leaf.
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        before = pmap.as_array()
        with pytest.raises(ConfigurationError):
            pmap.set_many([0, 1], np.array([2.7, 3.2]))
        assert np.array_equal(pmap.as_array(), before)  # nothing was written

    def test_set_many_out_of_range_matches_scalar_exceptions(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        with pytest.raises(BlockNotFoundError):
            pmap.set_many([0, 99], [1, 2])
        with pytest.raises(ConfigurationError):
            pmap.set_many([0, 1], [1, 8])

    def test_empty_batches_allowed(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        before = pmap.as_array()
        pmap.set_many([], [])
        assert pmap.get_many([]).size == 0
        assert np.array_equal(pmap.as_array(), before)

    def test_peek_and_load_channel(self):
        pmap = PositionMap(10, 8, np.random.default_rng(0))
        pmap.load(2, 6)
        assert pmap.peek(2) == 6
        pmap.load_many([3, 4], [1, 2])
        assert pmap.peek_many([3, 4]).tolist() == [1, 2]
        with pytest.raises(BlockNotFoundError):
            pmap.peek(10)
