"""Tests for the static analysis framework (``repro.analysis``).

Three layers:

* Fixture corpus — every ``tests/analysis_fixtures/*.py`` file carries
  ``EXPECT`` markers naming the exact rule and line the analyzer must
  report; good fixtures carry none and must come back clean.
* Self-scan regression — ``src/repro`` + ``benchmarks`` under the default
  manifest must match the committed (empty) baseline, with zero findings
  in ``src/repro/oram/``.
* Planted bugs — a scratch copy of the real engine under a temp
  ``repro/oram/`` directory (so suffix matching applies the real
  manifest) with a planted secret branch / unseeded RNG / hot-path
  allocation / unguarded flush must be caught.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    AllocScope,
    AnalysisConfig,
    Declassifier,
    Finding,
    ModuleSources,
    analyze_paths,
    default_config,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysis.cli import main as cli_main

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z]{2,8}\d{3}(?:\s*,\s*[A-Z]{2,8}\d{3})*)")
_EXPECT_BELOW_RE = re.compile(
    r"#\s*EXPECT-BELOW:\s*([A-Z]{2,8}\d{3}(?:\s*,\s*[A-Z]{2,8}\d{3})*)"
)


def fixture_config() -> AnalysisConfig:
    """The manifest the fixture corpus is analyzed under."""
    sources = ModuleSources(
        params=frozenset({"block_id", "block_ids"}),
        attrs=frozenset({"position_map.leaves", "stash"}),
        calls=frozenset({"position_map.get"}),
        declassifiers=(Declassifier("read_path", (0,)),),
    )
    return AnalysisConfig(
        sources={
            "analysis_fixtures/obl_bad.py": sources,
            "analysis_fixtures/obl_good.py": sources,
        },
        obl_hot_functions={
            "analysis_fixtures/obl_bad.py": ("*",),
            "analysis_fixtures/obl_good.py": ("*",),
        },
        observable_containers=frozenset({"slots", "occ"}),
        alloc_hot_functions={
            "analysis_fixtures/alloc_bad.py": (
                AllocScope("hot_helper", "body"),
                AllocScope("Driver.run_trace", "loops"),
            ),
            "analysis_fixtures/alloc_good.py": (
                AllocScope("hot_helper", "body"),
                AllocScope("Driver.run_trace", "loops"),
            ),
        },
        fused_drivers={
            "analysis_fixtures/cnt_bad.py": ("*._run_trace_fused",),
            "analysis_fixtures/cnt_good.py": ("*._run_trace_fused",),
        },
        rng_allowed_modules=("repro/utils/rng.py",),
    )


def expected_markers(path: Path) -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is not None:
            for rule in re.split(r"\s*,\s*", match.group(1)):
                expected.add((path.name, lineno, rule))
        match = _EXPECT_BELOW_RE.search(line)
        if match is not None:
            for rule in re.split(r"\s*,\s*", match.group(1)):
                expected.add((path.name, lineno + 1, rule))
    return expected


# ----------------------------------------------------------------------
# Fixture corpus
# ----------------------------------------------------------------------
def test_fixture_corpus_matches_markers_exactly():
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.glob("*.py")):
        expected |= expected_markers(path)
    assert expected, "fixture corpus must carry EXPECT markers"
    result = analyze_paths([str(FIXTURES)], fixture_config())
    got = {(Path(f.path).name, f.line, f.rule) for f in result.findings}
    assert got == expected


@pytest.mark.parametrize(
    "name, rule",
    [
        ("obl_bad.py", "OBL001"),
        ("obl_bad.py", "OBL002"),
        ("rng_bad.py", "RNG001"),
        ("alloc_bad.py", "ALLOC001"),
        ("api_bad.py", "API001"),
        ("cnt_bad.py", "CNT001"),
        ("suppression.py", "SUP001"),
    ],
)
def test_bad_fixture_triggers_rule(name, rule):
    result = analyze_paths([str(FIXTURES / name)], fixture_config())
    assert any(f.rule == rule for f in result.findings), (
        f"{name} should trigger {rule}; got "
        f"{[(f.rule, f.line) for f in result.findings]}"
    )


@pytest.mark.parametrize(
    "name",
    ["obl_good.py", "rng_good.py", "alloc_good.py", "api_good.py", "cnt_good.py"],
)
def test_good_fixture_is_clean(name):
    result = analyze_paths([str(FIXTURES / name)], fixture_config())
    assert result.findings == []


def test_valid_suppressions_are_recorded_with_reasons():
    result = analyze_paths([str(FIXTURES / "suppression.py")], fixture_config())
    assert len(result.suppressed) == 2
    assert all(supp.reason for _, supp in result.suppressed)
    assert sum(1 for f in result.findings if f.rule == "SUP001") == 2
    # The reasonless allow does NOT suppress the finding below it.
    assert sum(1 for f in result.findings if f.rule == "RNG001") == 1


# ----------------------------------------------------------------------
# Baseline machinery
# ----------------------------------------------------------------------
def test_baseline_round_trip_and_drift_tolerance(tmp_path):
    findings = [
        Finding(rule="RNG001", path="a.py", line=3, col=0, message="msg-a"),
        Finding(rule="OBL001", path="b.py", line=7, col=4, message="msg-b"),
    ]
    target = tmp_path / "baseline.json"
    save_baseline(str(target), findings)
    loaded = load_baseline(str(target))
    assert sorted(f.key() for f in loaded) == sorted(f.key() for f in findings)

    new, matched, stale = split_against_baseline(findings, loaded)
    assert (new, len(matched), stale) == ([], 2, [])

    # Pure line drift keeps matching: identity is (rule, path, message).
    drifted = [
        Finding(rule="RNG001", path="a.py", line=30, col=8, message="msg-a"),
        Finding(rule="OBL001", path="b.py", line=1, col=0, message="msg-b"),
    ]
    new, matched, stale = split_against_baseline(drifted, loaded)
    assert (new, len(matched), stale) == ([], 2, [])

    # A changed message is a new finding and leaves a stale entry behind.
    changed = [
        Finding(rule="RNG001", path="a.py", line=3, col=0, message="other"),
    ]
    new, matched, stale = split_against_baseline(changed, loaded)
    assert len(new) == 1 and matched == [] and len(stale) == 2


def test_malformed_baseline_is_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    from repro.analysis import AnalysisError

    with pytest.raises(AnalysisError):
        load_baseline(str(bad))


# ----------------------------------------------------------------------
# Self-scan regression
# ----------------------------------------------------------------------
def test_self_scan_matches_committed_baseline():
    baseline = load_baseline(str(REPO_ROOT / ".analysis-baseline.json"))
    result = analyze_paths(
        [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "benchmarks")],
        default_config(),
    )
    new, _, _ = split_against_baseline(result.findings, baseline)
    assert new == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in new
    ]
    # Empty-baseline policy for the engine core: every finding there must be
    # fixed, inline-suppressed with a reason, or manifest-declassified.
    oram = [
        f
        for f in result.findings
        if "repro/oram/" in f.path.replace("\\", "/")
    ]
    assert oram == []
    # Both sanction mechanisms are actually exercised by production code.
    assert result.suppressed
    assert result.declassified
    assert all(supp.reason for _, supp in result.suppressed)


# ----------------------------------------------------------------------
# Planted bugs in a scratch copy of the real engine
# ----------------------------------------------------------------------
_PLANT_SECRET_BRANCH = '''

class TreeORAMEngine:
    def access(self, block_id):
        if block_id > 128:
            return None
        return block_id
'''

_PLANT_UNSEEDED_RNG = """

scratch_rng = np.random.default_rng()
"""

_PLANT_HOT_ALLOCATION = '''

def _fused_fetch(read_ids, pm, stash_map, leaf):
    rows = [key for key in stash_map]
    return rows
'''

_PLANT_UNGUARDED_FLUSH = '''

class ArrayStorageEngine:
    def _run_trace_fused(self, ids, counter):
        logical = 0
        for _block_id in ids:
            logical += 1
        counter.add_bulk(logical)
'''


def _scan_scratch_engine(tmp_path: Path, planted: str) -> list[Finding]:
    scratch = tmp_path / "repro" / "oram"
    scratch.mkdir(parents=True)
    source = (REPO_ROOT / "src" / "repro" / "oram" / "engine.py").read_text(
        encoding="utf-8"
    )
    copy = scratch / "engine.py"
    copy.write_text(source + planted, encoding="utf-8")
    return analyze_paths([str(copy)], default_config()).findings


def test_unmodified_scratch_copy_is_clean(tmp_path):
    assert _scan_scratch_engine(tmp_path, "") == []


@pytest.mark.parametrize(
    "planted, rule",
    [
        (_PLANT_SECRET_BRANCH, "OBL001"),
        (_PLANT_UNSEEDED_RNG, "RNG001"),
        (_PLANT_HOT_ALLOCATION, "ALLOC001"),
        (_PLANT_UNGUARDED_FLUSH, "CNT001"),
    ],
)
def test_planted_bug_is_caught(tmp_path, planted, rule):
    findings = _scan_scratch_engine(tmp_path, planted)
    assert findings, f"planted {rule} bug went undetected"
    assert {f.rule for f in findings} == {rule}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n", encoding="utf-8")

    assert cli_main([str(clean)]) == 0
    assert cli_main([str(dirty)]) == 1
    assert cli_main([str(clean), "--baseline", str(tmp_path / "missing.json")]) == 2

    baseline = tmp_path / "baseline.json"
    assert (
        cli_main([str(dirty), "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    assert cli_main([str(dirty), "--baseline", str(baseline)]) == 0


def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n", encoding="utf-8")
    assert cli_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["new_findings"][0]["rule"] == "RNG001"
    assert payload["new_findings"][0]["line"] == 1


def test_cli_rule_selection(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n", encoding="utf-8")
    assert cli_main([str(dirty), "--rules", "API001"]) == 0
    assert cli_main([str(dirty), "--rules", "RNG001"]) == 1


def test_module_invocation_smoke(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(clean)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    assert proc.returncode == 0, proc.stderr
    assert "0 new finding(s)" in proc.stdout
