"""Tests for the deterministic RNG helpers."""

import numpy as np

from repro.utils.rng import (
    SeedSequenceFactory,
    choose_uniform_leaf,
    make_rng,
    permutation_stream,
    spawn_rngs,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).integers(0, 1000, 10).tolist() == make_rng(42).integers(
            0, 1000, 10
        ).tolist()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, 20)
        b = make_rng(2).integers(0, 1 << 30, 20)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(7, 5)) == 5

    def test_spawned_streams_are_independent(self):
        rngs = spawn_rngs(7, 2)
        assert not np.array_equal(
            rngs[0].integers(0, 1 << 30, 50), rngs[1].integers(0, 1 << 30, 50)
        )

    def test_spawn_is_reproducible(self):
        first = [g.integers(0, 100, 5).tolist() for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 100, 5).tolist() for g in spawn_rngs(9, 3)]
        assert first == second


class TestSeedSequenceFactory:
    def test_counts_spawned_generators(self):
        factory = SeedSequenceFactory(3)
        factory.generator()
        factory.generators(4)
        assert factory.spawned == 5

    def test_generators_are_distinct(self):
        factory = SeedSequenceFactory(3)
        a, b = factory.generators(2)
        assert not np.array_equal(a.integers(0, 1 << 30, 20), b.integers(0, 1 << 30, 20))


class TestHelpers:
    def test_choose_uniform_leaf_in_range(self):
        rng = make_rng(0)
        for _ in range(100):
            assert 0 <= choose_uniform_leaf(rng, 16) < 16

    def test_permutation_stream_yields_full_permutations(self):
        rng = make_rng(0)
        epochs = list(permutation_stream(rng, size=10, epochs=3))
        assert len(epochs) == 3
        for epoch in epochs:
            assert sorted(epoch.tolist()) == list(range(10))
