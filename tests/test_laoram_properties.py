"""Property-based tests (hypothesis) for LAORAM invariants and security."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import LAORAMConfig
from repro.core.laoram import LAORAMClient
from repro.core.preprocessor import Preprocessor
from repro.oram.config import ORAMConfig

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def traces(draw):
    """A small table size, superblock size, fat-tree flag and access stream."""
    num_blocks = draw(st.integers(min_value=8, max_value=128))
    superblock = draw(st.sampled_from([1, 2, 4, 8]))
    fat = draw(st.booleans())
    length = draw(st.integers(min_value=1, max_value=80))
    addresses = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_blocks - 1),
            min_size=length,
            max_size=length,
        )
    )
    return num_blocks, superblock, fat, addresses


def build_client(num_blocks, superblock, fat, seed=0):
    config = LAORAMConfig(
        oram=ORAMConfig(
            num_blocks=num_blocks, block_size_bytes=16, fat_tree=fat, seed=seed
        ),
        superblock_size=superblock,
    )
    return LAORAMClient(config)


class TestLAORAMProperties:
    @_SETTINGS
    @given(traces())
    def test_block_conservation(self, case):
        num_blocks, superblock, fat, addresses = case
        client = build_client(num_blocks, superblock, fat)
        client.run_trace(np.asarray(addresses))
        assert client.total_real_blocks() == num_blocks

    @_SETTINGS
    @given(traces())
    def test_every_access_is_counted(self, case):
        num_blocks, superblock, fat, addresses = case
        client = build_client(num_blocks, superblock, fat, seed=1)
        client.run_trace(np.asarray(addresses))
        assert client.statistics.logical_accesses == len(addresses)

    @_SETTINGS
    @given(traces())
    def test_tree_blocks_lie_on_their_mapped_paths(self, case):
        num_blocks, superblock, fat, addresses = case
        client = build_client(num_blocks, superblock, fat, seed=2)
        client.run_trace(np.asarray(addresses))
        for block in client.tree.iter_blocks():
            assert block.leaf == client.position_map.get(block.block_id)

    @_SETTINGS
    @given(traces())
    def test_laoram_never_reads_more_paths_than_pathoram_would(self, case):
        num_blocks, superblock, fat, addresses = case
        client = build_client(num_blocks, superblock, fat, seed=3)
        client.run_trace(np.asarray(addresses))
        stats = client.statistics
        # PathORAM reads exactly one path per access (plus dummies); LAORAM's
        # real path reads can never exceed the number of accesses.
        assert stats.path_reads <= stats.logical_accesses

    @_SETTINGS
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_plan_leaves_are_uniformly_distributed(self, superblock, seed):
        """Security property: superblock paths are uniform over the leaves."""
        pre = Preprocessor(superblock_size=superblock, num_leaves=64, seed=seed)
        plan = pre.build_plan(np.arange(512))
        leaves = np.array([sb.leaf for sb in plan])
        assert leaves.min() >= 0
        assert leaves.max() < 64
        # Coarse uniformity: both halves of the leaf range get used.
        assert (leaves < 32).any()
        assert (leaves >= 32).any()
