"""Tests for the DRAM, interconnect and combined timing models."""

import pytest

from repro.exceptions import ConfigurationError
from repro.memory.channel import InterconnectModel
from repro.memory.dram import DRAMModel
from repro.memory.timing import TimingModel


class TestDRAMModel:
    def test_access_time_scales_with_buckets(self):
        dram = DRAMModel(row_access_latency_ns=50.0, bandwidth_gib_per_s=16.0)
        assert dram.access_time_s(10, 0) == pytest.approx(500e-9)

    def test_access_time_scales_with_bytes(self):
        dram = DRAMModel(row_access_latency_ns=0.0, bandwidth_gib_per_s=1.0)
        one_gib = 1 << 30
        assert dram.access_time_s(0, one_gib) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        dram = DRAMModel()
        with pytest.raises(ValueError):
            dram.access_time_s(-1, 0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(bandwidth_gib_per_s=0.0)


class TestInterconnectModel:
    def test_latency_per_request(self):
        link = InterconnectModel(request_latency_us=10.0, bandwidth_gib_per_s=8.0)
        assert link.transfer_time_s(3, 0) == pytest.approx(30e-6)

    def test_bandwidth_term(self):
        link = InterconnectModel(request_latency_us=0.0, bandwidth_gib_per_s=2.0)
        assert link.transfer_time_s(0, 1 << 31) == pytest.approx(1.0)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(request_latency_us=-1.0)


class TestTimingModel:
    def test_elapsed_accumulates(self):
        timing = TimingModel()
        first = timing.charge_path_transfer(10, 4096)
        second = timing.charge_path_transfer(10, 4096)
        assert timing.elapsed_s == pytest.approx(first + second)

    def test_client_overhead(self):
        timing = TimingModel(client_overhead_us=5.0)
        timing.charge_client_overhead(4)
        assert timing.elapsed_s == pytest.approx(20e-6)

    def test_charge_arbitrary_seconds(self):
        timing = TimingModel()
        timing.charge_seconds(0.5)
        assert timing.elapsed_s == pytest.approx(0.5)

    def test_negative_charge_rejected(self):
        timing = TimingModel()
        with pytest.raises(ValueError):
            timing.charge_seconds(-1.0)

    def test_reset(self):
        timing = TimingModel()
        timing.charge_path_transfer(5, 1024)
        timing.reset()
        assert timing.elapsed_s == 0.0

    def test_bigger_paths_cost_more(self):
        timing = TimingModel()
        small = timing.charge_path_transfer(10, 1024)
        large = timing.charge_path_transfer(10, 1024 * 1024)
        assert large > small
