"""Tests for the statistical helpers used by the security analysis."""

import numpy as np
import pytest

from repro.utils.rng import make_rng
from repro.utils.stats import (
    chi_square_survival,
    chi_square_uniformity,
    empirical_entropy,
    gini_coefficient,
    mutual_information,
    normalized_histogram,
)


class TestChiSquare:
    def test_uniform_sample_is_not_rejected(self):
        rng = make_rng(0)
        observations = rng.integers(0, 16, size=8000)
        result = chi_square_uniformity(observations, 16)
        assert not result.rejects_uniformity(alpha=0.01)

    def test_constant_sample_is_rejected(self):
        observations = np.zeros(1000, dtype=np.int64)
        result = chi_square_uniformity(observations, 16)
        assert result.rejects_uniformity(alpha=0.01)
        assert result.p_value < 1e-6

    def test_statistic_is_zero_for_perfectly_balanced_counts(self):
        observations = np.repeat(np.arange(8), 10)
        result = chi_square_uniformity(observations, 8)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_rejects_out_of_range_observations(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([0, 1, 9], 4)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([], 4)

    def test_survival_is_monotone_in_statistic(self):
        assert chi_square_survival(5.0, 10) > chi_square_survival(25.0, 10)

    def test_survival_validates_arguments(self):
        with pytest.raises(ValueError):
            chi_square_survival(-1.0, 3)
        with pytest.raises(ValueError):
            chi_square_survival(1.0, 0)


class TestHistogramsAndEntropy:
    def test_normalized_histogram_sums_to_one(self):
        pmf = normalized_histogram([0, 1, 1, 2, 2, 2], 4)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[2] == pytest.approx(0.5)

    def test_normalized_histogram_empty_is_zero(self):
        assert normalized_histogram([], 4).tolist() == [0.0] * 4

    def test_entropy_of_constant_is_zero(self):
        assert empirical_entropy([5] * 100) == pytest.approx(0.0)

    def test_entropy_of_uniform_is_log2(self):
        values = list(range(8)) * 100
        assert empirical_entropy(values) == pytest.approx(3.0, abs=1e-9)


class TestMutualInformation:
    def test_identical_sequences_share_full_entropy(self):
        values = list(range(16)) * 20
        info = mutual_information(values, values)
        assert info == pytest.approx(empirical_entropy(values), abs=1e-9)

    def test_independent_sequences_share_little(self):
        rng = make_rng(1)
        xs = rng.integers(0, 8, 4000).tolist()
        ys = rng.integers(0, 8, 4000).tolist()
        assert mutual_information(xs, ys) < 0.05

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mutual_information([1, 2], [1])

    def test_empty_sequences_have_zero_information(self):
        assert mutual_information([], []) == 0.0


class TestGini:
    def test_equal_values_have_zero_gini(self):
        assert gini_coefficient([3.0, 3.0, 3.0, 3.0]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_values_have_high_gini(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.9

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([1.0, -2.0])

    def test_empty_and_zero_inputs(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0
