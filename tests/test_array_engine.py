"""Tests for the array-backed engines: invariants, equivalence, regressions.

Covers the vectorized ``ArrayPathORAM`` / ``FastLAORAMClient`` stack (row
stash, slot-array tree, plan-array execution), its decision-for-decision
equivalence with the per-object engines, and regression tests for the
plan-consumption and stash-iteration bugs fixed alongside it.
"""

import numpy as np
import pytest

from repro.core.config import LAORAMConfig
from repro.core.fast_laoram import FastLAORAMClient
from repro.core.laoram import LAORAMClient
from repro.core.superblock import LookaheadPlan, SuperblockBin
from repro.datasets.zipf import ZipfTraceGenerator
from repro.exceptions import ConfigurationError, StashOverflowError
from repro.oram.array_path_oram import ArrayPathORAM
from repro.oram.config import ORAMConfig
from repro.oram.stash import ArrayStash
from repro.oram.tree import ArrayTreeStorage


def make_laoram_config(num_blocks=256, superblock_size=4, seed=13, **oram_kwargs):
    return LAORAMConfig(
        oram=ORAMConfig(
            num_blocks=num_blocks, block_size_bytes=64, seed=seed, **oram_kwargs
        ),
        superblock_size=superblock_size,
    )


def assert_engine_consistent(engine):
    """Block conservation plus position-map / tree-leaf / stash coherence."""
    num_blocks = engine.config.num_blocks
    depth = engine.config.depth
    pm = engine.position_map
    assert engine.total_real_blocks() == num_blocks
    seen: list[int] = []
    if isinstance(engine.tree, ArrayTreeStorage):
        for level, node, ids in engine.tree.iter_node_ids():
            for block_id in ids.tolist():
                seen.append(block_id)
                # Path-prefix invariant: a stored block's assigned path must
                # pass through the bucket holding it.
                assert pm.get(block_id) >> (depth - level) == node
        for block_id in engine.stash.block_ids:
            seen.append(block_id)
            # The stash's leaf mirror must agree with the position map.
            assert engine.stash.leaf_of(block_id) == pm.get(block_id)
    else:
        for block in engine.tree.iter_blocks():
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
        for block in engine.stash:
            seen.append(block.block_id)
            assert block.leaf == pm.get(block.block_id)
    assert sorted(seen) == list(range(num_blocks))


class TestArrayStash:
    def make(self, **kwargs):
        kwargs.setdefault("num_blocks", 64)
        kwargs.setdefault("num_leaves", 16)
        return ArrayStash(**kwargs)

    def test_insertion_order_and_membership(self):
        stash = self.make()
        stash.append_rows(
            np.asarray([5, 9, 2], dtype=np.int64),
            np.asarray([1, 3, 7], dtype=np.int64),
        )
        assert len(stash) == 3
        assert stash.block_ids == [5, 9, 2]
        assert 9 in stash and 4 not in stash
        assert stash.leaf_of(9) == 3
        with pytest.raises(KeyError):
            stash.leaf_of(4)

    def test_remove_and_readd_moves_to_end(self):
        stash = self.make()
        stash.append_rows(
            np.asarray([5, 9, 2], dtype=np.int64),
            np.asarray([1, 3, 7], dtype=np.int64),
        )
        assert stash.pop(9)
        assert not stash.pop(9)
        stash.add(9, 4)
        assert stash.block_ids == [5, 2, 9]
        assert stash.leaf_of(9) == 4

    def test_compaction_preserves_order(self):
        stash = self.make(num_blocks=4096, num_leaves=64, initial_rows=8)
        rng = np.random.default_rng(0)
        expected: list[int] = []
        next_id = 0
        for _ in range(200):
            count = int(rng.integers(1, 5))
            ids = np.arange(next_id, next_id + count, dtype=np.int64)
            next_id += count
            stash.append_rows(ids, ids % 64)
            expected.extend(ids.tolist())
            while expected and rng.random() < 0.6:
                victim = expected.pop(int(rng.integers(0, len(expected))))
                assert stash.pop(victim)
        assert stash.block_ids == expected
        assert list(stash.live_ids()) == expected
        for block_id in expected:
            assert stash.leaf_of(block_id) == block_id % 64

    def test_capacity_overflow(self):
        stash = self.make(capacity=2)
        stash.add(1, 0)
        stash.add(2, 1)
        with pytest.raises(StashOverflowError):
            stash.add(3, 2)
        with pytest.raises(StashOverflowError):
            stash.append_rows(
                np.asarray([4], dtype=np.int64), np.asarray([0], dtype=np.int64)
            )

    def test_clear(self):
        stash = self.make()
        stash.append_rows(
            np.asarray([5, 9], dtype=np.int64), np.asarray([1, 3], dtype=np.int64)
        )
        stash.clear()
        assert len(stash) == 0
        assert stash.block_ids == []
        assert 5 not in stash
        stash.add(5, 2)
        assert stash.block_ids == [5]


class TestEngineEquivalence:
    """LAORAM-specific equivalence sweeps (fat tree x superblock size).

    The family-by-family equivalence guarantee lives in
    ``tests/test_engine_equivalence.py``; this class keeps the LAORAM
    configuration sweep that exercises geometries the cross-family harness
    does not.
    """

    @pytest.mark.parametrize("fat_tree", [False, True])
    @pytest.mark.parametrize("superblock_size", [2, 4, 8])
    def test_run_trace_counters_match(self, fat_tree, superblock_size):
        trace = ZipfTraceGenerator(512, exponent=1.2, seed=5).generate(6_000)
        config = make_laoram_config(
            num_blocks=512, superblock_size=superblock_size, fat_tree=fat_tree
        )
        reference = LAORAMClient(config)
        reference.run_trace(trace.addresses)
        fast = FastLAORAMClient(config)
        fast.run_trace(trace.addresses)
        assert fast.statistics == reference.statistics
        assert np.array_equal(
            fast.position_map.as_array(), reference.position_map.as_array()
        )
        assert fast.stash.block_ids == reference.stash.block_ids

    def test_payloads_round_trip_identically(self):
        config = make_laoram_config(num_blocks=128, superblock_size=4)
        rng = np.random.default_rng(3)
        reads = rng.integers(0, 128, size=200).tolist()
        writes = rng.integers(0, 128, size=64).tolist()
        values = [f"payload-{i}" for i in range(len(writes))]
        outputs = []
        for cls in (LAORAMClient, FastLAORAMClient):
            engine = cls(config)
            engine.write_many(writes, values)
            outputs.append(engine.access_many(reads))
        assert outputs[0] == outputs[1]


class TestRandomizedInvariants:
    """Mixed workloads keep both engines conserving every block."""

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_mixed_workload_invariants(self, engine_cls):
        num_blocks = 256
        config = make_laoram_config(num_blocks=num_blocks, superblock_size=4)
        engine = engine_cls(config)
        rng = np.random.default_rng(17)
        trace = rng.integers(0, num_blocks, size=2_048)
        engine.run_trace(trace)
        assert_engine_consistent(engine)
        for _ in range(10):
            op = rng.integers(0, 3)
            if op == 0:
                ids = rng.integers(0, num_blocks, size=int(rng.integers(1, 40)))
                engine.access_many(ids.tolist())
            elif op == 1:
                ids = rng.integers(0, num_blocks, size=int(rng.integers(1, 20)))
                engine.write_many(
                    ids.tolist(), [f"v{int(b)}" for b in ids]
                )
            else:
                engine.access(int(rng.integers(0, num_blocks)))
            assert_engine_consistent(engine)
        assert engine.statistics.logical_accesses > 2_048

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_windowed_trace_invariants(self, engine_cls):
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=128, block_size_bytes=32, seed=29),
            superblock_size=4,
            lookahead_accesses=256,
        )
        trace = ZipfTraceGenerator(128, seed=8).generate(1_500)
        engine = engine_cls(config)
        engine.run_trace(trace.addresses)
        assert_engine_consistent(engine)


class TestPlacementRegressions:
    """Regression coverage for the two initial-placement bugfixes."""

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_placement_with_populated_stash_conserves_blocks(self, engine_cls):
        # Placement must cope with a populated stash (the state bulk-load
        # overflow leaves behind): move a few whole paths into the stash,
        # then re-lay the table out.  Popping stash entries mid-iteration
        # would skip or corrupt blocks here.
        config = make_laoram_config(num_blocks=256, superblock_size=2, seed=3)
        engine = engine_cls(config)
        leaves = {engine.position_map.get(b) for b in range(16)}
        if isinstance(engine, FastLAORAMClient):
            for leaf in leaves:
                ids = engine.tree.read_path_ids(leaf)
                engine.stash.append_rows(ids, engine.position_map.leaves[ids])
        else:
            for leaf in leaves:
                for block in engine.tree.read_path(leaf):
                    engine.stash.add(block)
        assert len(engine.stash) > 0
        trace = np.arange(256, dtype=np.int64)
        plan = engine.preprocess(trace)
        engine.apply_initial_placement(plan)
        assert_engine_consistent(engine)

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_placement_consumes_first_occurrence(self, engine_cls):
        # Block 9 is planned in bins 1 (leaf 6) and 2 (leaf 1).  Placement
        # uses occurrence 0's leaf (6); the first subsequent reassignment
        # must move on to occurrence 1's leaf (1).  Before the fix the same
        # leaf 6 was handed out twice, a linkable repeated-leaf observation.
        config = make_laoram_config(num_blocks=64, superblock_size=2, seed=5)
        engine = engine_cls(config)
        plan = LookaheadPlan(
            [
                SuperblockBin(0, 0, block_ids=(1, 2), leaf=3),
                SuperblockBin(1, 2, block_ids=(9, 3), leaf=6),
                SuperblockBin(2, 4, block_ids=(9, 4), leaf=1),
            ],
            num_leaves=engine.config.num_leaves,
        )
        engine.set_plan(plan)
        engine.apply_initial_placement(plan)
        assert engine.position_map.get(9) == 6
        engine.access(9)  # trace cursor 0 < occurrence index 2
        assert engine.position_map.get(9) == 1
        assert_engine_consistent(engine)

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_placement_only_applies_to_first_window(self, engine_cls):
        # Windowed traces plan window by window; placement may only run on
        # the first window (it requires a counter at zero), and disabling
        # reinitialisation must hold for every window.  The seed code left
        # ``first_window`` latched True when reinitialisation was off.
        config = LAORAMConfig(
            oram=ORAMConfig(num_blocks=64, block_size_bytes=32, seed=31),
            superblock_size=2,
            lookahead_accesses=64,
        )
        trace = ZipfTraceGenerator(64, seed=4).generate(300)
        engine = engine_cls(config)
        engine.run_trace(trace.addresses)  # placement on window 1 only
        assert_engine_consistent(engine)
        engine_no_init = engine_cls(config)
        engine_no_init.run_trace(trace.addresses, reinitialize_placement=False)
        assert_engine_consistent(engine_no_init)

    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_placement_rejected_after_accesses(self, engine_cls):
        config = make_laoram_config(num_blocks=64, superblock_size=2)
        engine = engine_cls(config)
        plan = engine.preprocess(np.arange(64, dtype=np.int64))
        engine.access(0)
        with pytest.raises(ConfigurationError):
            engine.apply_initial_placement(plan)


class TestPlanLeafValidation:
    @pytest.mark.parametrize("engine_cls", [LAORAMClient, FastLAORAMClient])
    def test_out_of_range_plan_leaf_rejected(self, engine_cls):
        # A plan built for a wider tree must fail at the first remap on both
        # engines; the fast engine's direct position-map writes used to slip
        # past PositionMap.set validation.
        config = make_laoram_config(num_blocks=64, superblock_size=2)
        engine = engine_cls(config)
        bad_leaf = engine.config.num_leaves + 5
        plan = LookaheadPlan(
            [
                SuperblockBin(0, 0, block_ids=(1, 2), leaf=3),
                SuperblockBin(1, 2, block_ids=(1, 4), leaf=bad_leaf),
            ],
            num_leaves=2 * engine.config.num_leaves,
        )
        engine.set_plan(plan)
        with pytest.raises(ConfigurationError):
            engine.access_many([1, 2])


class TestHarnessIntegration:
    def test_build_engine_fast_selects_vectorized_twins(self):
        from repro.experiments.configs import build_engine

        oram = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        assert isinstance(build_engine("PathORAM", oram, fast=True), ArrayPathORAM)
        assert isinstance(
            build_engine("Normal/S4", oram, fast=True), FastLAORAMClient
        )
        assert isinstance(build_engine("Normal/S4", oram), LAORAMClient)
        # Families without a twin raise the typed exception (still a
        # ConfigurationError subclass for older callers).
        with pytest.raises(ConfigurationError):
            build_engine("Insecure", oram, fast=True)

    def test_run_configuration_fast_matches_reference(self):
        from repro.datasets.base import AccessTrace
        from repro.experiments.runner import run_configuration

        oram = ORAMConfig(num_blocks=128, block_size_bytes=32, seed=1)
        rng = np.random.default_rng(12)
        addresses = rng.integers(0, 128, size=1_000).astype(np.int64)
        trace = AccessTrace("unit", 128, addresses)
        reference = run_configuration("Fat/S4", trace, oram, seed=5)
        fast = run_configuration("Fat/S4", trace, oram, seed=5, fast=True)
        assert fast.snapshot == reference.snapshot
