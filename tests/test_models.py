"""Tests for the DLRM and XLM-R style models (manual gradients)."""

import numpy as np
import pytest

from repro.embedding.dlrm import DLRMModel
from repro.embedding.xlmr import XLMRClassifier
from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng


class TestDLRMModel:
    def make_model(self, dim=8):
        return DLRMModel(
            num_dense_features=5,
            small_table_sizes=(10, 20),
            embedding_dim=dim,
            seed=0,
        )

    def make_sample(self, model, rng):
        dense = rng.normal(size=5).astype(np.float32)
        small_ids = np.array([3, 7])
        protected = rng.normal(size=model.embedding_dim).astype(np.float32) * 0.1
        return dense, small_ids, protected

    def test_forward_produces_probability(self):
        model = self.make_model()
        rng = make_rng(0)
        dense, small_ids, protected = self.make_sample(model, rng)
        cache = model.forward(dense, small_ids, protected)
        assert 0.0 < cache.probability < 1.0

    def test_backward_returns_finite_gradient_and_loss(self):
        model = self.make_model()
        rng = make_rng(1)
        dense, small_ids, protected = self.make_sample(model, rng)
        cache = model.forward(dense, small_ids, protected)
        grads = model.backward(cache, small_ids, label=1, update=False)
        assert np.isfinite(grads.loss)
        assert np.all(np.isfinite(grads.protected_row_grad))
        assert grads.protected_row_grad.shape == (model.embedding_dim,)

    def test_protected_gradient_matches_finite_differences(self):
        """The manual backward pass must agree with numerical differentiation."""
        model = self.make_model(dim=4)
        rng = make_rng(2)
        dense, small_ids, protected = self.make_sample(model, rng)
        label = 1
        cache = model.forward(dense, small_ids, protected)
        grads = model.backward(cache, small_ids, label, update=False)

        def loss_at(row):
            prob = model.forward(dense, small_ids, row).probability
            eps = 1e-7
            return -(label * np.log(prob + eps) + (1 - label) * np.log(1 - prob + eps))

        numeric = np.zeros_like(protected)
        step = 1e-3
        for index in range(protected.size):
            plus = protected.copy()
            plus[index] += step
            minus = protected.copy()
            minus[index] -= step
            numeric[index] = (loss_at(plus) - loss_at(minus)) / (2 * step)
        assert np.allclose(grads.protected_row_grad, numeric, rtol=1e-2, atol=1e-3)

    def test_training_reduces_loss_on_fixed_sample(self):
        model = self.make_model()
        rng = make_rng(3)
        dense, small_ids, protected = self.make_sample(model, rng)
        first_loss = None
        last_loss = None
        row = protected.copy()
        for _ in range(30):
            cache = model.forward(dense, small_ids, row)
            grads = model.backward(cache, small_ids, label=1, update=True)
            row = row - 0.05 * grads.protected_row_grad
            if first_loss is None:
                first_loss = grads.loss
            last_loss = grads.loss
        assert last_loss < first_loss

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            DLRMModel(num_dense_features=0, small_table_sizes=(4,))
        with pytest.raises(ConfigurationError):
            DLRMModel(num_dense_features=2, small_table_sizes=(4,), learning_rate=0.0)


class TestXLMRClassifier:
    def test_forward_is_a_distribution(self):
        model = XLMRClassifier(embedding_dim=16, num_classes=3, seed=0)
        rng = make_rng(0)
        probabilities = model.forward(rng.normal(size=(6, 16)))
        assert probabilities.shape == (3,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_train_step_returns_token_gradients(self):
        model = XLMRClassifier(embedding_dim=16, seed=0)
        rng = make_rng(1)
        tokens = rng.normal(size=(6, 16)).astype(np.float32)
        result = model.train_step(tokens, label=2, update=False)
        assert result.token_grads.shape == (6, 16)
        assert np.isfinite(result.loss)

    def test_training_reduces_loss(self):
        model = XLMRClassifier(embedding_dim=8, learning_rate=0.5, seed=0)
        rng = make_rng(2)
        tokens = rng.normal(size=(5, 8)).astype(np.float32)
        losses = []
        embeddings = tokens.copy()
        for _ in range(25):
            result = model.train_step(embeddings, label=1)
            embeddings = embeddings - 0.5 * result.token_grads
            losses.append(result.loss)
        assert losses[-1] < losses[0]

    def test_predict_matches_argmax(self):
        model = XLMRClassifier(embedding_dim=8, seed=0)
        rng = make_rng(3)
        tokens = rng.normal(size=(4, 8))
        assert model.predict(tokens) == int(np.argmax(model.forward(tokens)))

    def test_invalid_inputs_rejected(self):
        model = XLMRClassifier(embedding_dim=8, seed=0)
        with pytest.raises(ConfigurationError):
            model.forward(np.zeros((4, 5)))
        with pytest.raises(ConfigurationError):
            model.train_step(np.zeros((4, 8)), label=7)
        with pytest.raises(ConfigurationError):
            XLMRClassifier(embedding_dim=0)
