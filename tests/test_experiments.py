"""Tests for the experiment harness (configs, runner, scales, metrics)."""

import pytest

from repro.core.laoram import LAORAMClient
from repro.datasets.registry import make_trace
from repro.exceptions import ConfigurationError
from repro.experiments.configs import (
    EXTRA_CONFIG_LABELS,
    PAPER_CONFIG_LABELS,
    build_engine,
    build_oram_config,
    parse_label,
)
from repro.experiments.metrics import ExperimentResult
from repro.experiments.runner import compare_configurations, run_configuration
from repro.experiments.scale import TINY, get_scale
from repro.memory.accounting import TrafficSnapshot
from repro.oram.insecure import InsecureMemory
from repro.oram.path_oram import PathORAM
from repro.oram.pr_oram import PrORAM
from repro.oram.ring_oram import RingORAM


class TestScale:
    def test_presets_resolve_by_name(self):
        assert get_scale("tiny").num_blocks == 1 << 10
        assert get_scale("large").num_accesses == 65_536

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_secondary_blocks_default_doubles(self):
        assert TINY.secondary_blocks == TINY.num_blocks * 2


class TestLabels:
    def test_parse_paper_labels(self):
        assert parse_label("PathORAM")["family"] == "pathoram"
        parsed = parse_label("Fat/S8")
        assert parsed == {"family": "laoram", "fat_tree": True, "superblock_size": 8}

    def test_parse_extra_labels(self):
        assert parse_label("RingORAM")["family"] == "ringoram"
        assert parse_label("PrORAM-dynamic/S4")["superblock_size"] == 4

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_label("FancyORAM")

    def test_build_engine_types(self):
        config = build_oram_config(num_blocks=64, block_size_bytes=32)
        assert isinstance(build_engine("PathORAM", config), PathORAM)
        assert isinstance(build_engine("Insecure", config), InsecureMemory)
        assert isinstance(build_engine("RingORAM", config), RingORAM)
        assert isinstance(build_engine("PrORAM-static/S2", config), PrORAM)
        engine = build_engine("Fat/S4", config)
        assert isinstance(engine, LAORAMClient)
        assert engine.describe() == "Fat/S4"

    def test_every_known_label_builds(self):
        config = build_oram_config(num_blocks=64, block_size_bytes=32)
        for label in PAPER_CONFIG_LABELS + EXTRA_CONFIG_LABELS:
            assert build_engine(label, config) is not None


class TestRunner:
    def test_run_configuration_counts_all_accesses(self):
        trace = make_trace("kaggle", 256, 512, seed=1)
        config = build_oram_config(num_blocks=256, block_size_bytes=64)
        result = run_configuration("Normal/S4", trace, config, seed=2)
        assert result.num_accesses == 512
        assert result.snapshot.logical_accesses == 512
        assert result.simulated_time_s > 0

    def test_stash_history_recording(self):
        trace = make_trace("permutation", 256, 256, seed=1)
        config = build_oram_config(num_blocks=256, block_size_bytes=64)
        result = run_configuration(
            "Normal/S4", trace, config, record_stash_history=True
        )
        assert len(result.stash_history) > 0

    def test_compare_configurations_covers_all_labels(self):
        trace = make_trace("gaussian", 256, 384, seed=3)
        config = build_oram_config(num_blocks=256, block_size_bytes=64)
        results = compare_configurations(("PathORAM", "Fat/S4"), trace, config)
        assert set(results) == {"PathORAM", "Fat/S4"}
        assert all(isinstance(r, ExperimentResult) for r in results.values())


class TestMetrics:
    def make_result(self, time_s, total_bytes, accesses=100):
        snapshot = TrafficSnapshot(
            logical_accesses=accesses,
            path_reads=accesses,
            path_writes=accesses,
            dummy_reads=10,
            buckets_read=0,
            buckets_written=0,
            bytes_read=total_bytes // 2,
            bytes_written=total_bytes // 2,
            stash_peak=0,
            background_evictions=0,
        )
        return ExperimentResult(
            label="x",
            dataset="d",
            num_accesses=accesses,
            snapshot=snapshot,
            simulated_time_s=time_s,
            server_memory_bytes=0,
        )

    def test_speedup_over(self):
        fast = self.make_result(1.0, 1000)
        slow = self.make_result(5.0, 1000)
        assert fast.speedup_over(slow) == pytest.approx(5.0)

    def test_traffic_reduction_over(self):
        lean = self.make_result(1.0, 1000)
        heavy = self.make_result(1.0, 4000)
        assert lean.traffic_reduction_over(heavy) == pytest.approx(4.0)

    def test_dummy_reads_per_access(self):
        result = self.make_result(1.0, 100, accesses=100)
        assert result.dummy_reads_per_access == pytest.approx(0.1)
