"""Property-based tests (hypothesis) for PathORAM invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.oram.base import AccessOp
from repro.oram.config import ORAMConfig
from repro.oram.eviction import EvictionPolicy
from repro.oram.path_oram import PathORAM

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def access_sequences(draw):
    """A small ORAM size together with a sequence of block accesses."""
    num_blocks = draw(st.integers(min_value=4, max_value=96))
    length = draw(st.integers(min_value=1, max_value=60))
    blocks = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_blocks - 1),
            min_size=length,
            max_size=length,
        )
    )
    return num_blocks, blocks


class TestPathORAMProperties:
    @_SETTINGS
    @given(access_sequences())
    def test_block_conservation_under_arbitrary_access_streams(self, case):
        num_blocks, accesses = case
        oram = PathORAM(ORAMConfig(num_blocks=num_blocks, block_size_bytes=16, seed=1))
        oram.access_many(accesses)
        assert oram.total_real_blocks() == num_blocks

    @_SETTINGS
    @given(access_sequences())
    def test_every_tree_block_lies_on_its_mapped_path(self, case):
        num_blocks, accesses = case
        oram = PathORAM(ORAMConfig(num_blocks=num_blocks, block_size_bytes=16, seed=2))
        oram.access_many(accesses)
        for block in oram.tree.iter_blocks():
            assert block.leaf == oram.position_map.get(block.block_id)
            on_path = any(
                candidate.block_id == block.block_id
                for candidate in oram.tree.peek_path(block.leaf)
            )
            assert on_path

    @_SETTINGS
    @given(access_sequences(), st.binary(min_size=1, max_size=16))
    def test_last_write_wins(self, case, payload):
        num_blocks, accesses = case
        oram = PathORAM(ORAMConfig(num_blocks=num_blocks, block_size_bytes=16, seed=3))
        target = accesses[0]
        oram.access(target, AccessOp.WRITE, new_payload=payload)
        oram.access_many(accesses)
        assert oram.read(target) == payload

    @_SETTINGS
    @given(access_sequences())
    def test_path_writes_match_reads(self, case):
        """Every (real or dummy) path read is followed by exactly one write-back."""
        num_blocks, accesses = case
        oram = PathORAM(
            ORAMConfig(num_blocks=num_blocks, block_size_bytes=16, seed=4),
            eviction=EvictionPolicy(trigger_threshold=16, drain_target=4),
        )
        oram.access_many(accesses)
        snap = oram.statistics
        assert snap.path_writes == snap.path_reads + snap.dummy_reads

    @_SETTINGS
    @given(st.integers(min_value=4, max_value=64), st.integers(min_value=0, max_value=1000))
    def test_new_paths_are_within_leaf_range(self, num_blocks, seed):
        oram = PathORAM(ORAMConfig(num_blocks=num_blocks, block_size_bytes=16, seed=seed))
        rng = np.random.default_rng(seed)
        for block in rng.integers(0, num_blocks, size=30):
            oram.read(int(block))
        leaves = oram.position_map.as_array()
        assert leaves.min() >= 0
        assert leaves.max() < oram.config.num_leaves
