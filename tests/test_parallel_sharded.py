"""Process-parallel ShardedRunner: bit-identity, crash safety, shm hygiene.

The parallel backend's contract is exact: for a fixed seed it must produce
*the same* merged traffic snapshot, per-shard stash occupancies and
position maps as the sequential in-process backend, for every shardable
family, both engine variants and any worker count.  The crash tests pin
down the failure contract: a worker raising mid-trace surfaces as a typed
:class:`~repro.exceptions.ShardExecutionError` in the parent and leaves no
shared-memory segment behind (checked against the live registries and
``/dev/shm``), even when the worker is killed outright.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShardExecutionError
from repro.experiments.sharded import ProcessShardExecutor, ShardedRunner, ShardPlanner
from repro.experiments.sharded.executor import _pin_worker_threads
from repro.oram.shm import leaked_segments

NUM_BLOCKS = 1 << 10
NUM_SHARDS = 3
NUM_ACCESSES = 600


def _trace(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 100)
    return rng.integers(0, NUM_BLOCKS, size=NUM_ACCESSES)


def _run(family: str, fast: bool, seed: int, num_workers):
    kwargs = {} if num_workers is None else {"num_workers": num_workers}
    runner = ShardedRunner(
        NUM_BLOCKS,
        NUM_SHARDS,
        family=family,
        seed=seed,
        use_fast_engine=fast,
        **kwargs,
    )
    try:
        merged = runner.run_trace(_trace(seed))
        return {
            "merged": merged,
            "results": runner.results,
            "occupancies": runner.stash_occupancies(),
            "position_maps": runner.position_maps(),
            "total_real_blocks": runner.total_real_blocks(),
            "simulated_parallel": runner.simulated_time_parallel_s,
        }
    finally:
        runner.close()


@pytest.mark.parametrize("family", ["laoram", "pathoram", "ringoram", "proram"])
@pytest.mark.parametrize("fast", [True, False])
@pytest.mark.parametrize("seed", [0, 1])
def test_parallel_backend_is_bit_identical(family, fast, seed):
    sequential = _run(family, fast, seed, None)
    parallel = _run(family, fast, seed, 2)

    assert parallel["merged"] == sequential["merged"]
    assert parallel["occupancies"] == sequential["occupancies"]
    for par_map, seq_map in zip(
        parallel["position_maps"], sequential["position_maps"]
    ):
        assert np.array_equal(par_map, seq_map)
    for par_result, seq_result in zip(parallel["results"], sequential["results"]):
        assert par_result == seq_result
    assert parallel["total_real_blocks"] == NUM_BLOCKS
    assert parallel["simulated_parallel"] == sequential["simulated_parallel"]


@pytest.mark.parametrize("num_workers", [1, 2, 3])
def test_worker_grouping_does_not_change_results(num_workers):
    reference = _run("laoram", True, 0, None)
    grouped = _run("laoram", True, 0, num_workers)
    assert grouped["merged"] == reference["merged"]
    assert grouped["results"] == reference["results"]


def test_parallel_runner_releases_all_shared_memory():
    runner = ShardedRunner(
        NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0, num_workers=2
    )
    prefix = runner.executor.prefix
    runner.run_trace(_trace(0))
    registries = [s["registry"] for s in runner.executor.states.values()]
    assert all(registries), "workers should report shared-array registries"
    runner.close()
    assert leaked_segments(prefix, registries) == []


def test_more_workers_than_shards_rejected():
    with pytest.raises(ConfigurationError):
        ShardedRunner(
            NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0, num_workers=NUM_SHARDS + 1
        )


def test_worker_exception_propagates_typed_and_leaves_no_segments():
    planner = ShardPlanner(NUM_BLOCKS, NUM_SHARDS, family="pathoram", seed=0)
    executor = ProcessShardExecutor(planner, num_workers=2)
    executor.start()
    prefix = executor.prefix
    registries = [s["registry"] for s in executor.states.values()]

    bad_traces = [np.arange(10, dtype=np.int64) for _ in range(NUM_SHARDS)]
    bad_traces[1] = np.array([10**9], dtype=np.int64)  # out of shard range
    with pytest.raises(ShardExecutionError) as excinfo:
        executor.run_local_traces(bad_traces)

    error = excinfo.value
    assert error.shard_id == 1
    assert error.original_type == "BlockNotFoundError"
    assert "Traceback" in error.worker_traceback
    # The failure tore the executor down: workers stopped, segments unlinked.
    assert leaked_segments(prefix, registries) == []
    with pytest.raises(ShardExecutionError):
        executor.run_local_traces([np.arange(4)] * NUM_SHARDS)


def test_hard_killed_worker_is_detected_and_swept():
    planner = ShardPlanner(NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0)
    executor = ProcessShardExecutor(planner, num_workers=2)
    executor.start()
    prefix = executor.prefix
    registries = [s["registry"] for s in executor.states.values()]

    os.kill(executor._procs[0].pid, signal.SIGKILL)
    with pytest.raises(ShardExecutionError) as excinfo:
        executor.run_local_traces(planner.split_trace(_trace(0)))
    assert "died without reporting" in str(excinfo.value)
    # A SIGKILLed worker cannot run its cleanup; the parent sweep must.
    assert leaked_segments(prefix, registries) == []


def test_executor_context_manager_and_idempotent_close():
    planner = ShardPlanner(NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0)
    with ProcessShardExecutor(planner, num_workers=1) as executor:
        prefix = executor.prefix
        states = executor.run_local_traces(planner.split_trace(_trace(0)))
        assert sorted(states) == list(range(NUM_SHARDS))
    executor.close()  # second close is a no-op
    assert leaked_segments(prefix) == []


def test_parallel_snapshot_reads_live_worker_state():
    with ShardedRunner(
        NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0, num_workers=2
    ) as runner:
        runner.run_trace(_trace(0))
        arrays = runner.executor.read_shard_arrays(0)
        assert "posmap.leaves" in arrays
        assert arrays["posmap.leaves"].size == runner.shard_num_blocks(0)
        assert np.array_equal(arrays["posmap.leaves"], runner.position_maps()[0])


def test_worker_thread_pinning_env(monkeypatch):
    from repro.experiments.sharded.executor import _THREAD_ENV_VARS

    # Register every pinned variable with monkeypatch first so its original
    # state (including absence) is restored after the test.
    for var in _THREAD_ENV_VARS:
        monkeypatch.setenv(var, "unpinned")
    monkeypatch.delenv("REPRO_WORKER_THREADS", raising=False)
    _pin_worker_threads()
    assert os.environ["OMP_NUM_THREADS"] == "1"
    assert os.environ["OPENBLAS_NUM_THREADS"] == "1"
    monkeypatch.setenv("REPRO_WORKER_THREADS", "3")
    _pin_worker_threads()
    assert os.environ["OMP_NUM_THREADS"] == "3"
