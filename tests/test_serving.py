"""Asyncio serving front-end: coalescing, accounting, failure propagation."""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.sharded import ShardedRunner
from repro.serving import (
    AsyncShardedService,
    run_zipf_workload,
    summarize_latencies,
)

NUM_BLOCKS = 1 << 10
NUM_SHARDS = 3


def _runner(num_workers=None):
    kwargs = {} if num_workers is None else {"num_workers": num_workers}
    return ShardedRunner(NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=0, **kwargs)


@pytest.mark.parametrize("num_workers", [None, 2])
def test_submit_serves_every_id(num_workers):
    async def main():
        with _runner(num_workers) as runner:
            async with AsyncShardedService(runner) as service:
                latencies = await asyncio.gather(
                    *(service.submit([i, i + 7, i + 21]) for i in range(20))
                )
            if runner.is_parallel:
                runner.executor.refresh_states()
            merged = runner.merged_snapshot()
        assert len(latencies) == 20
        assert all(lat >= 0.0 for lat in latencies)
        assert merged.logical_accesses == 20 * 3
        stats = service.latency_summary()
        assert stats.count == 20
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms

    asyncio.run(main())


def test_concurrent_requests_coalesce_into_batches():
    async def main():
        with _runner() as runner:
            async with AsyncShardedService(runner) as service:
                await service.start()
                # All submissions are queued before any dispatcher wakes, so
                # each shard's dispatcher sees them together and must serve
                # them as one coalesced batch.
                await asyncio.gather(
                    *(service.submit([i]) for i in range(0, 30))
                )
            stats = service.latency_summary()
            # 30 single-id requests over 3 shards: far fewer dispatches than
            # requests proves coalescing (one batch per shard, not per request).
            assert len(service._batch_sizes) <= 2 * NUM_SHARDS
            assert stats.mean_batch_size > 1.0

    asyncio.run(main())


def test_batch_cap_limits_coalescing():
    async def main():
        with _runner() as runner:
            async with AsyncShardedService(runner, max_batch_ids=2) as service:
                await service.start()
                await asyncio.gather(*(service.submit([3, 6, 9]) for _ in range(8)))
            assert max(service._batch_sizes) <= 2 + 3  # cap + one entry overshoot

    asyncio.run(main())


def test_out_of_range_id_rejected():
    async def main():
        with _runner() as runner:
            async with AsyncShardedService(runner) as service:
                with pytest.raises(ConfigurationError):
                    await service.submit([NUM_BLOCKS + 5])

    asyncio.run(main())


def test_backend_failure_propagates_to_submitters():
    async def main():
        with _runner() as runner:
            def explode(ids):
                raise RuntimeError("backend down")

            for engine in runner.engines:
                engine.access_many = explode
            async with AsyncShardedService(runner) as service:
                with pytest.raises(RuntimeError, match="backend down"):
                    await service.submit([1, 2, 3])
                # The failure is sticky: later submissions fail fast.
                with pytest.raises(RuntimeError, match="backend down"):
                    await service.submit([4])

    asyncio.run(main())


@pytest.mark.parametrize("arrival", ["bursty", "open"])
def test_zipf_workload_reports(arrival):
    async def main():
        with _runner() as runner:
            async with AsyncShardedService(runner) as service:
                report = await run_zipf_workload(
                    service,
                    num_requests=40,
                    request_size=4,
                    arrival=arrival,
                    burst_size=8,
                    rate_rps=4000.0,
                    seed=5,
                )
            merged = runner.merged_snapshot()
        assert report.arrival == arrival
        assert report.num_requests == 40
        assert report.latency.count == 40
        assert report.throughput_rps > 0
        assert merged.logical_accesses == 40 * 4

    asyncio.run(main())


def test_workload_is_deterministic_in_ids():
    """Same seed -> same Zipf ids -> same oblivious access totals."""

    async def run_once():
        with _runner() as runner:
            async with AsyncShardedService(runner) as service:
                await run_zipf_workload(
                    service,
                    num_requests=25,
                    request_size=4,
                    arrival="open",
                    rate_rps=5000.0,
                    seed=3,
                )
            return runner.merged_snapshot().logical_accesses

    assert asyncio.run(run_once()) == asyncio.run(run_once())


def test_latency_summary_empty_and_basic():
    empty = summarize_latencies([])
    assert empty.count == 0 and empty.p99_ms == 0.0
    stats = summarize_latencies([0.001, 0.002, 0.010], [2, 4])
    assert stats.count == 3
    assert stats.p50_ms == pytest.approx(2.0)
    assert stats.max_ms == pytest.approx(10.0)
    assert stats.mean_batch_size == pytest.approx(3.0)
