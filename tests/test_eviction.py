"""Tests for the background-eviction policy."""

import pytest

from repro.exceptions import ConfigurationError
from repro.oram.eviction import EvictionPolicy


class TestEvictionPolicy:
    def test_triggers_above_threshold(self):
        policy = EvictionPolicy(trigger_threshold=100, drain_target=10)
        assert policy.should_trigger(101)
        assert not policy.should_trigger(100)

    def test_disabled_policy_never_triggers(self):
        policy = EvictionPolicy.disabled()
        assert not policy.should_trigger(10**6)
        assert not policy.should_continue(10**6, 0)

    def test_continues_until_drain_target(self):
        policy = EvictionPolicy(trigger_threshold=100, drain_target=10)
        assert policy.should_continue(50, dummy_reads_so_far=3)
        assert not policy.should_continue(10, dummy_reads_so_far=3)

    def test_episode_dummy_read_cap(self):
        policy = EvictionPolicy(
            trigger_threshold=100, drain_target=10, max_dummy_reads_per_episode=5
        )
        assert not policy.should_continue(50, dummy_reads_so_far=5)

    def test_paper_default_matches_section_viii(self):
        policy = EvictionPolicy.paper_default()
        assert policy.trigger_threshold == 500
        assert policy.drain_target == 50

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            EvictionPolicy(trigger_threshold=10, drain_target=20)
        with pytest.raises(ConfigurationError):
            EvictionPolicy(trigger_threshold=0)
        with pytest.raises(ConfigurationError):
            EvictionPolicy(max_dummy_reads_per_episode=0)
