"""Tests for the LAORAM preprocessor (dataset scan + path generation)."""

import numpy as np
import pytest

from repro.core.preprocessor import Preprocessor
from repro.exceptions import ConfigurationError, TraceError
from repro.utils.stats import chi_square_uniformity


class TestBuildPlan:
    def test_bins_cover_the_whole_stream_in_order(self):
        pre = Preprocessor(superblock_size=4, num_leaves=16, seed=0)
        addresses = np.arange(10)
        plan = pre.build_plan(addresses)
        assert len(plan) == 3
        assert plan.bins[0].block_ids == (0, 1, 2, 3)
        assert plan.bins[2].block_ids == (8, 9)
        assert plan.num_accesses == 10

    def test_start_index_offsets_occurrences(self):
        pre = Preprocessor(superblock_size=2, num_leaves=8, seed=0)
        plan = pre.build_plan([4, 5, 4], start_index=100)
        assert plan.occurrences(4) == [100, 102]

    def test_leaves_are_within_range(self):
        pre = Preprocessor(superblock_size=4, num_leaves=32, seed=1)
        plan = pre.build_plan(np.arange(400))
        for sb in plan:
            assert 0 <= sb.leaf < 32

    def test_bin_paths_are_uniform(self):
        """Superblock path generation must be uniform over the leaves (Sec. VI)."""
        pre = Preprocessor(superblock_size=1, num_leaves=16, seed=2)
        plan = pre.build_plan(np.zeros(8000, dtype=np.int64))
        leaves = [sb.leaf for sb in plan]
        assert not chi_square_uniformity(leaves, 16).rejects_uniformity()

    def test_plan_is_deterministic_for_a_seed(self):
        addresses = np.arange(64)
        a = Preprocessor(4, 16, seed=7).build_plan(addresses)
        b = Preprocessor(4, 16, seed=7).build_plan(addresses)
        assert [sb.leaf for sb in a] == [sb.leaf for sb in b]

    def test_invalid_inputs_rejected(self):
        pre = Preprocessor(superblock_size=2, num_leaves=8)
        with pytest.raises(TraceError):
            pre.build_plan([])
        with pytest.raises(TraceError):
            pre.build_plan([[1, 2], [3, 4]])
        with pytest.raises(TraceError):
            pre.build_plan([-1, 2])

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            Preprocessor(superblock_size=0, num_leaves=8)
        with pytest.raises(ConfigurationError):
            Preprocessor(superblock_size=2, num_leaves=1)


class TestScanStatistics:
    def test_duplicate_fraction(self):
        pre = Preprocessor(superblock_size=4, num_leaves=8)
        stats = pre.scan_statistics([1, 1, 2, 3])
        assert stats.num_accesses == 4
        assert stats.num_unique_blocks == 3
        assert stats.duplicate_fraction == pytest.approx(0.25)
        assert stats.num_bins == 1

    def test_preprocessing_cost_is_linear(self):
        pre = Preprocessor(superblock_size=4, num_leaves=8)
        assert pre.preprocessing_cost_s(2000) == pytest.approx(
            2 * pre.preprocessing_cost_s(1000)
        )

    def test_negative_cost_rejected(self):
        pre = Preprocessor(superblock_size=4, num_leaves=8)
        with pytest.raises(ValueError):
            pre.preprocessing_cost_s(-1)
