"""Known-bad allocation snippets for the fixture alloc manifest.

``hot_helper`` is covered at ``body`` granularity, ``Driver.run_trace`` at
``loops`` granularity (setup may allocate, loop bodies may not).
"""

import numpy as np


def hot_helper(stash_map, slots):
    rows = [row for row in stash_map]  # EXPECT: ALLOC001
    scratch = np.zeros(4)  # EXPECT: ALLOC001
    pairs = {0: 1}  # EXPECT: ALLOC001
    out = list(stash_map)  # EXPECT: ALLOC001
    return rows, scratch, pairs, out


class Driver:
    def run_trace(self, ids, scratch):
        results = [None] * len(ids)  # setup allocation: allowed under "loops"
        for index in range(len(ids)):
            results[index] = [ids[index]]  # EXPECT: ALLOC001
            scratch += np.concatenate((scratch, scratch))  # EXPECT: ALLOC001
        return results
