"""Known-good mixins: explicit batch declarations (or no protocol surface)."""


class ScalarProtocolMixin:
    SUPPORTS_BATCHED_ACCESS = False

    def access(self, block_id):
        return block_id


class BatchedProtocolMixin:
    SUPPORTS_BATCHED_ACCESS: bool = True

    def _access_batch(self, block_ids):
        return block_ids


class HelperMixin:
    # No access-path methods, so the flag is not required.
    def shape_hint(self):
        return 0
