"""Known-bad RNG snippets: direct construction outside repro.utils.rng."""

import random  # EXPECT: RNG001

import numpy as np

from numpy.random import default_rng  # EXPECT: RNG001


def draw_unseeded():
    rng = np.random.default_rng()  # EXPECT: RNG001
    return rng.integers(0, 8), random.random(), default_rng


def legacy_global_state():
    return np.random.randint(0, 8)  # EXPECT: RNG001
