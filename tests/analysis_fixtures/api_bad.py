"""Known-bad mixin: protocol-shaped but silent about batch support."""


class BrokenProtocolMixin:  # EXPECT: API001
    def access(self, block_id):
        return block_id
