"""Suppression mechanics: valid inline allows, and SUP001 for bad ones."""

import random  # oblivious: allow[RNG001] fixture: valid trailing suppression

# oblivious: allow[RNG001] fixture: a comment-line allow covers the next line
from random import randint

# EXPECT-BELOW: SUP001
# oblivious: allow[RNG001]
from random import choice  # EXPECT: RNG001

# EXPECT-BELOW: SUP001
# oblivious: allowRNG001 malformed, missing brackets
from repro.utils.rng import make_rng

__all__ = ["random", "randint", "choice", "make_rng"]
